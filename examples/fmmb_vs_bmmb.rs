//! The headline comparison: FMMB (enhanced MAC layer) vs BMMB (standard
//! MAC layer) as the `F_ack`/`F_prog` gap widens.
//!
//! BMMB pays Θ((D + k)·F_ack) on grey-zone networks, so its completion
//! time grows linearly with `F_ack`. FMMB's bound
//! O((D log n + k log n + log³n)·F_prog) has **no** `F_ack` term: its
//! completion time stays flat as acknowledgments get slower. This is the
//! paper's argument for adding abort + timing knowledge to MAC layers.
//!
//! Run with: `cargo run --release --example fmmb_vs_bmmb`

use amac::core::{run_bmmb, run_fmmb, Assignment, FmmbParams, RunOptions};
use amac::graph::generators::{connected_grey_zone_network, GreyZoneConfig};
use amac::mac::policies::LazyPolicy;
use amac::mac::MacConfig;
use amac::sim::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SimRng::seed(17);
    let net = connected_grey_zone_network(
        &GreyZoneConfig::new(48, 5.0)
            .with_c(2.0)
            .with_grey_edge_probability(0.5),
        200,
        &mut rng,
    )?;
    let n = net.dual.len();
    let d = net.dual.diameter();
    let k = 4;
    let assignment = Assignment::random(n, k, &mut rng);
    let params = FmmbParams::new(k, d);
    println!("grey-zone network: n = {n}, D = {d}, k = {k}");
    println!("scheduler: lazy worst-case (acks held for the full F_ack)\n");
    println!(
        "{:>8} {:>14} {:>14} {:>9}",
        "F_ack", "BMMB (ticks)", "FMMB (ticks)", "winner"
    );

    let f_prog = 2;
    for f_ack in [8u64, 64, 512, 4096, 16384] {
        let std_cfg = MacConfig::from_ticks(f_prog, f_ack);
        let bmmb = run_bmmb(
            &net.dual,
            std_cfg,
            &assignment,
            LazyPolicy::new().prefer_duplicates(),
            &RunOptions::fast().stopping_on_completion(),
        );
        let fmmb = run_fmmb(
            &net.dual,
            std_cfg.enhanced(),
            &assignment,
            &params,
            23,
            LazyPolicy::new(),
            &RunOptions::fast().stopping_on_completion(),
        );
        let (b, f) = (bmmb.completion_ticks(), fmmb.completion_ticks());
        println!(
            "{:>8} {:>14} {:>14} {:>9}",
            f_ack,
            b,
            f,
            if f < b { "FMMB" } else { "BMMB" }
        );
    }

    println!();
    println!("BMMB scales with F_ack; FMMB is flat (no F_ack term).");
    println!("The crossover is where the enhanced MAC layer's abort interface");
    println!("starts paying for itself — the paper's feedback to MAC designers.");
    Ok(())
}
