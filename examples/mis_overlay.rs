//! Inside FMMB: build a maximal independent set with the Section 4.2
//! subroutine and inspect the overlay structure the spread phase uses.
//!
//! Run with: `cargo run --release --example mis_overlay`

use amac::core::{run_fmmb, Assignment, FmmbParams, RunOptions};
use amac::graph::generators::{connected_grey_zone_network, GreyZoneConfig};
use amac::graph::{algo, NodeId};
use amac::mac::policies::RandomPolicy;
use amac::mac::MacConfig;
use amac::sim::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SimRng::seed(3);
    let net = connected_grey_zone_network(
        &GreyZoneConfig::new(60, 5.5)
            .with_c(2.0)
            .with_grey_edge_probability(0.5),
        200,
        &mut rng,
    )?;
    let dual = &net.dual;
    println!(
        "network: n = {}, D = {}, max degree {}",
        dual.len(),
        dual.diameter(),
        dual.g().max_degree()
    );

    // Run FMMB (the MIS subroutine runs first); one dummy message.
    let assignment = Assignment::all_at(NodeId::new(0), 1);
    let params = FmmbParams::new(1, dual.diameter());
    let report = run_fmmb(
        dual,
        MacConfig::from_ticks(2, 30).enhanced(),
        &assignment,
        &params,
        9,
        RandomPolicy::new(4),
        &RunOptions::fast(),
    );

    let mis = &report.mis;
    println!("\nMIS subroutine produced {} dominators:", mis.len());
    println!(
        "  independent in G: {}",
        algo::is_independent(dual.g(), mis)
    );
    println!(
        "  maximal (every node covered): {}",
        algo::is_maximal_independent(dual.g(), mis)
    );

    // The spread overlay H: MIS nodes within <= 3 G-hops are H-neighbors.
    let g3 = algo::power(dual.g(), 3);
    let mut h_edges = 0;
    let mut h_degree_max = 0;
    for u in mis.iter() {
        let deg = g3.neighbors(u).iter().filter(|v| mis.contains(**v)).count();
        h_degree_max = h_degree_max.max(deg);
        h_edges += deg;
    }
    h_edges /= 2;
    println!("\noverlay H (MIS nodes within 3 hops of G):");
    println!(
        "  |S| = {}, |E_S| = {h_edges}, max H-degree = {h_degree_max}",
        mis.len()
    );

    // Sphere packing keeps MIS neighborhoods sparse: every node has few
    // dominators nearby, which is what makes the gather/spread activation
    // probabilities work.
    let mut worst_nearby = 0;
    for i in 0..dual.len() {
        let nearby = algo::r_neighborhood(dual.g(), NodeId::new(i), 2)
            .iter()
            .filter(|v| mis.contains(*v))
            .count();
        worst_nearby = worst_nearby.max(nearby);
    }
    println!(
        "  max MIS nodes within 2 hops of any node: {worst_nearby} (Lemma 4.2 keeps this O(c^2))"
    );

    assert!(
        report.mis_valid,
        "MIS must be a maximal independent set w.h.p."
    );
    Ok(())
}
