//! Sensor-network scenario: a field of randomly deployed sensors (a grey
//! zone network) floods alarm reports to the whole network with BMMB.
//!
//! This is the workload the paper's introduction motivates: real radios
//! whose long marginal links ("grey zone") deliver unpredictably, with a
//! standard MAC layer underneath. The example compares completion times
//! under optimistic, randomized, and worst-case schedulers — the upper
//! bound holds for all of them.
//!
//! Run with: `cargo run --example sensor_flood`

use amac::core::{bounds, run_bmmb, Assignment, MmbReport, RunOptions};
use amac::graph::generators::{connected_grey_zone_network, GreyZoneConfig};
use amac::mac::policies::{EagerPolicy, LazyPolicy, RandomPolicy};
use amac::mac::{MacConfig, Policy};
use amac::sim::SimRng;

fn run(label: &str, policy: impl Policy, scenario: &Scenario) -> MmbReport {
    let report = run_bmmb(
        &scenario.dual,
        scenario.config,
        &scenario.assignment,
        policy,
        &RunOptions::default(),
    );
    assert!(report.solved_and_valid(), "{label}: {report}");
    println!(
        "  {label:<22} completed in {:>6} ticks ({} MAC instances)",
        report.completion_ticks(),
        report.instances
    );
    report
}

struct Scenario {
    dual: amac::graph::DualGraph,
    config: MacConfig,
    assignment: Assignment,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SimRng::seed(7);
    // 80 sensors in a 7x7 unit square; radios reach 1 unit reliably and up
    // to 2 units unreliably (c = 2), with 60% of marginal links present.
    let net = connected_grey_zone_network(
        &GreyZoneConfig::new(80, 7.0)
            .with_c(2.0)
            .with_grey_edge_probability(0.6),
        200,
        &mut rng,
    )?;
    println!(
        "deployed {} sensors: D = {}, {} reliable / {} unreliable links",
        net.dual.len(),
        net.dual.diameter(),
        net.dual.g().edge_count(),
        net.dual.unreliable_edge_count(),
    );

    let k = 5;
    let scenario = Scenario {
        assignment: Assignment::random(net.dual.len(), k, &mut rng),
        dual: net.dual,
        config: MacConfig::from_ticks(2, 40),
    };
    println!("{k} alarm reports injected at random sensors\n");

    println!("scheduler comparison (same network, same arrivals):");
    let eager = run(
        "eager (best case)",
        EagerPolicy::new().with_unreliable(0.5, 1),
        &scenario,
    );
    let random = run("seeded random", RandomPolicy::new(99), &scenario);
    let lazy = run(
        "lazy + duplicates",
        LazyPolicy::new().prefer_duplicates(),
        &scenario,
    );

    let d = scenario.dual.diameter();
    let bound = bounds::bmmb_arbitrary(d, k, &scenario.config);
    println!(
        "\nTheorem 3.1 upper bound O((D + k) * F_ack) = {} ticks (D = {d}, k = {k})",
        bound.ticks()
    );
    for (label, r) in [("eager", &eager), ("random", &random), ("lazy", &lazy)] {
        println!(
            "  {label:<8} measured/bound = {:.2}",
            r.completion_ticks() as f64 / bound.ticks() as f64
        );
    }
    Ok(())
}
