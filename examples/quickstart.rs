//! Quickstart: flood three messages through a small dual-graph network
//! with BMMB under a worst-case scheduler, and verify the execution
//! against the abstract MAC layer model.
//!
//! Run with: `cargo run --example quickstart`

use amac::core::{bounds, run_bmmb, Assignment, RunOptions};
use amac::graph::generators;
use amac::mac::{policies::LazyPolicy, MacConfig};
use amac::sim::SimRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5x6 grid of devices; unreliable links may connect nodes up to 2
    // hops apart (an r-restricted G' with r = 2).
    let g = generators::grid(5, 6)?;
    let mut rng = SimRng::seed(42);
    let dual = generators::r_restricted_augment(g, 2, 0.4, &mut rng)?;
    println!("network: {dual:?}");

    // The MAC layer acknowledges within F_ack = 48 ticks and guarantees
    // progress within F_prog = 3 ticks.
    let config = MacConfig::from_ticks(3, 48);

    // k = 3 messages injected at random nodes at time 0.
    let assignment = Assignment::random(dual.len(), 3, &mut rng);
    for (node, msg) in assignment.arrivals() {
        println!("arrive({:?}) at {node}", msg.id);
    }

    // Run BMMB under the lazy, duplicate-feeding scheduler — the most
    // adversarial generic policy — with post-hoc model validation.
    let report = run_bmmb(
        &dual,
        config,
        &assignment,
        LazyPolicy::new().prefer_duplicates(),
        &RunOptions::default(),
    );

    println!("\n{report}");
    let d = dual.diameter();
    let bound = bounds::bmmb_r_restricted(d, assignment.k(), 2, &config);
    println!(
        "measured {} ticks vs O(D*F_prog + r*k*F_ack) = {} ticks (D = {d}, r = 2, k = {})",
        report.completion_ticks(),
        bound.ticks(),
        assignment.k(),
    );
    assert!(
        report.solved_and_valid(),
        "execution must conform to the model"
    );
    println!("execution validated against the abstract MAC layer guarantees");
    Ok(())
}
