//! Record, then replay, a faulty execution: the crash-star consensus
//! scenario (`amac::lower::run_crash_star`) runs once with a streaming
//! trace recorder attached, and the resulting `.amactrace` file is read
//! back through a fresh `OnlineValidator` — on nothing but the file's own
//! bytes. The two summaries printed at the end must match line for line;
//! the stored crash fault and the agreement violation survive the round
//! trip.
//!
//! Run with: `cargo run --example record_crash_star`
//!
//! The same flow is scriptable as
//! `repro consensus_crash --record DIR` + `repro replay DIR/...` — see
//! docs/EXPERIMENTS.md (REPLAY) and docs/TRACE_FORMAT.md for the format.

use amac::core::RunOptions;
use amac::lower::run_crash_star;
use amac::store::{replay_validate, TraceReader, TraceSummary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("amac-record-crash-star");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("crash_star.amactrace");

    // Live run: 8 leaves around a hub that crashes mid-broadcast. The
    // recorder streams every MAC event and the crash fault to disk while
    // the online validator watches the same pipeline.
    let report = run_crash_star(8, 1, &RunOptions::default().recording(&path, 0));
    println!("{}", report);
    println!();

    let live = TraceSummary::for_live(
        &path,
        report.run.validation.clone().expect("validation on"),
        report.run.validator_stats.expect("validation on"),
    )?;
    println!("recorded {}", path.display());
    println!("{live}");
    println!();

    // Replay: rebuild a validator from the file alone and feed it the
    // stored stream. Same violations, same stats, same summary block.
    let replayed = replay_validate(TraceReader::open(&path)?)?;
    println!("replayed {}", path.display());
    println!("{replayed}");
    assert_eq!(
        live.to_string(),
        replayed.to_string(),
        "replay must reproduce the live summary byte-for-byte"
    );
    println!();
    println!(
        "summaries match byte-for-byte; the trace is {} bytes on disk",
        std::fs::metadata(&path)?.len()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
