//! The paper's lower bounds, live: watch the Section 3.3 adversary force
//! BMMB to spend Ω(D·F_ack) on the Figure 2 dual-line network, and the
//! Lemma 3.18 choke star force Ω(k·F_ack).
//!
//! Run with: `cargo run --example greyzone_adversary`

use amac::core::RunOptions;
use amac::lower::{run_choke_star, run_dual_line};
use amac::mac::MacConfig;

fn main() {
    let config = MacConfig::from_ticks(2, 64);
    println!(
        "MAC layer: F_prog = {}, F_ack = {} (F_ack/F_prog = {}x)\n",
        config.f_prog(),
        config.f_ack(),
        config.f_ack().ticks() / config.f_prog().ticks()
    );

    println!("Lemma 3.18 — choke star: k singleton messages behind one bridge");
    println!(
        "{:>6} {:>10} {:>10} {:>7}",
        "k", "measured", "k*F_ack", "ratio"
    );
    for k in [2, 4, 8, 16, 32] {
        let r = run_choke_star(k, config, &RunOptions::fast());
        println!(
            "{:>6} {:>10} {:>10} {:>7.2}",
            k, r.completion_ticks, r.bound_ticks, r.ratio
        );
    }

    println!();
    println!("Lemmas 3.19-3.20 — Figure 2 dual lines: two messages delay each other");
    println!("over grey-zone cross edges even though every line hop is reliable");
    println!(
        "{:>6} {:>10} {:>10} {:>7}",
        "D", "measured", "D*F_ack", "ratio"
    );
    for d in [4, 8, 16, 32] {
        let r = run_dual_line(d, config, &RunOptions::fast());
        println!(
            "{:>6} {:>10} {:>10} {:>7.2}",
            d, r.completion_ticks, r.bound_ticks, r.ratio
        );
    }

    println!();
    println!("Both ratios stay bounded away from zero as the parameter grows:");
    println!("no standard-model algorithm can beat Θ((D + k) * F_ack) here");
    println!("(Theorem 3.17), which is exactly BMMB's upper bound (Theorem 3.1).");
}
