//! Schedules: recorded choice sequences and their deterministic replay.
//!
//! A *schedule* is the sequence of alternatives an execution took at its
//! nondeterministic decision points, in draw order. Because the runtime
//! is deterministic in everything else (see the determinism policy in
//! `docs/ARCHITECTURE.md`), a schedule pins down the whole execution —
//! replaying the same prefix reproduces it exactly. The DFS explorer
//! walks the tree of schedules by re-executing with successively
//! incremented prefixes.

use amac_mac::{ChoicePoint, ChoiceSource};

/// One resolved decision in an execution's schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Draw {
    /// What was being decided.
    pub point: ChoicePoint,
    /// How many alternatives were on offer (≥ 1).
    pub width: u64,
    /// The alternative taken, in `[0, width)`.
    pub chosen: u64,
}

/// A [`ChoiceSource`] that replays a schedule prefix and takes the first
/// alternative (index 0) at every decision beyond it, logging every draw.
///
/// Prefix entries are clamped into the width actually offered, so a
/// prefix stays meaningful even when an earlier alternative changed a
/// later decision's width (the explorer only ever increments a position
/// within its recorded width, so clamping never fires during DFS — it is
/// a guard for hand-written prefixes).
#[derive(Debug)]
pub struct ReplaySource {
    prefix: Vec<u64>,
    log: Vec<Draw>,
}

impl ReplaySource {
    /// A source replaying `prefix`, then defaulting to index 0.
    pub fn new(prefix: Vec<u64>) -> ReplaySource {
        ReplaySource {
            prefix,
            log: Vec::new(),
        }
    }

    /// Every draw made so far, in execution order.
    pub fn log(&self) -> &[Draw] {
        &self.log
    }

    /// Consumes the source, returning the full draw log.
    pub fn into_log(self) -> Vec<Draw> {
        self.log
    }
}

impl ChoiceSource for ReplaySource {
    fn choose(&mut self, point: ChoicePoint, width: u64) -> u64 {
        assert!(width >= 1, "a choice needs at least one alternative");
        let position = self.log.len();
        let chosen = self
            .prefix
            .get(position)
            .copied()
            .unwrap_or(0)
            .min(width - 1);
        self.log.push(Draw {
            point,
            width,
            chosen,
        });
        chosen
    }
    // `chance` comes from the trait default: probabilities in (0, 1)
    // branch via a width-2 choose; the extremes take the forced arm
    // without consuming a schedule position, so a scenario with
    // probability-0 unreliable links never branches on them.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_prefix_then_defaults_to_zero() {
        let mut src = ReplaySource::new(vec![2, 1]);
        assert_eq!(src.choose(ChoicePoint::AckDelay, 4), 2);
        assert_eq!(src.choose(ChoicePoint::ReliableDelay, 3), 1);
        assert_eq!(src.choose(ChoicePoint::ForcedPick, 5), 0);
        assert_eq!(src.log().len(), 3);
    }

    #[test]
    fn prefix_clamps_to_offered_width() {
        let mut src = ReplaySource::new(vec![9]);
        assert_eq!(src.choose(ChoicePoint::AckDelay, 3), 2);
        assert_eq!(src.log()[0].width, 3);
    }

    #[test]
    fn chance_extremes_do_not_consume_positions() {
        let mut src = ReplaySource::new(vec![1]);
        assert!(!src.chance(ChoicePoint::UnreliableInclude, 0.0));
        assert!(src.chance(ChoicePoint::UnreliableInclude, 1.0));
        assert!(src.log().is_empty(), "extremes are forced, not chosen");
        assert!(src.chance(ChoicePoint::UnreliableInclude, 0.5));
        assert_eq!(src.log().len(), 1);
    }
}
