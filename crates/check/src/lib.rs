//! # amac-check — bounded exhaustive checking of the MAC runtime's
//! nondeterminism
//!
//! Every guarantee the workspace validates elsewhere — the five aMAC
//! properties, consensus agreement, election uniqueness — is checked
//! along *seeded random* executions, so a schedule-dependent bug
//! survives until a lucky seed finds it. The paper's claims are
//! ∀-quantified over adversarial delivery orderings and fault timings;
//! this crate quantifies the same way, for small instances: it
//! enumerates **every schedule** the model permits (up to configurable
//! bounds) and judges each against pluggable safety properties.
//!
//! The pieces:
//!
//! * [`ReplaySource`] — the enumerating [`ChoiceSource`]: replays a
//!   choice prefix, defaults beyond it, logs every decision (its width
//!   and [`ChoicePoint`] label). The same [`ChoicePolicy`] that backs
//!   `RandomPolicy` becomes the exhaustive adversary when driven by it.
//! * [`Scenario`] — a protocol instance plus its properties:
//!   [`ConsensusScenario`], [`ElectionScenario`], [`FloodScenario`], and
//!   the deliberately under-provisioned
//!   [`ConsensusScenario::broken`] used to exercise the counterexample
//!   pipeline.
//! * [`explore()`] — the stateless DFS controller with fingerprint
//!   deduplication and depth/step bounds; returns a [`CheckReport`] with
//!   explored/pruned statistics.
//! * [`shrink()`] — the delta-debugging minimizer invoked on violation.
//! * [`check_fixture`] — replays an emitted `.amactrace` counterexample
//!   through stream-level properties, reproducing the violation from the
//!   stored bytes alone.
//!
//! ## Example: certify a 3-node consensus, then break it
//!
//! ```
//! use amac_check::{explore, Bounds, ConsensusScenario};
//!
//! // The shipped protocol, correctly provisioned: clean space.
//! let report = explore(&ConsensusScenario::certified(3, 0), &Bounds::default(), None);
//! assert!(report.exhausted && report.is_clean());
//!
//! // One phase against a 1-crash budget: the checker finds the crash
//! // placement and delivery timing that break agreement, and shrinks it.
//! let report = explore(&ConsensusScenario::broken(3), &Bounds::default(), None);
//! let cx = report.counterexample.expect("under-provisioned phases must fail");
//! assert_eq!(cx.property, amac_check::PROP_CONSENSUS);
//! ```
//!
//! [`ChoiceSource`]: amac_mac::ChoiceSource
//! [`ChoicePoint`]: amac_mac::ChoicePoint
//! [`ChoicePolicy`]: amac_mac::ChoicePolicy

pub mod explore;
pub mod scenario;
pub mod schedule;
pub mod shrink;
pub mod stream;

pub use explore::{explore, Bounds, CheckReport, CheckStats, Counterexample};
pub use scenario::{
    trace_fingerprint, ConsensusScenario, ElectionScenario, FloodScenario, RunVerdict, Scenario,
    PROP_COMPLETION, PROP_CONSENSUS, PROP_ELECTION, PROP_MAC,
};
pub use schedule::{Draw, ReplaySource};
pub use shrink::{shrink, ShrinkOutcome};
pub use stream::{check_fixture, EstimateAgreement, FixtureCheck};
