//! Stream-level properties: judging a stored `.amactrace` fixture from
//! its event stream alone.
//!
//! A recorded counterexample holds MAC-level events, not protocol
//! decisions — those are automaton outputs that never cross the MAC
//! interface. For the crash-stop min-fold consensus, however, the
//! decisions are *reconstructible*: every `ConsensusMsg` carries its
//! `(phase, value)` in the semantic [`MessageKey`], so a node's estimate
//! trajectory can be replayed from its `Bcast`s (its estimate at each
//! phase start) and `Rcv`s (the values it folded). This is what lets a
//! committed fixture *replay to the same violation* without re-running
//! the protocol: `repro replay <fixture> --observer check` feeds the
//! stored stream through [`EstimateAgreement`] and reports the
//! disagreement the checker originally found.
//!
//! The reconstruction is exact for single-phase runs (every delivery
//! lands inside the phase, so decisions equal the final folds; this
//! covers the fixtures the broken consensus scenario emits). For
//! multi-phase runs it is *fold-forever* semantics — a conservative
//! over-approximation that can only converge further than the real
//! protocol, so a disagreement it reports on a single-phase fixture is
//! always real.
//!
//! [`MessageKey`]: amac_mac::MessageKey

use amac_graph::NodeId;
use amac_mac::trace::{TraceEntry, TraceKind};
use amac_mac::{FaultKind, Observer};
use amac_sim::Time;
use amac_store::{replay_into, replay_validate, StoreError, TraceReader};
use std::path::Path;

/// Reconstructs per-node folded estimates of the crash-stop min-fold
/// consensus from a MAC event stream and checks agreement among nodes
/// that never crashed.
#[derive(Debug)]
pub struct EstimateAgreement {
    estimates: Vec<Option<bool>>,
    crashed: Vec<bool>,
}

impl EstimateAgreement {
    /// A fresh reconstruction over `n` nodes.
    pub fn new(n: usize) -> EstimateAgreement {
        EstimateAgreement {
            estimates: vec![None; n],
            crashed: vec![false; n],
        }
    }

    /// The reconstructed estimate of `node` (`None` if it never spoke or
    /// heard anything).
    pub fn estimate(&self, node: NodeId) -> Option<bool> {
        self.estimates[node.index()]
    }

    /// A disagreement among live nodes, if the stream contains one:
    /// `(a false-holder, a true-holder)`.
    pub fn disagreement(&self) -> Option<(NodeId, NodeId)> {
        let holder = |want: bool| {
            (0..self.estimates.len()).find_map(|i| {
                (!self.crashed[i] && self.estimates[i] == Some(want)).then(|| NodeId::new(i))
            })
        };
        match (holder(false), holder(true)) {
            (Some(no), Some(yes)) => Some((no, yes)),
            _ => None,
        }
    }

    /// Human-readable verdict matching the live checker's consensus
    /// detail, or `None` when the stream shows agreement.
    pub fn verdict(&self) -> Option<String> {
        self.disagreement()
            .map(|(no, yes)| format!("{no} decided false but {yes} decided true (agreement)"))
    }
}

impl Observer for EstimateAgreement {
    fn on_event(&mut self, event: &TraceEntry) {
        let value = event.key.0 & 1 == 1;
        let slot = &mut self.estimates[event.node.index()];
        match event.kind {
            // A node's own broadcast announces its estimate at that
            // instant (keys encode `(phase << 1) | value`).
            TraceKind::Bcast => *slot = Some(value),
            // Receives fold: `false` is contagious.
            TraceKind::Rcv => *slot = Some(slot.map_or(value, |current| current & value)),
            TraceKind::Ack | TraceKind::Abort => {}
        }
    }

    fn on_fault(&mut self, _time: Time, node: NodeId, kind: FaultKind) {
        if kind == FaultKind::Crash {
            self.crashed[node.index()] = true;
        }
    }
}

/// Combined fixture verdict: MAC-model conformance plus reconstructed
/// consensus agreement.
#[derive(Clone, Debug)]
pub struct FixtureCheck {
    /// Number of MAC-model violations the stored stream exhibits (from
    /// [`replay_validate`], crash-conditioned).
    pub mac_violations: usize,
    /// The reconstructed consensus disagreement, when present.
    pub estimate_verdict: Option<String>,
}

impl FixtureCheck {
    /// `true` when the fixture shows no violation at either level.
    pub fn is_clean(&self) -> bool {
        self.mac_violations == 0 && self.estimate_verdict.is_none()
    }
}

/// Replays the `.amactrace` file at `path` through both stream checks.
///
/// # Errors
///
/// Propagates any [`StoreError`] from opening or decoding the file
/// (truncation, digest mismatch, unknown tags — hostile inputs are
/// rejected, never misread).
pub fn check_fixture(path: &Path) -> Result<FixtureCheck, StoreError> {
    let summary = replay_validate(TraceReader::open(path)?)?;
    let mut reader = TraceReader::open(path)?;
    let mut agreement = EstimateAgreement::new(reader.header().nodes as usize);
    replay_into(&mut reader, &mut agreement)?;
    Ok(FixtureCheck {
        mac_violations: summary.validation.violations().len(),
        estimate_verdict: agreement.verdict(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_mac::{InstanceId, MessageKey};

    fn entry(ticks: u64, node: usize, kind: TraceKind, key: u64) -> TraceEntry {
        TraceEntry {
            time: Time::from_ticks(ticks),
            instance: InstanceId::new(0),
            node: NodeId::new(node),
            kind,
            key: MessageKey(key),
        }
    }

    #[test]
    fn folds_false_as_contagious() {
        let mut check = EstimateAgreement::new(3);
        check.on_event(&entry(0, 0, TraceKind::Bcast, 0)); // node 0 says false
        check.on_event(&entry(0, 1, TraceKind::Bcast, 1)); // node 1 says true
        check.on_event(&entry(1, 1, TraceKind::Rcv, 0)); // node 1 hears false
        assert_eq!(check.estimate(NodeId::new(0)), Some(false));
        assert_eq!(check.estimate(NodeId::new(1)), Some(false));
        assert!(check.disagreement().is_none(), "node 2 never spoke");
    }

    #[test]
    fn reports_live_disagreement_and_excludes_crashed() {
        let mut check = EstimateAgreement::new(3);
        check.on_event(&entry(0, 0, TraceKind::Bcast, 0));
        check.on_event(&entry(0, 1, TraceKind::Bcast, 1));
        check.on_event(&entry(0, 2, TraceKind::Bcast, 1));
        check.on_event(&entry(1, 1, TraceKind::Rcv, 0));
        assert!(check.verdict().is_some(), "1 folded false, 2 stayed true");
        // Once the false-holder crashes, the survivors agree.
        check.on_fault(Time::from_ticks(2), NodeId::new(1), FaultKind::Crash);
        check.on_fault(Time::from_ticks(2), NodeId::new(0), FaultKind::Crash);
        assert!(check.verdict().is_none());
    }
}
