//! Delta-debugging schedule minimization.
//!
//! A violating schedule found by DFS typically carries dozens of
//! incidental decisions. The shrinker reduces it under the invariant
//! "still violates the *same* property", using two move families that
//! are closed over schedule semantics:
//!
//! * **tail removal** — a truncated schedule is the same schedule with
//!   every removed position at its default (the replay source pads with
//!   alternative 0), so chopping the tail never shifts the meaning of
//!   surviving positions;
//! * **pointwise lowering** — setting one position to 0, or decrementing
//!   it, moves that decision toward its default while leaving positions
//!   before it untouched (positions after it may re-interpret, which is
//!   fine: the candidate is accepted only if it still violates).
//!
//! Classic list-ddmin (removing interior chunks) is deliberately *not*
//! used: deleting a draw would shift every later position onto a
//! different decision point, making candidates incomparable.

use crate::scenario::Scenario;
use crate::schedule::ReplaySource;

/// Result of one minimization.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The minimized schedule, trailing defaults stripped.
    pub schedule: Vec<u64>,
    /// Scenario re-executions spent.
    pub runs: u64,
}

fn strip_trailing_defaults(schedule: &mut Vec<u64>) {
    while schedule.last() == Some(&0) {
        schedule.pop();
    }
}

/// Minimizes `schedule` while `scenario` keeps violating `property`.
///
/// `max_runs` bounds the re-executions; the best schedule found within
/// the budget is returned (minimization is best-effort, correctness of
/// the result is not: the returned schedule always still violates).
pub fn shrink(
    scenario: &dyn Scenario,
    schedule: Vec<u64>,
    property: &'static str,
    max_runs: u64,
) -> ShrinkOutcome {
    let mut runs = 0u64;
    let violates = |candidate: &[u64], runs: &mut u64| -> bool {
        *runs += 1;
        let mut source = ReplaySource::new(candidate.to_vec());
        scenario.run(&mut source, None).property == Some(property)
    };

    let mut current = schedule;
    strip_trailing_defaults(&mut current);

    loop {
        let before = current.clone();

        // Tail removal, largest chunks first.
        let mut chunk = (current.len() / 2).max(1);
        while chunk >= 1 && !current.is_empty() && runs < max_runs {
            let keep = current.len().saturating_sub(chunk);
            if violates(&current[..keep], &mut runs) {
                current.truncate(keep);
                strip_trailing_defaults(&mut current);
                chunk = (current.len() / 2).max(1);
            } else if chunk == 1 {
                break;
            } else {
                chunk /= 2;
            }
        }

        // Pointwise lowering: zero first, single decrement as fallback.
        let mut i = 0;
        while i < current.len() && runs < max_runs {
            while current[i] > 0 && runs < max_runs {
                let saved = current[i];
                current[i] = 0;
                if violates(&current, &mut runs) {
                    break;
                }
                current[i] = saved - 1;
                if !violates(&current, &mut runs) {
                    current[i] = saved;
                    break;
                }
            }
            i += 1;
        }
        strip_trailing_defaults(&mut current);

        if current == before || runs >= max_runs {
            break;
        }
    }

    ShrinkOutcome {
        schedule: current,
        runs,
    }
}
