//! Bounded exhaustive DFS over a scenario's schedule space.
//!
//! The explorer is *stateless* model checking in the Godefroid/VeriSoft
//! tradition: the system under test cannot be snapshotted, so each
//! schedule is explored by re-executing the scenario from scratch with a
//! replayed choice prefix. Starting from the all-defaults schedule, the
//! explorer repeatedly takes the last incrementable decision of the
//! previous run, bumps it by one, and truncates — a depth-first,
//! defaults-first walk of the choice tree that visits every leaf exactly
//! once.
//!
//! Reduction happens at three levels (see `docs/CHECKING.md` for the
//! soundness argument):
//!
//! 1. **Structural** — a decision with one alternative never branches,
//!    and forced `chance` extremes consume no schedule position at all.
//! 2. **Canonical ordering** — same-tick deliveries run in deterministic
//!    FIFO order, so each Mazurkiewicz trace class of commuting
//!    deliveries is explored through exactly one representative; the
//!    permutations are never enumerated.
//! 3. **Fingerprint deduplication** — schedules whose executions emit an
//!    identical event stream (FNV-1a digest, the `amac-store` function)
//!    are counted as duplicates; only the first representative feeds the
//!    property statistics.
//!
//! A depth bound turns the walk into *bounded* exhaustion: decisions past
//! the bound are pinned to their defaults (alternative 0), which keeps
//! the visited set a prefix-closed under-approximation rather than a
//! biased sample.

use crate::scenario::Scenario;
use crate::schedule::ReplaySource;
use crate::shrink::{shrink, ShrinkOutcome};
use amac_sim::FastHashSet;
use std::path::{Path, PathBuf};

/// Exploration bounds.
#[derive(Clone, Debug)]
pub struct Bounds {
    /// Free decision positions per schedule; decisions beyond take their
    /// default. `None` = unbounded (`--depth full`).
    pub max_depth: Option<usize>,
    /// Hard cap on executed schedules; hitting it makes the report
    /// non-exhaustive (and says so — no silent truncation).
    pub max_schedules: u64,
    /// Re-executions granted to the shrinker per counterexample.
    pub max_shrink_runs: u64,
}

impl Default for Bounds {
    fn default() -> Bounds {
        Bounds {
            max_depth: None,
            max_schedules: 2_000_000,
            max_shrink_runs: 2_000,
        }
    }
}

/// Aggregate exploration statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Executions performed (= schedules explored).
    pub schedules: u64,
    /// Distinct execution fingerprints among them.
    pub distinct: u64,
    /// Schedules whose execution duplicated an earlier fingerprint
    /// (pruned from property accounting).
    pub duplicates: u64,
    /// Total MAC events across all executions.
    pub events: u64,
    /// Longest schedule (decision count) seen.
    pub max_schedule_len: usize,
    /// Decisions pinned to their default by the depth bound, summed over
    /// all schedules (0 in a `--depth full` run).
    pub depth_pinned: u64,
    /// Executions that violated a property.
    pub violations: u64,
}

/// A minimized property violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The violated property identifier (see [`crate::scenario`]).
    pub property: &'static str,
    /// Human-readable description from the minimized execution.
    pub detail: String,
    /// The minimized schedule (trailing defaults stripped).
    pub schedule: Vec<u64>,
    /// Decision count of the first violating schedule, pre-shrinking.
    pub original_len: usize,
    /// Re-executions the shrinker spent.
    pub shrink_runs: u64,
    /// Where the minimized `.amactrace` fixture was written, when a
    /// fixture directory was provided.
    pub fixture: Option<PathBuf>,
}

/// Outcome of one exploration.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Scenario name.
    pub scenario: String,
    /// Statistics over every executed schedule.
    pub stats: CheckStats,
    /// `true` when the schedule space was fully enumerated within the
    /// bounds (no `max_schedules` cut-off).
    pub exhausted: bool,
    /// The first violation found, minimized — `None` for a clean space.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    /// `true` when no schedule violated any property.
    pub fn is_clean(&self) -> bool {
        self.counterexample.is_none() && self.stats.violations == 0
    }
}

/// Explores `scenario`'s schedule space depth-first within `bounds`.
///
/// Stops at the first violation, shrinks it with the delta-debugging
/// minimizer, and — when `fixture` names a file path — re-runs the
/// minimized schedule with a [`StoreObserver`](amac_store::StoreObserver)
/// attached to persist it as an `.amactrace` counterexample.
pub fn explore(scenario: &dyn Scenario, bounds: &Bounds, fixture: Option<&Path>) -> CheckReport {
    let mut stats = CheckStats::default();
    let mut seen: FastHashSet<u64> = FastHashSet::default();
    let mut prefix: Vec<u64> = Vec::new();
    let mut exhausted = false;
    let mut counterexample = None;

    loop {
        let mut source = ReplaySource::new(prefix.clone());
        let verdict = scenario.run(&mut source, None);
        let log = source.into_log();

        stats.schedules += 1;
        stats.events += verdict.events;
        stats.max_schedule_len = stats.max_schedule_len.max(log.len());
        if seen.insert(verdict.fingerprint) {
            stats.distinct += 1;
        } else {
            stats.duplicates += 1;
        }
        let free = bounds.max_depth.unwrap_or(usize::MAX).min(log.len());
        stats.depth_pinned += (log.len() - free) as u64;

        if let Some(property) = verdict.property {
            stats.violations += 1;
            let violating: Vec<u64> = log.iter().map(|d| d.chosen).collect();
            let original_len = violating.len();
            let ShrinkOutcome { schedule, runs } =
                shrink(scenario, violating, property, bounds.max_shrink_runs);
            // Re-run the minimized schedule, recording it if asked; its
            // verdict supplies the detail text the fixture reproduces.
            let mut replay = ReplaySource::new(schedule.clone());
            let minimized = scenario.run(&mut replay, fixture);
            debug_assert_eq!(minimized.property, Some(property));
            counterexample = Some(Counterexample {
                property,
                detail: minimized
                    .detail
                    .or(verdict.detail)
                    .unwrap_or_else(|| property.to_string()),
                schedule,
                original_len,
                shrink_runs: runs,
                fixture: fixture.map(Path::to_path_buf),
            });
            break;
        }

        // Defaults-first DFS step: bump the last incrementable decision
        // within the depth bound, drop everything after it.
        let Some(at) = (0..free).rev().find(|&i| log[i].chosen + 1 < log[i].width) else {
            exhausted = true;
            break;
        };
        prefix.clear();
        prefix.extend(log[..at].iter().map(|d| d.chosen));
        prefix.push(log[at].chosen + 1);

        if stats.schedules >= bounds.max_schedules {
            break;
        }
    }

    CheckReport {
        scenario: scenario.name().to_string(),
        stats,
        exhausted,
        counterexample,
    }
}
