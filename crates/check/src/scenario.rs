//! Checkable scenarios: a protocol instance plus its safety properties.
//!
//! A [`Scenario`] packages everything one execution needs — topology,
//! MAC bounds, protocol parameters, fault latitude — behind a single
//! entry point that resolves all nondeterminism through a
//! [`ReplaySource`] and judges the finished run against its properties.
//! The explorer re-invokes `run` once per schedule; the scenario must
//! therefore be a pure function of the schedule (it draws *everything*,
//! including crash placement and protocol back-offs, from the source).
//!
//! Properties are reported as a coarse identifier (for the shrinker to
//! match violations across schedules) plus a human-readable detail:
//!
//! * `"mac"` — one of the five model guarantees, from [`OnlineValidator`]
//!   (crash-conditioned when the schedule placed faults);
//! * `"consensus"` — agreement/validity/termination/integrity, from
//!   [`validate_consensus`];
//! * `"election"` — ≤ 1 elected leader and the election liveness
//!   conditions, from [`validate_election`];
//! * `"completion"` — a flood that went quiescent without delivering
//!   everything.
//!
//! [`OnlineValidator`]: amac_mac::OnlineValidator
//! [`validate_consensus`]: amac_proto::consensus::validate_consensus
//! [`validate_election`]: amac_proto::election::validate_election

use crate::schedule::ReplaySource;
use amac_core::{run_bmmb, Assignment, RunOptions};
use amac_graph::{generators, DualGraph, NodeId};
use amac_mac::trace::Trace;
use amac_mac::{ChoicePoint, ChoicePolicy, ChoiceSource, FaultPlan, MacConfig, ValidationReport};
use amac_proto::consensus::{run_consensus, ConsensusParams};
use amac_proto::election::run_election_with_backoffs;
use amac_sim::{Duration, Time};
use std::path::Path;

/// Property identifier for MAC-model guarantee violations.
pub const PROP_MAC: &str = "mac";
/// Property identifier for consensus safety/termination violations.
pub const PROP_CONSENSUS: &str = "consensus";
/// Property identifier for election safety/liveness violations.
pub const PROP_ELECTION: &str = "election";
/// Property identifier for incomplete floods.
pub const PROP_COMPLETION: &str = "completion";

/// The judged outcome of one execution.
#[derive(Clone, Debug)]
pub struct RunVerdict {
    /// Violated property identifier, when the run broke one.
    pub property: Option<&'static str>,
    /// Human-readable description of the first violation.
    pub detail: Option<String>,
    /// MAC-level events the execution emitted.
    pub events: u64,
    /// FNV-1a fingerprint of the emitted event stream — two schedules
    /// with equal fingerprints induced the same observable execution.
    pub fingerprint: u64,
}

/// A bounded model-checking target: builds and judges one execution per
/// schedule.
pub trait Scenario {
    /// Short identifier (used in reports and JSON output).
    fn name(&self) -> &str;

    /// Runs one execution with all nondeterminism resolved by `source`,
    /// optionally recording it to an `.amactrace` file at `record`.
    fn run(&self, source: &mut ReplaySource, record: Option<&Path>) -> RunVerdict;
}

/// Fingerprint of a recorded trace: FNV-1a (the workspace's canonical
/// digest function, [`amac_sim::fnv1a64`]) over every entry's canonical
/// byte encoding, in emission order.
pub fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut bytes = Vec::with_capacity(trace.entries().len() * 29);
    for e in trace.entries() {
        bytes.extend_from_slice(&e.time.ticks().to_le_bytes());
        bytes.extend_from_slice(&e.instance.seq().to_le_bytes());
        bytes.extend_from_slice(&(e.node.index() as u32).to_le_bytes());
        bytes.push(e.kind.code());
        bytes.extend_from_slice(&e.key.0.to_le_bytes());
    }
    amac_sim::fnv1a64(&bytes)
}

fn mac_verdict(validation: Option<&ValidationReport>) -> Option<String> {
    validation.and_then(|v| v.violations().first().map(std::string::ToString::to_string))
}

fn run_options(record: Option<&Path>) -> RunOptions {
    let options = RunOptions::default().capturing_trace();
    match record {
        // Schedules have no seed; the header seed is metadata only.
        Some(path) => options.recording(path, 0),
        None => options,
    }
}

/// Draws a crash plan from the source: `slots` crash slots, each either
/// skipped or placed on a `(node, tick)` pair with the tick inside
/// `window`. With `optional` the skip arm is alternative 0, so the DFS
/// default schedule is crash-free.
fn draw_crashes(
    source: &mut ReplaySource,
    nodes: usize,
    slots: usize,
    window: u64,
    optional: bool,
) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for _ in 0..slots {
        let width = nodes as u64 + u64::from(optional);
        let pick = source.choose(ChoicePoint::FaultPlacement, width);
        let target = if optional {
            if pick == 0 {
                continue; // skip arm: this slot crashes nobody
            }
            pick - 1
        } else {
            pick
        };
        let tick = source.choose(ChoicePoint::FaultPlacement, window);
        plan = plan.crash_at(NodeId::new(target as usize), Time::from_ticks(tick));
    }
    plan
}

/// Bounded consensus instance on a complete graph.
///
/// The *certified* construction runs the shipped protocol with the phase
/// count matching its crash budget ([`ConsensusParams::for_crashes`]) —
/// exhaustive exploration must find zero violations. The *broken*
/// construction under-provisions the phase count (1 phase against a
/// 1-crash budget), the classic flood-set mistake; the checker finds the
/// crash placement and delivery timing that break agreement, shrinks the
/// schedule, and emits the fixture.
#[derive(Clone, Debug)]
pub struct ConsensusScenario {
    /// Node count (complete reliable topology).
    pub nodes: usize,
    /// `F_ack` in ticks of the check-scale MAC config (`F_prog` = 1).
    pub f_ack: u64,
    /// Per-node initial values.
    pub inputs: Vec<bool>,
    /// Crash slots the schedule may place.
    pub crashes: usize,
    /// Crash slots may be skipped (certified) or must fire (broken —
    /// keeps the bug's precondition on every DFS branch so it is found
    /// without first exhausting the crash-free subspace).
    pub optional_crashes: bool,
    /// Crash ticks are drawn from `[0, crash_window)`.
    pub crash_window: u64,
    /// Phase-count override; `None` uses the shipped
    /// [`ConsensusParams::for_crashes`] provisioning.
    pub phases: Option<u64>,
}

impl ConsensusScenario {
    /// The shipped protocol, provisioned for `crashes` crashes: the
    /// certification target (expected violation-free).
    pub fn certified(nodes: usize, crashes: usize) -> ConsensusScenario {
        ConsensusScenario {
            nodes,
            f_ack: 2,
            // Minority holds `false` (the contagious value): the hardest
            // inputs for agreement-under-crash, since losing one node can
            // lose the minority value entirely.
            inputs: (0..nodes).map(|i| i != 0).collect(),
            crashes,
            optional_crashes: true,
            crash_window: 4,
            phases: None,
        }
    }

    /// The deliberately broken variant: a 1-crash budget served by a
    /// single phase. Used by tests and `repro check consensus --broken`
    /// to exercise the shrinker and fixture pipeline.
    pub fn broken(nodes: usize) -> ConsensusScenario {
        ConsensusScenario {
            crashes: 1,
            optional_crashes: false,
            phases: Some(1),
            ..ConsensusScenario::certified(nodes, 1)
        }
    }

    fn config(&self) -> MacConfig {
        MacConfig::from_ticks(1, self.f_ack).enhanced()
    }

    fn params(&self) -> ConsensusParams {
        let config = self.config();
        match self.phases {
            Some(phases) => ConsensusParams {
                phases,
                phase_len: config.f_ack() + Duration::from_ticks(2),
            },
            None => ConsensusParams::for_crashes(self.crashes, &config),
        }
    }
}

impl Scenario for ConsensusScenario {
    fn name(&self) -> &str {
        "consensus"
    }

    fn run(&self, source: &mut ReplaySource, record: Option<&Path>) -> RunVerdict {
        let dual = DualGraph::reliable(
            generators::complete(self.nodes).expect("complete graph of n ≥ 1 nodes"),
        );
        let plan = draw_crashes(
            source,
            self.nodes,
            self.crashes,
            self.crash_window,
            self.optional_crashes,
        );
        let report = run_consensus(
            &dual,
            self.config(),
            &self.inputs,
            &self.params(),
            plan,
            ChoicePolicy::new(&mut *source),
            &run_options(record),
        );
        let trace = report.trace.as_ref().expect("capturing_trace keeps it");
        let (property, detail) = if let Some(d) = mac_verdict(report.validation.as_ref()) {
            (Some(PROP_MAC), Some(d))
        } else if let Some(v) = report.check.violations().first() {
            (Some(PROP_CONSENSUS), Some(v.to_string()))
        } else {
            (None, None)
        };
        RunVerdict {
            property,
            detail,
            events: trace.entries().len() as u64,
            fingerprint: trace_fingerprint(trace),
        }
    }
}

/// Bounded leader-election instance on a complete graph, with per-node
/// back-offs enumerated by the schedule (via
/// [`run_election_with_backoffs`]) alongside the scheduler's freedom.
#[derive(Clone, Debug)]
pub struct ElectionScenario {
    /// Node count (complete reliable topology).
    pub nodes: usize,
    /// `F_ack` in ticks of the check-scale MAC config (`F_prog` = 1).
    pub f_ack: u64,
    /// Back-offs are drawn from `[0, window)` ticks per node.
    pub window: u64,
}

impl ElectionScenario {
    /// The shipped election protocol at check scale (expected
    /// violation-free).
    pub fn certified(nodes: usize) -> ElectionScenario {
        ElectionScenario {
            nodes,
            f_ack: 2,
            window: 2,
        }
    }
}

impl Scenario for ElectionScenario {
    fn name(&self) -> &str {
        "election"
    }

    fn run(&self, source: &mut ReplaySource, record: Option<&Path>) -> RunVerdict {
        let dual = DualGraph::reliable(
            generators::complete(self.nodes).expect("complete graph of n ≥ 1 nodes"),
        );
        let config = MacConfig::from_ticks(1, self.f_ack).enhanced();
        let backoffs: Vec<Duration> = (0..self.nodes)
            .map(|_| Duration::from_ticks(source.choose(ChoicePoint::ProtocolChoice, self.window)))
            .collect();
        let report = run_election_with_backoffs(
            &dual,
            config,
            &backoffs,
            FaultPlan::new(),
            ChoicePolicy::new(&mut *source),
            &run_options(record),
        );
        let trace = report.trace.as_ref().expect("capturing_trace keeps it");
        let (property, detail) = if let Some(d) = mac_verdict(report.validation.as_ref()) {
            (Some(PROP_MAC), Some(d))
        } else if let Some(v) = report.check.violations().first() {
            (Some(PROP_ELECTION), Some(v.to_string()))
        } else {
            (None, None)
        };
        RunVerdict {
            property,
            detail,
            events: trace.entries().len() as u64,
            fingerprint: trace_fingerprint(trace),
        }
    }
}

/// Bounded BMMB flood on a line: `messages` tokens injected at node 0,
/// checked for MAC conformance and completion at quiescence.
#[derive(Clone, Debug)]
pub struct FloodScenario {
    /// Node count (line topology — the diameter-stressing shape).
    pub nodes: usize,
    /// Messages all started at node 0.
    pub messages: usize,
    /// `F_ack` in ticks of the check-scale MAC config (`F_prog` = 1).
    pub f_ack: u64,
}

impl FloodScenario {
    /// The shipped BMMB flood at check scale (expected violation-free).
    pub fn certified(nodes: usize, messages: usize) -> FloodScenario {
        FloodScenario {
            nodes,
            messages,
            f_ack: 2,
        }
    }
}

impl Scenario for FloodScenario {
    fn name(&self) -> &str {
        "flood"
    }

    fn run(&self, source: &mut ReplaySource, record: Option<&Path>) -> RunVerdict {
        let dual = DualGraph::reliable(generators::line(self.nodes).expect("line of n ≥ 2 nodes"));
        let config = MacConfig::from_ticks(1, self.f_ack);
        let report = run_bmmb(
            &dual,
            config,
            &Assignment::all_at(NodeId::new(0), self.messages),
            ChoicePolicy::new(&mut *source),
            &run_options(record),
        );
        let trace = report.trace.as_ref().expect("capturing_trace keeps it");
        let (property, detail) = if let Some(d) = mac_verdict(report.validation.as_ref()) {
            (Some(PROP_MAC), Some(d))
        } else if report.completion.is_none() {
            (
                Some(PROP_COMPLETION),
                Some("flood went quiescent before every node held every message".to_string()),
            )
        } else {
            (None, None)
        };
        RunVerdict {
            property,
            detail,
            events: trace.entries().len() as u64,
            fingerprint: trace_fingerprint(trace),
        }
    }
}
