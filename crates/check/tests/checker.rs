//! End-to-end checker tests: clean certification of shipped protocols,
//! counterexample discovery + shrinking on the broken scenario, fixture
//! round-trip through the store, and bound behavior.

use amac_check::{
    check_fixture, explore, Bounds, ConsensusScenario, ElectionScenario, FloodScenario,
    ReplaySource, Scenario, PROP_CONSENSUS,
};

fn capped(max_schedules: u64) -> Bounds {
    Bounds {
        max_schedules,
        ..Bounds::default()
    }
}

#[test]
fn certified_consensus_exhausts_clean() {
    let report = explore(
        &ConsensusScenario::certified(3, 0),
        &Bounds::default(),
        None,
    );
    assert!(report.exhausted, "space must be fully enumerated");
    assert!(report.is_clean(), "shipped consensus must not violate");
    // The crash-free 3-node space is exactly 13^3 schedules: per
    // broadcast, ack delay ∈ {1,2} then two receiver delays ∈ [1,ack],
    // giving 1·1 + 2·2·... = 13 delivery plans for each of the three
    // initial broadcasts. A change here means the model's freedom moved.
    assert_eq!(report.stats.schedules, 2_197);
    assert_eq!(report.stats.depth_pinned, 0, "full depth pins nothing");
}

#[test]
fn certified_election_exhausts_clean() {
    let scenario = ElectionScenario {
        nodes: 2,
        f_ack: 2,
        window: 2,
    };
    let report = explore(&scenario, &Bounds::default(), None);
    assert!(report.exhausted && report.is_clean());
    assert_eq!(report.stats.schedules, 2_020);
}

#[test]
fn certified_flood_exhausts_clean() {
    let report = explore(&FloodScenario::certified(4, 1), &Bounds::default(), None);
    assert!(report.exhausted && report.is_clean());
    assert_eq!(report.stats.schedules, 4_225);
}

#[test]
fn broken_consensus_yields_minimized_counterexample() {
    let report = explore(&ConsensusScenario::broken(3), &Bounds::default(), None);
    assert!(!report.is_clean());
    let cx = report
        .counterexample
        .expect("one phase cannot absorb a crash");
    assert_eq!(cx.property, PROP_CONSENSUS);
    assert!(cx.detail.contains("agreement"), "detail: {}", cx.detail);
    assert!(
        cx.schedule.len() <= 6 && cx.schedule.len() < cx.original_len,
        "shrinker must reduce {} draws, got {:?}",
        cx.original_len,
        cx.schedule
    );

    // Determinism: replaying the minimized schedule reproduces the
    // violation and the exact event stream, twice.
    let scenario = ConsensusScenario::broken(3);
    let rerun = |schedule: &[u64]| {
        let mut source = ReplaySource::new(schedule.to_vec());
        scenario.run(&mut source, None)
    };
    let first = rerun(&cx.schedule);
    let second = rerun(&cx.schedule);
    assert_eq!(first.property, Some(PROP_CONSENSUS));
    assert_eq!(first.fingerprint, second.fingerprint);
}

#[test]
fn broken_consensus_fixture_replays_to_same_violation() {
    let dir = std::env::temp_dir().join("amac-check-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken-consensus.amactrace");
    let _ = std::fs::remove_file(&path);

    let report = explore(
        &ConsensusScenario::broken(3),
        &Bounds::default(),
        Some(&path),
    );
    let cx = report.counterexample.expect("violation expected");
    assert_eq!(cx.fixture.as_deref(), Some(path.as_path()));

    // The stored stream alone must reproduce the verdict: zero MAC-model
    // violations (the runtime honored its guarantees throughout) and the
    // same reconstructed disagreement the live checker reported.
    let check = check_fixture(&path).expect("fixture must decode");
    assert_eq!(check.mac_violations, 0);
    let verdict = check
        .estimate_verdict
        .expect("disagreement must survive replay");
    assert_eq!(verdict, cx.detail);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn depth_bound_pins_tail_decisions() {
    let report = explore(
        &ConsensusScenario::certified(3, 0),
        &Bounds {
            max_depth: Some(2),
            ..Bounds::default()
        },
        None,
    );
    assert!(report.exhausted, "bounded space still enumerates fully");
    assert!(report.is_clean());
    assert!(
        report.stats.depth_pinned > 0,
        "decisions past depth 2 pinned"
    );
    assert!(
        report.stats.schedules < 2_197,
        "bounding must shrink the space, got {}",
        report.stats.schedules
    );
}

#[test]
fn schedule_cap_reports_non_exhaustion() {
    let report = explore(&ElectionScenario::certified(3), &capped(500), None);
    assert!(!report.exhausted, "cap hit must not claim exhaustion");
    assert_eq!(report.stats.schedules, 500);
    assert!(report.is_clean());
}

#[test]
fn fingerprint_dedup_counts_duplicates() {
    // Crash slots introduce schedules that differ only in pre-crash
    // draws for a node that dies: distinct schedules, same stream.
    let report = explore(&ConsensusScenario::broken(3), &Bounds::default(), None);
    assert!(
        report.stats.duplicates > 0,
        "crash subspace must collapse some fingerprints"
    );
    assert_eq!(
        report.stats.distinct + report.stats.duplicates,
        report.stats.schedules
    );
}
