//! Message payloads carried by the abstract MAC layer.

use std::fmt;

/// A semantic key identifying *what a message says*, as opposed to the
/// per-broadcast instance identity.
///
/// The model treats every local broadcast as a unique *instance*; two
/// broadcasts of the same MMB message by different nodes are different
/// instances carrying the same content. Adversarial schedulers use the key
/// to recognise deliveries that are useless to the receiver (e.g. feeding a
/// node duplicates it will discard), which is exactly the freedom the
/// paper's lower-bound constructions exploit.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageKey(pub u64);

impl fmt::Debug for MessageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

impl fmt::Display for MessageKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A payload transportable by the abstract MAC layer.
///
/// Implementors must be cheap to clone (payloads are cloned once per
/// delivery); algorithms in this workspace use small enums or ids.
///
/// # Examples
///
/// ```
/// use amac_mac::{MacMessage, MessageKey};
///
/// #[derive(Clone, Debug)]
/// struct Flood(u64);
///
/// impl MacMessage for Flood {
///     fn key(&self) -> MessageKey {
///         MessageKey(self.0)
///     }
/// }
///
/// assert_eq!(Flood(7).key(), MessageKey(7));
/// ```
pub trait MacMessage: Clone + fmt::Debug + 'static {
    /// The semantic key of this payload (see [`MessageKey`]). Payloads with
    /// equal keys are interchangeable from the receiver's perspective.
    fn key(&self) -> MessageKey;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Probe(u64);
    impl MacMessage for Probe {
        fn key(&self) -> MessageKey {
            MessageKey(self.0 * 2)
        }
    }

    #[test]
    fn key_formats() {
        assert_eq!(format!("{}", MessageKey(9)), "k9");
        assert_eq!(format!("{:?}", MessageKey(9)), "k9");
    }

    #[test]
    fn trait_object_friendly_usage() {
        let p = Probe(21);
        assert_eq!(p.key(), MessageKey(42));
        let q = p.clone();
        assert_eq!(q.key(), p.key());
    }
}
