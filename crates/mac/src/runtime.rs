//! The abstract MAC layer runtime: couples node automata, a message
//! scheduler policy, and the dual-graph topology into a deterministic
//! discrete-event execution that honours the model's five guarantees.
//!
//! ## How the guarantees are enforced
//!
//! * **Receive correctness** — at most one `rcv` per (instance, receiver);
//!   receivers are always `G′`-neighbors of the sender; every `rcv` happens
//!   no later than the instance's termination (pending deliveries are
//!   flushed immediately before an `ack` and cancelled on `abort`, i.e.
//!   `ε_abort = 0`).
//! * **Ack correctness** — every reliable neighbor is delivered before the
//!   `ack` (policies that omit a reliable neighbor get it scheduled at the
//!   ack deadline); each instance terminates at most once.
//! * **Termination** — every instance gets an `ack` (or an `abort` by its
//!   sender) as long as the execution is run to idleness.
//! * **Ack bound** — the requested ack delay is clamped into `[1, F_ack]`.
//! * **Progress bound** — a window `(s, s+L]` with `L > F_prog` violates
//!   the bound only if some `G`-neighbor instance spans it **and** no
//!   receive from a *contending* instance (one not terminated before `s`)
//!   has occurred by its end. A past receive therefore *covers* every
//!   window that starts before its instance terminates. The runtime tracks,
//!   per receiver `j`: the in-flight instances that already delivered to
//!   `j` (*live protectors* — while any exists, no window can violate), and
//!   the latest termination time `pf` among past protectors. When
//!   unprotected, the earliest violating window starts at
//!   `s = max(oldest connected start, pf)` and closes at `s + F_prog + 1`;
//!   the runtime schedules a forced delivery for that instant, chosen by
//!   the policy among in-flight `G′`-instances that have not yet delivered
//!   to `j` (this is where an adversary feeds duplicates). Such a candidate
//!   always exists when unprotected, since the spanning instance itself
//!   qualifies.
//!
//! ## Observation
//!
//! The runtime does not retain any view of its own execution. Every
//! MAC-level event is emitted to the attached [`Observer`]s (see
//! [`observer`](crate::observer)): attach a [`TraceObserver`] for the full
//! [`Trace`], an [`OnlineValidator`](crate::OnlineValidator) for streaming
//! conformance checking, or any custom observer. With no observers
//! attached, the hot path records nothing.

use crate::config::MacConfig;
use crate::fault::{FaultKind, FaultPlan};
use crate::instance::InstanceId;
use crate::message::{MacMessage, MessageKey};
use crate::node::{Automaton, Command, Ctx};
use crate::observer::{Observer, ObserverHandle, ObserverSet, TraceObserver};
use crate::policy::{BcastInfo, ForcedCandidate, Policy, PolicyCtx};
use crate::small_set::SortedSet;
use crate::trace::{Trace, TraceEntry, TraceKind};
use amac_graph::{DualGraph, NodeId, Partition};
use amac_sim::stats::Counters;
use amac_sim::{
    Duration, EventId, EventQueue, FastHashMap, FastHashSet, ShardStats, ShardedEventQueue, Time,
};
use std::fmt;
use std::sync::Arc;

/// Why a [`Runtime::run`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// No deliverable events remain; the execution is quiescent.
    Idle,
    /// The next pending event lies beyond the requested time horizon.
    TimeLimit,
    /// The configured event-count safety cap was reached.
    EventLimit,
    /// The caller stopped the run (e.g. on problem completion) with events
    /// still pending.
    Stopped,
}

/// A problem-level output emitted by a node via [`Ctx::output`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputRecord<O> {
    /// When the output was emitted.
    pub time: Time,
    /// The emitting node.
    pub node: NodeId,
    /// The output value.
    pub out: O,
}

enum Ev<E> {
    Start(NodeId),
    Env(NodeId, E),
    Deliver(InstanceId, NodeId),
    AckDue(InstanceId),
    ProgressCheck(NodeId),
    Timer(NodeId, u64, u64),
    Fault(NodeId, FaultKind),
}

/// The runtime's pending-event queue: a single [`EventQueue`] (the default)
/// or a [`ShardedEventQueue`] routing each event to its node's shard (see
/// [`Runtime::with_shards`]). Methods mirror the queue API with the routing
/// node made explicit. Kept as a plain field (not behind an accessor) so
/// cancel sites can split borrows against `instances`.
enum Queue<E> {
    Single(EventQueue<E>),
    Sharded {
        q: Box<ShardedEventQueue<E>>,
        part: Partition,
    },
}

impl<E> Queue<E> {
    fn now(&self) -> Time {
        match self {
            Queue::Single(q) => q.now(),
            Queue::Sharded { q, .. } => q.now(),
        }
    }

    fn schedule(&mut self, at: Time, node: NodeId, event: E) -> EventId {
        match self {
            Queue::Single(q) => q.schedule(at, event),
            Queue::Sharded { q, part } => q.schedule(part.shard_of(node), at, event),
        }
    }

    fn schedule_after(&mut self, delay: Duration, node: NodeId, event: E) -> EventId {
        match self {
            Queue::Single(q) => q.schedule_after(delay, event),
            Queue::Sharded { q, part } => q.schedule_after(part.shard_of(node), delay, event),
        }
    }

    fn cancel(&mut self, id: EventId) -> bool {
        match self {
            Queue::Single(q) => q.cancel(id),
            Queue::Sharded { q, .. } => q.cancel(id),
        }
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        match self {
            Queue::Single(q) => q.pop(),
            Queue::Sharded { q, .. } => q.pop(),
        }
    }

    fn peek_time(&mut self) -> Option<Time> {
        match self {
            Queue::Single(q) => q.peek_time(),
            Queue::Sharded { q, .. } => q.peek_time(),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Terminated {
    Acked,
    Aborted,
    /// The sender crashed mid-instance: deliveries already made stand, the
    /// rest (and the ack) are silenced. No event marks this — the crash
    /// itself is emitted to the observers' fault channel.
    Crashed,
}

/// Per-instance state. The payload is interned behind an [`Arc`] at
/// broadcast time — deliveries clone the pointer, not the payload — and
/// dropped at termination along with the delivery bookkeeping, so retired
/// instances cost a few words each.
struct InstanceState<M> {
    sender: NodeId,
    msg: Option<Arc<M>>,
    key: MessageKey,
    start: Time,
    delivered: Vec<NodeId>,
    pending: Vec<(NodeId, EventId)>,
    ack_event: Option<EventId>,
    terminated: Option<(Time, Terminated)>,
}

/// Hot-path event counters kept as plain fields — the string-keyed
/// [`Counters`] map costs a comparison walk per increment, which is
/// measurable at millions of events per second. Materialized into a
/// [`Counters`] on demand.
#[derive(Clone, Copy, Default)]
struct HotCounters {
    events: u64,
    env: u64,
    timer: u64,
    bcast: u64,
    rcv: u64,
    ack: u64,
    abort: u64,
    forced_rcv: u64,
    forced_ack: u64,
    crash: u64,
    recover: u64,
}

impl HotCounters {
    fn materialize(&self) -> Counters {
        let mut counters = Counters::new();
        for (key, value) in [
            ("events", self.events),
            ("env", self.env),
            ("timer", self.timer),
            ("bcast", self.bcast),
            ("rcv", self.rcv),
            ("ack", self.ack),
            ("abort", self.abort),
            ("forced_rcv", self.forced_rcv),
            ("forced_ack", self.forced_ack),
            ("crash", self.crash),
            ("recover", self.recover),
        ] {
            if value > 0 {
                counters.add(key, value);
            }
        }
        counters
    }
}

/// The abstract MAC layer execution engine.
///
/// Generic over the node [`Automaton`] `A` and the scheduler [`Policy`]
/// `P`. Executions are fully deterministic given the topology, the node
/// states, and the policy (including any seeds it holds).
///
/// # Examples
///
/// See [`crate`] documentation for an end-to-end example.
pub struct Runtime<A: Automaton, P: Policy> {
    dual: DualGraph,
    config: MacConfig,
    nodes: Vec<A>,
    policy: P,
    queue: Queue<Ev<A::Env>>,
    instances: Vec<InstanceState<A::Msg>>,
    in_flight_of: Vec<Option<InstanceId>>,
    /// Per receiver: in-flight instances that already delivered to it.
    live_protectors: Vec<SortedSet<InstanceId>>,
    /// Per receiver: latest termination time among past protectors.
    protected_until: Vec<Option<Time>>,
    connected: Vec<SortedSet<InstanceId>>,
    contending: Vec<SortedSet<InstanceId>>,
    check_scheduled: Vec<bool>,
    // Determinism policy: every collection whose *iteration order* can
    // reach execution (in particular `connected`/`contending`, which
    // build the forced-delivery candidate list handed to
    // `Policy::pick_forced`) must be ordered — a sorted-vec `SortedSet`
    // or indexed `Vec` — so executions are bit-reproducible from the seed
    // alone, across processes and thread counts. `seen_keys` and `timers`
    // are membership/keyed access only (never iterated), so hashed
    // collections are safe and keep those hot-path lookups O(1).
    seen_keys: Vec<FastHashSet<MessageKey>>,
    crashed: Vec<bool>,
    timers: FastHashMap<u64, EventId>,
    next_timer: u64,
    outputs: Vec<OutputRecord<A::Out>>,
    observers: ObserverSet,
    counters: HotCounters,
    event_limit: u64,
    // Scratch buffers, recycled across events so the hot path does not
    // allocate per event. `cmd_pool` is a stack because callbacks nest
    // (apply → deliver → callback → apply).
    cmd_pool: Vec<Vec<Command<A::Msg, A::Out>>>,
    forced_scratch: Vec<ForcedCandidate>,
    delay_scratch: Vec<(NodeId, Duration)>,
    pending_pool: Vec<Vec<(NodeId, EventId)>>,
    receiver_pool: Vec<Vec<NodeId>>,
}

impl<A: Automaton, P: Policy> Runtime<A, P> {
    /// Creates a runtime over `dual` with one automaton per node.
    ///
    /// No observers are attached: the execution records nothing about
    /// itself. Attach a [`TraceObserver`] (or call
    /// [`tracing`](Runtime::tracing)) for a full trace, or an
    /// [`OnlineValidator`](crate::OnlineValidator) for streaming
    /// conformance checking.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != dual.len()`.
    pub fn new(dual: DualGraph, config: MacConfig, nodes: Vec<A>, policy: P) -> Self {
        assert_eq!(
            nodes.len(),
            dual.len(),
            "need exactly one automaton per node"
        );
        let n = dual.len();
        let mut queue = EventQueue::new();
        for i in 0..n {
            queue.schedule(Time::ZERO, Ev::Start(NodeId::new(i)));
        }
        Runtime {
            dual,
            config,
            nodes,
            policy,
            queue: Queue::Single(queue),
            instances: Vec::new(),
            in_flight_of: vec![None; n],
            live_protectors: vec![SortedSet::new(); n],
            protected_until: vec![None; n],
            connected: vec![SortedSet::new(); n],
            contending: vec![SortedSet::new(); n],
            check_scheduled: vec![false; n],
            seen_keys: vec![FastHashSet::default(); n],
            crashed: vec![false; n],
            timers: FastHashMap::default(),
            next_timer: 0,
            outputs: Vec::new(),
            observers: ObserverSet::default(),
            counters: HotCounters::default(),
            event_limit: 200_000_000,
            cmd_pool: Vec::new(),
            forced_scratch: Vec::new(),
            delay_scratch: Vec::new(),
            pending_pool: Vec::new(),
            receiver_pool: Vec::new(),
        }
    }

    /// Attaches an observer; every subsequent MAC-level event (and applied
    /// fault) is streamed to it. Returns a typed handle for
    /// [`observer`](Runtime::observer) / [`detach`](Runtime::detach).
    pub fn attach<O: Observer>(&mut self, observer: O) -> ObserverHandle<O> {
        self.observers.attach(observer)
    }

    /// Borrows an attached observer.
    ///
    /// # Panics
    ///
    /// Panics if the observer was already detached.
    pub fn observer<O: Observer>(&self, handle: &ObserverHandle<O>) -> &O {
        self.observers.get(handle)
    }

    /// Detaches an observer, returning it by value.
    ///
    /// # Panics
    ///
    /// Panics if the observer was already detached.
    pub fn detach<O: Observer>(&mut self, handle: ObserverHandle<O>) -> O {
        self.observers.detach(handle)
    }

    /// Convenience builder: attaches a [`TraceObserver`] so the execution
    /// records a full [`Trace`], retrievable via [`trace`](Runtime::trace)
    /// or [`into_trace`](Runtime::into_trace) — the historical default
    /// behaviour, now opt-in.
    pub fn tracing(mut self) -> Self {
        self.attach(TraceObserver::new());
        self
    }

    /// Sets the safety cap on processed events (default 2·10⁸).
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Switches the runtime to sharded execution: the dual graph is
    /// partitioned into `k` contiguous BFS blocks
    /// ([`amac_graph::partition::contiguous`]) and events run on one
    /// [`ShardedEventQueue`] shard per block, synchronized by conservative
    /// time windows of width `min(F_prog, F_ack)` with cross-shard events
    /// exchanged at window barriers in canonical `(tick, shard, slot)`
    /// order.
    ///
    /// The execution — observer stream, traces, validator verdicts,
    /// digests — is **byte-identical** to the sequential runtime for every
    /// seed and every `k` (including `k = 1`): the shards share one event
    /// sequence counter and the coordinator always pops the globally
    /// minimal `(time, seq)` event, so the total event order is exactly
    /// the sequential one.
    ///
    /// `k` is clamped to [`amac_sim::MAX_SHARDS`]; `k` may exceed the node
    /// count (trailing shards stay empty).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, or if called after
    /// [`with_faults`](Runtime::with_faults),
    /// [`inject`](Runtime::inject), or the first
    /// step — sharding must be decided before any event beyond the initial
    /// node starts is scheduled, so the shared sequence numbering matches
    /// the sequential runtime's.
    pub fn with_shards(mut self, k: usize) -> Self {
        assert!(k >= 1, "shard count must be at least 1");
        let k = k.min(amac_sim::MAX_SHARDS);
        let n = self.dual.len();
        match &self.queue {
            Queue::Single(q) => assert!(
                q.now() == Time::ZERO && q.delivered() == 0 && q.pending_upper_bound() == n,
                "with_shards must be called before with_faults/inject and before stepping"
            ),
            Queue::Sharded { .. } => panic!("with_shards called twice"),
        }
        let window = self.config.f_prog().min(self.config.f_ack());
        let part = amac_graph::partition::contiguous(&self.dual, k);
        let mut q = ShardedEventQueue::new(k, window);
        for i in 0..n {
            let node = NodeId::new(i);
            q.schedule(part.shard_of(node), Time::ZERO, Ev::Start(node));
        }
        self.queue = Queue::Sharded {
            q: Box::new(q),
            part,
        };
        self
    }

    /// Deploys the sharded queue's **thread-per-shard drain**: at every
    /// window barrier, up to `threads` scoped workers
    /// (`std::thread::scope`, clamped to the shard count) integrate
    /// buffered cross-window events and extract the next window from
    /// their shards' heaps in parallel, while the runtime's handlers —
    /// and therefore the observer stream, every policy draw, and all
    /// instance numbering — keep executing serially on the coordinator in
    /// canonical `(time, seq)` order. Execution stays **byte-identical**
    /// to the sequential runtime for every `(shards, threads)` pair; the
    /// window width adapts to the measured lookahead-miss and
    /// barrier-slack rates ([`amac_sim::WindowTuning::Adaptive`]), which
    /// is order-neutral by construction.
    ///
    /// # Panics
    ///
    /// Panics unless [`with_shards`](Runtime::with_shards) was called
    /// first, or if events were already delivered.
    pub fn with_shard_threads(mut self, threads: usize) -> Self
    where
        A::Env: Send,
    {
        match &mut self.queue {
            Queue::Single(_) => panic!("with_shard_threads requires with_shards first"),
            Queue::Sharded { q, .. } => {
                q.enable_threaded_drain(threads, amac_sim::WindowTuning::Adaptive);
            }
        }
        self
    }

    /// Barrier-worker threads of the threaded shard drain (0 when fused
    /// or sequential).
    pub fn shard_threads(&self) -> usize {
        match &self.queue {
            Queue::Single(_) => 0,
            Queue::Sharded { q, .. } => q.drain_threads(),
        }
    }

    /// Per-shard execution statistics (barriers, outboxed cross-shard
    /// events, lookahead misses, peak pending, barrier slack), or `None`
    /// in sequential mode.
    pub fn shard_stats(&self) -> Option<ShardStats> {
        match &self.queue {
            Queue::Single(_) => None,
            Queue::Sharded { q, .. } => Some(q.stats()),
        }
    }

    /// Turns on the sharded queue's wall-clock self-profiling (see
    /// [`amac_sim::ShardProfile`]). No-op in sequential mode; off by
    /// default so deterministic runs pay nothing for it.
    pub fn enable_shard_profiling(&mut self) {
        if let Queue::Sharded { q, .. } = &mut self.queue {
            q.enable_profiling();
        }
    }

    /// The sharded queue's wall-clock self-profile — a nondeterministic
    /// side channel, `None` unless
    /// [`enable_shard_profiling`](Runtime::enable_shard_profiling) was
    /// called on a sharded runtime.
    pub fn shard_profile(&self) -> Option<amac_sim::ShardProfile> {
        match &self.queue {
            Queue::Single(_) => None,
            Queue::Sharded { q, .. } => q.profile(),
        }
    }

    /// Arms a [`FaultPlan`]: each scheduled crash/recovery is applied at
    /// its time, emitted to the observers' fault channel, and enforced by
    /// the runtime (a crashed node neither broadcasts, acknowledges,
    /// receives, nor gets callbacks until it recovers; its in-flight
    /// broadcast is silenced at the crash, leaving prior deliveries
    /// standing).
    ///
    /// # Panics
    ///
    /// Panics if the plan names a node outside the topology.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        for e in plan.events() {
            assert!(
                e.node.index() < self.dual.len(),
                "fault plan names node {} outside the {}-node topology",
                e.node,
                self.dual.len()
            );
            self.queue.schedule(e.at, e.node, Ev::Fault(e.node, e.kind));
        }
        self
    }

    /// The topology this execution runs over.
    pub fn dual(&self) -> &DualGraph {
        &self.dual
    }

    /// The MAC configuration.
    pub fn config(&self) -> &MacConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Read access to a node automaton (for completion checks in tests and
    /// harnesses).
    pub fn node(&self, id: NodeId) -> &A {
        &self.nodes[id.index()]
    }

    /// Number of message instances started so far.
    pub fn instances_started(&self) -> usize {
        self.instances.len()
    }

    /// Event counters (`bcast`, `rcv`, `ack`, `abort`, `forced_rcv`,
    /// `forced_ack`, …), materialized from the runtime's plain-field hot
    /// counters (a per-event string-keyed map lookup was measurable).
    pub fn counters(&self) -> Counters {
        self.counters.materialize()
    }

    /// The trace recorded by an attached [`TraceObserver`], if any (see
    /// [`tracing`](Runtime::tracing)).
    pub fn trace(&self) -> Option<&Trace> {
        self.observers
            .find::<TraceObserver>()
            .map(TraceObserver::trace)
    }

    /// `true` while `node` is crashed (between an applied crash and any
    /// later recovery).
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.index()]
    }

    /// All outputs emitted since the last [`drain_outputs`](Runtime::drain_outputs).
    pub fn outputs(&self) -> &[OutputRecord<A::Out>] {
        &self.outputs
    }

    /// Drains outputs emitted since the last call, keeping the buffer's
    /// capacity (harness loops call this per event step — no allocation).
    pub fn drain_outputs(&mut self) -> std::vec::Drain<'_, OutputRecord<A::Out>> {
        self.outputs.drain(..)
    }

    /// Schedules an environment input for `node` at the current time (use
    /// before the first [`step`](Runtime::step) for the paper's time-0
    /// `arrive` events, or mid-run for online arrivals).
    pub fn inject(&mut self, node: NodeId, input: A::Env) {
        let now = self.queue.now();
        self.queue.schedule(now, node, Ev::Env(node, input));
    }

    /// Schedules an environment input at an absolute future time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject_at(&mut self, at: Time, node: NodeId, input: A::Env) {
        self.queue.schedule(at, node, Ev::Env(node, input));
    }

    /// Processes a single event. Returns `false` when no events remain.
    pub fn step(&mut self) -> bool {
        let Some((_, ev)) = self.queue.pop() else {
            return false;
        };
        self.counters.events += 1;
        match ev {
            Ev::Start(node) => {
                if self.crashed[node.index()] {
                    return true;
                }
                let cmds = self.callback(node, super::node::Automaton::on_start);
                self.apply(node, cmds);
            }
            Ev::Env(node, input) => {
                if self.crashed[node.index()] {
                    return true; // inputs to a crashed node are lost
                }
                self.counters.env += 1;
                let cmds = self.callback(node, |n, ctx| n.on_env(input, ctx));
                self.apply(node, cmds);
            }
            Ev::Deliver(inst, to) => {
                // Drop the pending entry for this receiver; the event
                // already fired so there is nothing to cancel.
                let st = &mut self.instances[inst.index()];
                st.pending.retain(|(n, _)| *n != to);
                self.deliver_core(inst, to, false);
            }
            Ev::AckDue(inst) => {
                if self.instances[inst.index()].terminated.is_none() {
                    self.ack_instance(inst, false);
                }
            }
            Ev::ProgressCheck(node) => self.progress_check(node),
            Ev::Timer(node, tag, key) => {
                if self.timers.remove(&key).is_some() {
                    if self.crashed[node.index()] {
                        return true; // timer firings during an outage are lost
                    }
                    self.counters.timer += 1;
                    let cmds = self.callback(node, |n, ctx| n.on_timer(tag, ctx));
                    self.apply(node, cmds);
                }
            }
            Ev::Fault(node, FaultKind::Crash) => self.crash_node(node),
            Ev::Fault(node, FaultKind::Recover) => self.recover_node(node),
        }
        true
    }

    /// Processes the next event if it lies within `horizon`: returns `None`
    /// after processing one event, or `Some(outcome)` when the run should
    /// stop. Lets harnesses interleave stepping with their own checks
    /// (completion detection, output draining).
    pub fn run_until_next(&mut self, horizon: Time) -> Option<RunOutcome> {
        if self.counters.events >= self.event_limit {
            return Some(RunOutcome::EventLimit);
        }
        match self.queue.peek_time() {
            None => Some(RunOutcome::Idle),
            Some(t) if t > horizon => Some(RunOutcome::TimeLimit),
            Some(_) => {
                self.step();
                None
            }
        }
    }

    /// Runs until quiescence or until the next event would lie beyond
    /// `horizon`.
    pub fn run_until(&mut self, horizon: Time) -> RunOutcome {
        loop {
            if let Some(outcome) = self.run_until_next(horizon) {
                return outcome;
            }
        }
    }

    /// Runs to quiescence (bounded by the event-count safety cap).
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(Time::MAX)
    }

    /// Consumes the runtime, returning the trace recorded by an attached
    /// [`TraceObserver`] (if any).
    pub fn into_trace(mut self) -> Option<Trace> {
        self.observers
            .take_first::<TraceObserver>()
            .map(TraceObserver::into_trace)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn callback<F>(&mut self, node: NodeId, f: F) -> Vec<Command<A::Msg, A::Out>>
    where
        F: FnOnce(&mut A, &mut Ctx<'_, A::Msg, A::Out>),
    {
        let now = self.queue.now();
        let commands = self.cmd_pool.pop().unwrap_or_default();
        debug_assert!(commands.is_empty());
        let mut ctx = Ctx {
            node,
            now,
            config: &self.config,
            dual: &self.dual,
            in_flight: self.in_flight_of[node.index()].is_some(),
            commands,
            next_timer: &mut self.next_timer,
        };
        f(&mut self.nodes[node.index()], &mut ctx);
        ctx.commands
    }

    fn apply(&mut self, node: NodeId, mut commands: Vec<Command<A::Msg, A::Out>>) {
        for cmd in commands.drain(..) {
            match cmd {
                Command::Bcast(msg) => self.start_instance(node, msg),
                Command::Abort => self.abort_in_flight(node),
                Command::SetTimer { id, delay, tag } => {
                    let ev = self
                        .queue
                        .schedule_after(delay, node, Ev::Timer(node, tag, id.0));
                    self.timers.insert(id.0, ev);
                }
                Command::CancelTimer(id) => {
                    if let Some(ev) = self.timers.remove(&id.0) {
                        self.queue.cancel(ev);
                    }
                }
                Command::Output(out) => {
                    self.outputs.push(OutputRecord {
                        time: self.queue.now(),
                        node,
                        out,
                    });
                }
            }
        }
        self.cmd_pool.push(commands);
    }

    #[inline]
    fn emit(&mut self, inst: InstanceId, node: NodeId, kind: TraceKind, key: MessageKey) {
        self.observers.emit(&TraceEntry {
            time: self.queue.now(),
            instance: inst,
            node,
            kind,
            key,
        });
    }

    fn start_instance(&mut self, sender: NodeId, msg: A::Msg) {
        debug_assert!(
            !self.crashed[sender.index()],
            "crashed node {sender} cannot broadcast (callbacks are suppressed)"
        );
        assert!(
            self.in_flight_of[sender.index()].is_none(),
            "node {sender} issued a second bcast without ack/abort (user well-formedness)"
        );
        let now = self.queue.now();
        let id = InstanceId::new(self.instances.len() as u64);
        let key = msg.key();
        self.seen_keys[sender.index()].insert(key);
        self.counters.bcast += 1;

        let plan = {
            let ctx = PolicyCtx {
                dual: &self.dual,
                config: &self.config,
                now,
            };
            self.policy.plan_bcast(
                &ctx,
                &BcastInfo {
                    instance: id,
                    sender,
                    key,
                },
            )
        };

        let f_ack = self.config.f_ack();
        let ack_delay = plan.ack_delay.max(Duration::TICK).min(f_ack);

        // Delivery delays: reliable neighbors default to the plan's
        // uniform delivery delay (the ack deadline when unset); individual
        // policy overrides are clamped into [0, ack_delay]. `delays` is a
        // recycled scratch buffer.
        let default_delay = plan.reliable_default.unwrap_or(ack_delay).min(ack_delay);
        let mut delays = std::mem::take(&mut self.delay_scratch);
        debug_assert!(delays.is_empty());
        delays.extend(
            self.dual
                .reliable_neighbors(sender)
                .iter()
                .map(|&j| (j, default_delay)),
        );
        for (j, d) in &plan.reliable {
            if let Some(slot) = delays.iter_mut().find(|(n, _)| n == j) {
                slot.1 = (*d).min(ack_delay);
            }
        }
        for (j, d) in &plan.unreliable {
            if self.dual.unreliable_neighbors(sender).contains(j) {
                delays.push((*j, (*d).min(ack_delay)));
            }
        }

        self.emit(id, sender, TraceKind::Bcast, key);

        let mut pending = self.pending_pool.pop().unwrap_or_default();
        debug_assert!(pending.is_empty());
        for (j, d) in delays.drain(..) {
            if self.crashed[j.index()] {
                continue; // a crashed receiver gets nothing
            }
            let ev = self.queue.schedule(now + d, j, Ev::Deliver(id, j));
            pending.push((j, ev));
        }
        self.delay_scratch = delays;
        let ack_event = self.queue.schedule(now + ack_delay, sender, Ev::AckDue(id));

        self.instances.push(InstanceState {
            sender,
            msg: Some(Arc::new(msg)),
            key,
            start: now,
            delivered: self.receiver_pool.pop().unwrap_or_default(),
            pending,
            ack_event: Some(ack_event),
            terminated: None,
        });
        self.in_flight_of[sender.index()] = Some(id);

        for &j in self.dual.reliable_neighbors(sender) {
            self.connected[j.index()].insert(id);
        }
        for &j in self.dual.all_neighbors(sender) {
            self.contending[j.index()].insert(id);
        }
        for i in 0..self.dual.reliable_neighbors(sender).len() {
            let j = self.dual.reliable_neighbors(sender)[i];
            self.ensure_check(j);
        }
    }

    /// The earliest instant at which the progress bound could be violated
    /// for receiver `j`, or `None` while no violation is possible (no
    /// spanning `G`-neighbor instance, or a live protector exists).
    fn deadline(&self, j: NodeId) -> Option<Time> {
        if self.crashed[j.index()] {
            // The progress bound is conditioned on the receiver's liveness.
            return None;
        }
        let oldest = *self.connected[j.index()].first()?;
        if !self.live_protectors[j.index()].is_empty() {
            // Some in-flight instance already delivered to j: every window
            // starting before its termination is covered.
            return None;
        }
        let b_min = self.instances[oldest.index()].start;
        let s = match self.protected_until[j.index()] {
            Some(pf) => b_min.max(pf),
            None => b_min,
        };
        Some(s + self.config.f_prog() + Duration::TICK)
    }

    fn ensure_check(&mut self, j: NodeId) {
        if self.check_scheduled[j.index()] {
            return;
        }
        if let Some(d) = self.deadline(j) {
            let at = d.max(self.queue.now());
            self.queue.schedule(at, j, Ev::ProgressCheck(j));
            self.check_scheduled[j.index()] = true;
        }
    }

    fn progress_check(&mut self, j: NodeId) {
        self.check_scheduled[j.index()] = false;
        let now = self.queue.now();
        let Some(d) = self.deadline(j) else {
            return;
        };
        if now < d {
            self.ensure_check(j);
            return;
        }
        // The progress bound is due: force a delivery. A candidate always
        // exists here — j is unprotected, so no in-flight contender has
        // delivered to it, and the spanning connected instance qualifies.
        // `candidates` is a recycled scratch buffer.
        let mut candidates = std::mem::take(&mut self.forced_scratch);
        debug_assert!(candidates.is_empty());
        candidates.extend(self.contending[j.index()].iter().filter_map(|&id| {
            let st = &self.instances[id.index()];
            if st.terminated.is_some() || st.delivered.contains(&j) {
                return None;
            }
            Some(ForcedCandidate {
                instance: id,
                sender: st.sender,
                key: st.key,
                start: st.start,
                duplicate_for_receiver: self.seen_keys[j.index()].contains(&st.key),
                reliable_link: self.connected[j.index()].contains(&id),
            })
        }));
        if candidates.is_empty() {
            // Defensive fallback (unreachable by the invariant above):
            // terminate the oldest connected instance to restore validity.
            debug_assert!(false, "unprotected receiver with no forced candidates");
            self.forced_scratch = candidates;
            if let Some(&oldest) = self.connected[j.index()].first() {
                self.counters.forced_ack += 1;
                self.ack_instance(oldest, true);
            }
            self.ensure_check(j);
            return;
        }
        let idx = {
            let ctx = PolicyCtx {
                dual: &self.dual,
                config: &self.config,
                now,
            };
            let i = self.policy.pick_forced(&ctx, j, &candidates);
            if i < candidates.len() {
                i
            } else {
                0
            }
        };
        let chosen = candidates[idx].instance;
        candidates.clear();
        self.forced_scratch = candidates;
        self.counters.forced_rcv += 1;
        // Cancel the planned delivery (if any) and deliver now.
        let st = &mut self.instances[chosen.index()];
        if let Some(pos) = st.pending.iter().position(|(n, _)| *n == j) {
            let (_, ev) = st.pending.remove(pos);
            self.queue.cancel(ev);
        }
        self.deliver_core(chosen, j, true);
        self.ensure_check(j);
    }

    fn deliver_core(&mut self, inst: InstanceId, to: NodeId, forced: bool) {
        if self.crashed[to.index()] {
            return; // defensive: deliveries to crashed nodes are cancelled
        }
        let st = &mut self.instances[inst.index()];
        if st.terminated.is_some() || st.delivered.contains(&to) {
            return;
        }
        st.delivered.push(to);
        let key = st.key;
        // Payloads are interned: a delivery clones the Arc, not the
        // payload; the automaton borrows it for the callback.
        let msg = Arc::clone(st.msg.as_ref().expect("live instance holds its payload"));
        let _ = forced;
        self.counters.rcv += 1;
        self.emit(inst, to, TraceKind::Rcv, key);
        self.seen_keys[to.index()].insert(key);
        // The delivering instance is in flight, so it now protects `to`
        // from progress violations until it terminates.
        self.live_protectors[to.index()].insert(inst);
        let cmds = self.callback(to, |n, ctx| n.on_receive(&msg, ctx));
        self.apply(to, cmds);
    }

    fn ack_instance(&mut self, inst: InstanceId, forced: bool) {
        debug_assert!(self.instances[inst.index()].terminated.is_none());
        let _ = forced;
        // Flush pending deliveries: every rcv precedes the ack.
        let mut pend = std::mem::take(&mut self.instances[inst.index()].pending);
        for (to, ev) in pend.drain(..) {
            self.queue.cancel(ev);
            self.deliver_core(inst, to, false);
        }
        self.pending_pool.push(pend);
        let now = self.queue.now();
        let (sender, key, msg) = {
            let st = &mut self.instances[inst.index()];
            if let Some(ev) = st.ack_event.take() {
                self.queue.cancel(ev);
            }
            st.terminated = Some((now, Terminated::Acked));
            let msg = st.msg.take().expect("live instance holds its payload");
            (st.sender, st.key, msg)
        };
        self.counters.ack += 1;
        self.emit(inst, sender, TraceKind::Ack, key);
        self.cleanup_instance(inst, sender);
        let cmds = self.callback(sender, |n, ctx| n.on_ack(&msg, ctx));
        self.apply(sender, cmds);
    }

    fn abort_in_flight(&mut self, node: NodeId) {
        let inst = self.in_flight_of[node.index()]
            .unwrap_or_else(|| panic!("node {node} aborted with no broadcast in flight"));
        let now = self.queue.now();
        let (sender, key) = {
            let st = &mut self.instances[inst.index()];
            debug_assert!(st.terminated.is_none());
            let mut pend = std::mem::take(&mut st.pending);
            for (_, ev) in pend.drain(..) {
                self.queue.cancel(ev);
            }
            if let Some(ev) = st.ack_event.take() {
                self.queue.cancel(ev);
            }
            st.terminated = Some((now, Terminated::Aborted));
            st.msg = None;
            let out = (st.sender, st.key);
            self.pending_pool.push(pend);
            out
        };
        self.counters.abort += 1;
        self.emit(inst, sender, TraceKind::Abort, key);
        self.cleanup_instance(inst, sender);
    }

    fn cleanup_instance(&mut self, inst: InstanceId, sender: NodeId) {
        self.in_flight_of[sender.index()] = None;
        for &j in self.dual.reliable_neighbors(sender) {
            self.connected[j.index()].remove(&inst);
        }
        for &j in self.dual.all_neighbors(sender) {
            self.contending[j.index()].remove(&inst);
        }
        // Receivers protected by this instance lose that protection at its
        // termination time; their next possible violation window starts
        // here, so (re)arm their progress checks. The delivered list is
        // retired into the buffer pool: terminated instances keep no
        // per-delivery state.
        let now = self.queue.now();
        let mut receivers = std::mem::take(&mut self.instances[inst.index()].delivered);
        for &j in &receivers {
            if self.live_protectors[j.index()].remove(&inst) {
                let pf = &mut self.protected_until[j.index()];
                *pf = Some(pf.map_or(now, |t| t.max(now)));
                self.ensure_check(j);
            }
        }
        receivers.clear();
        self.receiver_pool.push(receivers);
    }

    /// Applies a crash: silences the node's in-flight broadcast (pending
    /// deliveries and the ack are cancelled, deliveries already made
    /// stand), cancels every delivery still headed to the node, and
    /// suppresses all of its future callbacks until recovery.
    fn crash_node(&mut self, v: NodeId) {
        if self.crashed[v.index()] {
            return;
        }
        self.crashed[v.index()] = true;
        self.counters.crash += 1;
        let now = self.queue.now();
        self.observers.emit_fault(now, v, FaultKind::Crash);
        // Silence the node's own broadcast in flight.
        if let Some(inst) = self.in_flight_of[v.index()] {
            {
                let st = &mut self.instances[inst.index()];
                debug_assert!(st.terminated.is_none());
                let mut pend = std::mem::take(&mut st.pending);
                for (_, ev) in pend.drain(..) {
                    self.queue.cancel(ev);
                }
                if let Some(ev) = st.ack_event.take() {
                    self.queue.cancel(ev);
                }
                st.terminated = Some((now, Terminated::Crashed));
                st.msg = None;
                self.pending_pool.push(pend);
            }
            self.cleanup_instance(inst, v);
        }
        // Cancel deliveries still headed to the crashed node (crashes are
        // rare, so the scan over live instances is cheap in practice).
        for idx in 0..self.instances.len() {
            let st = &mut self.instances[idx];
            if st.terminated.is_some() {
                continue;
            }
            if let Some(pos) = st.pending.iter().position(|(n, _)| *n == v) {
                let (_, ev) = st.pending.remove(pos);
                self.queue.cancel(ev);
            }
        }
    }

    /// Applies a recovery: the node's automaton state is intact, its
    /// `on_recover` callback runs, and its progress-bound tracking re-arms
    /// (in-flight broadcasts of `G`-neighbors resume entitling it to
    /// forced deliveries). A no-op for a node that is not crashed.
    fn recover_node(&mut self, v: NodeId) {
        if !self.crashed[v.index()] {
            return;
        }
        self.crashed[v.index()] = false;
        self.counters.recover += 1;
        let now = self.queue.now();
        self.observers.emit_fault(now, v, FaultKind::Recover);
        // A window uncovered while crashed does not count against the
        // model: the next possible violation starts at the recovery.
        if !self.live_protectors[v.index()].is_empty() {
            // Still protected by an in-flight instance received pre-crash.
        } else if self.connected[v.index()].first().is_some() {
            let pf = &mut self.protected_until[v.index()];
            *pf = Some(pf.map_or(now, |t| t.max(now)));
        }
        self.ensure_check(v);
        let cmds = self.callback(v, super::node::Automaton::on_recover);
        self.apply(v, cmds);
    }
}

impl<A: Automaton, P: Policy> fmt::Debug for Runtime<A, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("nodes", &self.nodes.len())
            .field("now", &self.queue.now())
            .field("instances", &self.instances.len())
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CounterObserver;
    use crate::policies::EagerPolicy;

    #[derive(Clone, Debug)]
    struct Token(u64);
    impl MacMessage for Token {
        fn key(&self) -> MessageKey {
            MessageKey(self.0)
        }
    }

    /// Floods a single token: the source broadcasts on start; every node
    /// forwards the first copy it receives.
    struct Flooder {
        is_source: bool,
        got: Option<u64>,
    }

    impl Automaton for Flooder {
        type Msg = Token;
        type Env = ();
        type Out = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Token, u64>) {
            if self.is_source {
                self.got = Some(7);
                ctx.output(7);
                ctx.bcast(Token(7));
            }
        }

        fn on_receive(&mut self, msg: &Token, ctx: &mut Ctx<'_, Token, u64>) {
            if self.got.is_none() {
                self.got = Some(msg.0);
                ctx.output(msg.0);
                if !ctx.has_broadcast_in_flight() {
                    ctx.bcast(msg.clone());
                }
            }
        }

        fn on_ack(&mut self, _msg: &Token, _ctx: &mut Ctx<'_, Token, u64>) {}
    }

    fn line_dual(n: usize) -> DualGraph {
        DualGraph::reliable(amac_graph::generators::line(n).unwrap())
    }

    fn flooders(n: usize) -> Vec<Flooder> {
        (0..n)
            .map(|i| Flooder {
                is_source: i == 0,
                got: None,
            })
            .collect()
    }

    #[test]
    fn flood_reaches_every_node() {
        let dual = line_dual(10);
        let cfg = MacConfig::from_ticks(2, 16);
        let mut rt = Runtime::new(dual, cfg, flooders(10), EagerPolicy::new());
        assert_eq!(rt.run(), RunOutcome::Idle);
        assert_eq!(rt.outputs().len(), 10, "all nodes delivered the token");
        for i in 0..10 {
            assert_eq!(rt.node(NodeId::new(i)).got, Some(7));
        }
    }

    #[test]
    fn trace_is_recorded_and_consistent() {
        let dual = line_dual(5);
        let cfg = MacConfig::from_ticks(2, 16);
        let mut rt = Runtime::new(dual, cfg, flooders(5), EagerPolicy::new()).tracing();
        rt.run();
        let trace = rt.trace().unwrap();
        assert_eq!(trace.count(TraceKind::Bcast), 5);
        assert_eq!(trace.count(TraceKind::Ack), 5);
        assert!(trace.count(TraceKind::Rcv) >= 4);
    }

    #[test]
    fn counters_track_events() {
        let dual = line_dual(4);
        let cfg = MacConfig::from_ticks(2, 16);
        let mut rt = Runtime::new(dual, cfg, flooders(4), EagerPolicy::new());
        rt.run();
        assert_eq!(rt.counters().get("bcast"), 4);
        assert_eq!(rt.counters().get("ack"), 4);
        assert!(rt.counters().get("events") > 0);
    }

    #[test]
    fn observers_attach_detach_and_stream_events() {
        let dual = line_dual(4);
        let cfg = MacConfig::from_ticks(2, 16);
        let mut rt = Runtime::new(dual, cfg, flooders(4), EagerPolicy::new());
        let counters = rt.attach(CounterObserver::new());
        let tracer = rt.attach(TraceObserver::new());
        rt.run();
        assert_eq!(rt.observer(&counters).count(TraceKind::Bcast), 4);
        assert_eq!(
            rt.observer(&counters).total(),
            rt.observer(&tracer).trace().len() as u64,
            "both observers saw the same stream"
        );
        let trace = rt.detach(tracer).into_trace();
        assert_eq!(trace.count(TraceKind::Ack), 4);
        // Runtime-level counters agree with the observer.
        assert_eq!(rt.counters().get("bcast"), 4);
        assert_eq!(rt.detach(counters).count(TraceKind::Ack), 4);
    }

    #[test]
    fn run_until_respects_horizon() {
        let dual = line_dual(50);
        let cfg = MacConfig::from_ticks(2, 16);
        let mut rt = Runtime::new(dual, cfg, flooders(50), EagerPolicy::new());
        let outcome = rt.run_until(Time::from_ticks(5));
        assert_eq!(outcome, RunOutcome::TimeLimit);
        assert!(rt.now() <= Time::from_ticks(5));
        assert_eq!(rt.run(), RunOutcome::Idle);
        assert_eq!(rt.outputs().len(), 50);
    }

    #[test]
    fn event_limit_stops_execution() {
        let dual = line_dual(30);
        let cfg = MacConfig::from_ticks(2, 16);
        let mut rt = Runtime::new(dual, cfg, flooders(30), EagerPolicy::new()).with_event_limit(10);
        assert_eq!(rt.run(), RunOutcome::EventLimit);
    }

    #[test]
    fn default_runtime_records_no_trace() {
        let dual = line_dual(3);
        let cfg = MacConfig::from_ticks(2, 16);
        let mut rt = Runtime::new(dual, cfg, flooders(3), EagerPolicy::new());
        rt.run();
        assert!(rt.trace().is_none(), "tracing is opt-in");
        assert!(rt.into_trace().is_none());
    }

    #[test]
    fn drain_outputs_keeps_capacity_and_order() {
        let dual = line_dual(6);
        let cfg = MacConfig::from_ticks(2, 16);
        let mut rt = Runtime::new(dual, cfg, flooders(6), EagerPolicy::new());
        let mut drained = Vec::new();
        loop {
            match rt.run_until_next(Time::MAX) {
                Some(_) => break,
                None => drained.extend(rt.drain_outputs()),
            }
        }
        drained.extend(rt.drain_outputs());
        assert_eq!(drained.len(), 6);
        assert!(rt.outputs().is_empty());
        assert!(drained.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn env_injection_dispatches() {
        struct EnvNode {
            seen: Vec<u32>,
        }
        impl Automaton for EnvNode {
            type Msg = Token;
            type Env = u32;
            type Out = ();
            fn on_env(&mut self, input: u32, _ctx: &mut Ctx<'_, Token, ()>) {
                self.seen.push(input);
            }
            fn on_receive(&mut self, _m: &Token, _c: &mut Ctx<'_, Token, ()>) {}
            fn on_ack(&mut self, _m: &Token, _c: &mut Ctx<'_, Token, ()>) {}
        }
        let dual = line_dual(2);
        let cfg = MacConfig::from_ticks(1, 4);
        let nodes = vec![EnvNode { seen: vec![] }, EnvNode { seen: vec![] }];
        let mut rt = Runtime::new(dual, cfg, nodes, EagerPolicy::new());
        rt.inject(NodeId::new(0), 11);
        rt.inject_at(Time::from_ticks(3), NodeId::new(1), 22);
        rt.run();
        assert_eq!(rt.node(NodeId::new(0)).seen, vec![11]);
        assert_eq!(rt.node(NodeId::new(1)).seen, vec![22]);
    }

    #[test]
    #[should_panic(expected = "user well-formedness")]
    fn double_bcast_panics() {
        struct Bad;
        impl Automaton for Bad {
            type Msg = Token;
            type Env = ();
            type Out = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, Token, ()>) {
                ctx.bcast(Token(1));
                ctx.bcast(Token(2));
            }
            fn on_receive(&mut self, _m: &Token, _c: &mut Ctx<'_, Token, ()>) {}
            fn on_ack(&mut self, _m: &Token, _c: &mut Ctx<'_, Token, ()>) {}
        }
        let dual = line_dual(2);
        let cfg = MacConfig::from_ticks(1, 4);
        let mut rt = Runtime::new(dual, cfg, vec![Bad, Bad], EagerPolicy::new());
        rt.run();
    }

    #[test]
    #[should_panic(expected = "requires the enhanced abstract MAC layer")]
    fn timers_require_enhanced_variant() {
        struct Timed;
        impl Automaton for Timed {
            type Msg = Token;
            type Env = ();
            type Out = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, Token, ()>) {
                ctx.set_timer(Duration::from_ticks(1), 0);
            }
            fn on_receive(&mut self, _m: &Token, _c: &mut Ctx<'_, Token, ()>) {}
            fn on_ack(&mut self, _m: &Token, _c: &mut Ctx<'_, Token, ()>) {}
        }
        let dual = line_dual(2);
        let cfg = MacConfig::from_ticks(1, 4); // standard variant
        let mut rt = Runtime::new(dual, cfg, vec![Timed, Timed], EagerPolicy::new());
        rt.run();
    }

    #[test]
    fn enhanced_timer_fires_and_abort_works() {
        struct RoundNode {
            fired: bool,
            aborted: bool,
        }
        impl Automaton for RoundNode {
            type Msg = Token;
            type Env = ();
            type Out = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, Token, ()>) {
                if ctx.id().index() == 0 {
                    ctx.bcast(Token(1));
                    ctx.set_timer(Duration::from_ticks(3), 42);
                }
            }
            fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Token, ()>) {
                assert_eq!(tag, 42);
                self.fired = true;
                if ctx.has_broadcast_in_flight() {
                    ctx.abort();
                    self.aborted = true;
                }
            }
            fn on_receive(&mut self, _m: &Token, _c: &mut Ctx<'_, Token, ()>) {}
            fn on_ack(&mut self, _m: &Token, _c: &mut Ctx<'_, Token, ()>) {}
        }
        let dual = line_dual(2);
        // Lazy ack: use a policy with a long ack so the abort lands first.
        let cfg = MacConfig::from_ticks(2, 100).enhanced();
        let nodes = vec![
            RoundNode {
                fired: false,
                aborted: false,
            },
            RoundNode {
                fired: false,
                aborted: false,
            },
        ];
        let mut rt = Runtime::new(dual, cfg, nodes, crate::policies::LazyPolicy::new()).tracing();
        rt.run();
        assert!(rt.node(NodeId::new(0)).fired);
        assert!(rt.node(NodeId::new(0)).aborted);
        let trace = rt.trace().unwrap();
        assert_eq!(trace.count(TraceKind::Abort), 1);
        assert_eq!(trace.count(TraceKind::Ack), 0);
    }

    #[test]
    fn crash_silences_the_source_before_delivery() {
        // The source broadcasts at t=0 under the lazy policy (deliveries
        // held to the forced-progress schedule); crashing it at t=1 —
        // before any forced delivery is due — must silence the flood.
        let dual = line_dual(5);
        let cfg = MacConfig::from_ticks(3, 60);
        let plan = FaultPlan::new().crash_at(NodeId::new(0), Time::from_ticks(1));
        let mut rt = Runtime::new(
            dual.clone(),
            cfg,
            flooders(5),
            crate::policies::LazyPolicy::new(),
        )
        .tracing()
        .with_faults(plan);
        assert_eq!(rt.run(), RunOutcome::Idle);
        assert_eq!(rt.outputs().len(), 1, "only the source itself delivered");
        assert!(rt.is_crashed(NodeId::new(0)));
        assert_eq!(rt.counters().get("crash"), 1);
        assert_eq!(rt.counters().get("rcv"), 0);
        let trace = rt.trace().unwrap();
        assert_eq!(trace.faults().len(), 1);
        assert_eq!(trace.count(TraceKind::Ack), 0);
        let report = crate::validate(trace, &dual, &cfg, true);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn mid_instance_crash_leaves_partial_delivery_standing() {
        // Star: the hub floods, the eager policy delivers after one tick
        // (t=1) and would ack at t=2; the crash lands at t=2 but was
        // enqueued before the ack, so the deliveries stand and the ack is
        // silenced — and the trace is still valid.
        let dual = DualGraph::reliable(amac_graph::generators::star(4).unwrap());
        let cfg = MacConfig::from_ticks(2, 16);
        let nodes = flooders(4);
        let plan = FaultPlan::new().crash_at(NodeId::new(0), Time::from_ticks(2));
        let mut rt = Runtime::new(
            dual.clone(),
            cfg,
            nodes,
            EagerPolicy::new().with_delivery_delay(Duration::from_ticks(1)),
        )
        .tracing()
        .with_faults(plan);
        rt.run();
        // Same-tick ordering: deliveries at t=1 were scheduled before the
        // crash at t=1, so the leaves hear the token; the ack (t=2) does
        // not fire.
        let trace = rt.trace().unwrap();
        assert_eq!(trace.of_kind(TraceKind::Rcv).count(), 3);
        assert_eq!(
            trace
                .of_kind(TraceKind::Ack)
                .filter(|e| e.node == NodeId::new(0))
                .count(),
            0,
            "the crashed hub never acks"
        );
        let report = crate::validate(trace, &dual, &cfg, true);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn crashed_receiver_gets_nothing_until_recovery() {
        struct Recoverer {
            is_source: bool,
            got: Option<u64>,
            recovered: bool,
        }
        impl Automaton for Recoverer {
            type Msg = Token;
            type Env = ();
            type Out = u64;
            fn on_start(&mut self, ctx: &mut Ctx<'_, Token, u64>) {
                if self.is_source {
                    ctx.bcast(Token(9));
                }
            }
            fn on_receive(&mut self, msg: &Token, ctx: &mut Ctx<'_, Token, u64>) {
                self.got = Some(msg.0);
                ctx.output(msg.0);
            }
            fn on_ack(&mut self, _m: &Token, ctx: &mut Ctx<'_, Token, u64>) {
                // Keep rebroadcasting so the recovered neighbor can catch
                // up via the progress bound.
                if self.is_source {
                    ctx.bcast(Token(9));
                }
            }
            fn on_recover(&mut self, _ctx: &mut Ctx<'_, Token, u64>) {
                self.recovered = true;
            }
        }
        let dual = line_dual(2);
        let cfg = MacConfig::from_ticks(2, 8);
        let nodes = vec![
            Recoverer {
                is_source: true,
                got: None,
                recovered: false,
            },
            Recoverer {
                is_source: false,
                got: None,
                recovered: false,
            },
        ];
        let plan = FaultPlan::new()
            .crash_at(NodeId::new(1), Time::ZERO)
            .recover_at(NodeId::new(1), Time::from_ticks(20));
        let mut rt = Runtime::new(dual.clone(), cfg, nodes, EagerPolicy::new())
            .tracing()
            .with_faults(plan)
            .with_event_limit(5_000);
        rt.run_until(Time::from_ticks(40));
        let receiver = rt.node(NodeId::new(1));
        assert!(receiver.recovered, "on_recover must run");
        assert_eq!(receiver.got, Some(9), "catches up after recovery");
        let first_rcv = rt
            .trace()
            .unwrap()
            .of_kind(TraceKind::Rcv)
            .map(|e| e.time)
            .next()
            .unwrap();
        assert!(
            first_rcv >= Time::from_ticks(20),
            "no delivery during the outage, got one at {first_rcv}"
        );
        assert_eq!(rt.counters().get("recover"), 1);
    }

    #[test]
    fn sharded_flood_trace_is_identical_to_sequential() {
        let dual = line_dual(20);
        let cfg = MacConfig::from_ticks(3, 24);
        let mut seq = Runtime::new(dual.clone(), cfg, flooders(20), EagerPolicy::new()).tracing();
        seq.run();
        let seq_trace = seq.into_trace().unwrap();
        for k in [1usize, 2, 4, 7, 25] {
            let mut sh = Runtime::new(dual.clone(), cfg, flooders(20), EagerPolicy::new())
                .with_shards(k)
                .tracing();
            sh.run();
            assert!(sh.shard_stats().is_some());
            let sh_trace = sh.into_trace().unwrap();
            assert_eq!(
                seq_trace.entries(),
                sh_trace.entries(),
                "trace diverged at k = {k}"
            );
        }
    }

    #[test]
    fn threaded_flood_trace_is_identical_to_sequential() {
        let dual = line_dual(20);
        let cfg = MacConfig::from_ticks(3, 24);
        let mut seq = Runtime::new(dual.clone(), cfg, flooders(20), EagerPolicy::new()).tracing();
        seq.run();
        let seq_trace = seq.into_trace().unwrap();
        for k in [1usize, 2, 4] {
            for t in [1usize, 2, 4] {
                let mut sh = Runtime::new(dual.clone(), cfg, flooders(20), EagerPolicy::new())
                    .with_shards(k)
                    .with_shard_threads(t)
                    .tracing();
                sh.run();
                assert_eq!(sh.shard_threads(), t.clamp(1, k));
                let sh_trace = sh.into_trace().unwrap();
                assert_eq!(
                    seq_trace.entries(),
                    sh_trace.entries(),
                    "trace diverged at k = {k}, t = {t}"
                );
            }
        }
    }

    #[test]
    fn threaded_run_with_faults_matches_sequential() {
        let dual = line_dual(12);
        let cfg = MacConfig::from_ticks(3, 24);
        let plan = FaultPlan::new()
            .crash_at(NodeId::new(5), Time::from_ticks(4))
            .recover_at(NodeId::new(5), Time::from_ticks(30));
        let mut seq = Runtime::new(
            dual.clone(),
            cfg,
            flooders(12),
            crate::policies::LazyPolicy::new(),
        )
        .tracing()
        .with_faults(plan.clone());
        seq.run();
        let seq_trace = seq.into_trace().unwrap();
        let mut sh = Runtime::new(
            dual.clone(),
            cfg,
            flooders(12),
            crate::policies::LazyPolicy::new(),
        )
        .with_shards(4)
        .with_shard_threads(2)
        .tracing()
        .with_faults(plan);
        sh.run();
        let sh_trace = sh.into_trace().unwrap();
        assert_eq!(seq_trace.entries(), sh_trace.entries());
        assert_eq!(seq_trace.faults(), sh_trace.faults());
    }

    #[test]
    #[should_panic(expected = "requires with_shards")]
    fn shard_threads_without_shards_panics() {
        let dual = line_dual(4);
        let cfg = MacConfig::from_ticks(2, 16);
        let _ = Runtime::new(dual, cfg, flooders(4), EagerPolicy::new()).with_shard_threads(2);
    }

    #[test]
    fn sharded_run_with_faults_matches_sequential() {
        let dual = line_dual(12);
        let cfg = MacConfig::from_ticks(3, 24);
        let plan = FaultPlan::new()
            .crash_at(NodeId::new(5), Time::from_ticks(4))
            .recover_at(NodeId::new(5), Time::from_ticks(30));
        let mut seq = Runtime::new(
            dual.clone(),
            cfg,
            flooders(12),
            crate::policies::LazyPolicy::new(),
        )
        .tracing()
        .with_faults(plan.clone());
        seq.run();
        let seq_trace = seq.into_trace().unwrap();
        let mut sh = Runtime::new(
            dual.clone(),
            cfg,
            flooders(12),
            crate::policies::LazyPolicy::new(),
        )
        .with_shards(4)
        .tracing()
        .with_faults(plan);
        sh.run();
        let sh_trace = sh.into_trace().unwrap();
        assert_eq!(seq_trace.entries(), sh_trace.entries());
        assert_eq!(seq_trace.faults(), sh_trace.faults());
    }

    #[test]
    #[should_panic(expected = "before with_faults")]
    fn with_shards_after_faults_panics() {
        let dual = line_dual(4);
        let cfg = MacConfig::from_ticks(2, 16);
        let plan = FaultPlan::new().crash_at(NodeId::new(1), Time::from_ticks(1));
        let _ = Runtime::new(dual, cfg, flooders(4), EagerPolicy::new())
            .with_faults(plan)
            .with_shards(2);
    }

    #[test]
    fn lazy_policy_progress_forced_delivery() {
        // With a lazy policy on a line, the progress bound must still make
        // the token advance one hop every F_prog, not every F_ack.
        let dual = line_dual(6);
        let cfg = MacConfig::from_ticks(3, 60);
        let mut rt = Runtime::new(dual, cfg, flooders(6), crate::policies::LazyPolicy::new());
        rt.run();
        assert_eq!(rt.outputs().len(), 6);
        // Node 5 is 5 hops away: it must receive by roughly 5*F_prog plus
        // slack, far below 5*F_ack = 300.
        let last = rt.outputs().iter().map(|o| o.time).max().unwrap();
        assert!(
            last.ticks() <= 5 * 3 + 10,
            "token should travel at F_prog speed, took {last:?}"
        );
        assert!(rt.counters().get("forced_rcv") > 0);
    }
}
