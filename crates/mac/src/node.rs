//! The node-side programming model: event-driven automata over the
//! acknowledged local broadcast interface.

use crate::config::{MacConfig, ModelVariant};
use crate::message::MacMessage;
use amac_graph::{DualGraph, NodeId};
use amac_sim::{Duration, Time};
use std::fmt;

/// Handle to a pending timer (enhanced model only).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(pub(crate) u64);

/// A deferred effect requested by a node callback, applied by the runtime
/// after the callback returns.
#[derive(Debug)]
pub(crate) enum Command<M, O> {
    Bcast(M),
    Abort,
    SetTimer {
        id: TimerId,
        delay: Duration,
        tag: u64,
    },
    CancelTimer(TimerId),
    Output(O),
}

/// The interface a node automaton sees during a callback.
///
/// `Ctx` buffers effects ([`bcast`](Ctx::bcast), [`abort`](Ctx::abort),
/// timers, outputs) and exposes the read-only information the model grants
/// a node: its id, its reliable and unreliable neighbor lists (the paper
/// assumes nodes can tell these apart), and — **in the enhanced variant
/// only** — the current time, the timing constants, and the network size.
///
/// Methods gated on the enhanced variant panic in the standard variant:
/// using them there is a programming error that would invalidate the
/// model-conformance claims of the standard-model experiments.
pub struct Ctx<'a, M, O> {
    pub(crate) node: NodeId,
    pub(crate) now: Time,
    pub(crate) config: &'a MacConfig,
    pub(crate) dual: &'a DualGraph,
    pub(crate) in_flight: bool,
    pub(crate) commands: Vec<Command<M, O>>,
    pub(crate) next_timer: &'a mut u64,
}

impl<M, O> Ctx<'_, M, O> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Reliable (`G`) neighbors of this node.
    pub fn reliable_neighbors(&self) -> &[NodeId] {
        self.dual.reliable_neighbors(self.node)
    }

    /// Unreliable-only (`G′ \ G`) neighbors of this node.
    pub fn unreliable_neighbors(&self) -> &[NodeId] {
        self.dual.unreliable_neighbors(self.node)
    }

    /// The model variant this execution runs under.
    pub fn variant(&self) -> ModelVariant {
        self.config.variant()
    }

    /// Returns `true` if a broadcast of this node is currently in flight
    /// (initiated, not yet acknowledged or aborted), taking commands
    /// buffered in this callback into account.
    pub fn has_broadcast_in_flight(&self) -> bool {
        let mut state = self.in_flight;
        for c in &self.commands {
            match c {
                Command::Bcast(_) => state = true,
                Command::Abort => state = false,
                _ => {}
            }
        }
        state
    }

    /// Initiates an acknowledged local broadcast of `msg`.
    ///
    /// # Panics
    ///
    /// Panics if a broadcast is already in flight (user well-formedness:
    /// two `bcast`s must have an intervening `ack` or `abort`).
    pub fn bcast(&mut self, msg: M) {
        assert!(
            !self.has_broadcast_in_flight(),
            "node {} issued bcast with a broadcast already in flight (user well-formedness)",
            self.node
        );
        self.commands.push(Command::Bcast(msg));
    }

    /// Aborts the broadcast in flight (enhanced model only).
    ///
    /// # Panics
    ///
    /// Panics in the standard variant, or if no broadcast is in flight
    /// (user well-formedness: every `abort` follows its `bcast`).
    pub fn abort(&mut self) {
        self.require_enhanced("abort");
        assert!(
            self.has_broadcast_in_flight(),
            "node {} issued abort with no broadcast in flight (user well-formedness)",
            self.node
        );
        self.commands.push(Command::Abort);
    }

    /// Sets a timer firing `delay` from now with the given `tag`, returning
    /// a handle usable with [`cancel_timer`](Ctx::cancel_timer). Enhanced
    /// model only.
    ///
    /// # Panics
    ///
    /// Panics in the standard variant.
    pub fn set_timer(&mut self, delay: Duration, tag: u64) -> TimerId {
        self.require_enhanced("set_timer");
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.commands.push(Command::SetTimer { id, delay, tag });
        id
    }

    /// Cancels a pending timer (enhanced model only). Cancelling an already
    /// fired or cancelled timer is a no-op.
    ///
    /// # Panics
    ///
    /// Panics in the standard variant.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.require_enhanced("cancel_timer");
        self.commands.push(Command::CancelTimer(id));
    }

    /// Emits a problem-level output event (e.g. an MMB `deliver`), recorded
    /// with the current time by the runtime.
    pub fn output(&mut self, out: O) {
        self.commands.push(Command::Output(out));
    }

    /// Current simulated time (enhanced model only: standard-model nodes
    /// are event driven and have no clocks).
    ///
    /// # Panics
    ///
    /// Panics in the standard variant.
    pub fn now(&self) -> Time {
        self.require_enhanced("now");
        self.now
    }

    /// The progress bound `F_prog` (enhanced model only).
    ///
    /// # Panics
    ///
    /// Panics in the standard variant.
    pub fn f_prog(&self) -> Duration {
        self.require_enhanced("f_prog");
        self.config.f_prog()
    }

    /// The acknowledgment bound `F_ack` (enhanced model only).
    ///
    /// # Panics
    ///
    /// Panics in the standard variant.
    pub fn f_ack(&self) -> Duration {
        self.require_enhanced("f_ack");
        self.config.f_ack()
    }

    /// The network size `n` (enhanced model only; the FMMB subroutines use
    /// it for their `log n` phase counts).
    ///
    /// # Panics
    ///
    /// Panics in the standard variant.
    pub fn node_count(&self) -> usize {
        self.require_enhanced("node_count");
        self.dual.len()
    }

    fn require_enhanced(&self, what: &str) {
        assert!(
            self.config.is_enhanced(),
            "Ctx::{what} requires the enhanced abstract MAC layer (node {})",
            self.node
        );
    }
}

impl<M, O> fmt::Debug for Ctx<'_, M, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("node", &self.node)
            .field("now", &self.now)
            .field("in_flight", &self.in_flight)
            .field("buffered_commands", &self.commands.len())
            .finish()
    }
}

/// An event-driven node automaton running over the abstract MAC layer.
///
/// The runtime invokes the callbacks; all effects go through the provided
/// [`Ctx`]. Callbacks execute instantaneously in simulated time (zero-delay
/// automaton steps, as in the paper's Timed I/O Automata semantics).
///
/// # Examples
///
/// A one-shot flooder: broadcast a token on start, forward it once.
///
/// Message payloads are interned by the runtime at broadcast time and
/// handed to [`on_receive`](Automaton::on_receive) /
/// [`on_ack`](Automaton::on_ack) **by reference**: a delivery costs a
/// pointer clone, never a payload clone, regardless of payload size.
/// Automata that need ownership (e.g. to re-broadcast) clone explicitly.
///
/// ```
/// use amac_mac::{Automaton, Ctx, MacMessage, MessageKey};
///
/// #[derive(Clone, Debug)]
/// struct Token(u64);
/// impl MacMessage for Token {
///     fn key(&self) -> MessageKey { MessageKey(self.0) }
/// }
///
/// struct Flooder { seen: bool, is_source: bool }
///
/// impl Automaton for Flooder {
///     type Msg = Token;
///     type Env = ();
///     type Out = u64;
///
///     fn on_start(&mut self, ctx: &mut Ctx<'_, Token, u64>) {
///         if self.is_source {
///             self.seen = true;
///             ctx.bcast(Token(7));
///         }
///     }
///
///     fn on_receive(&mut self, msg: &Token, ctx: &mut Ctx<'_, Token, u64>) {
///         if !self.seen {
///             self.seen = true;
///             ctx.output(msg.0);
///             if !ctx.has_broadcast_in_flight() {
///                 ctx.bcast(msg.clone());
///             }
///         }
///     }
///
///     fn on_ack(&mut self, _msg: &Token, _ctx: &mut Ctx<'_, Token, u64>) {}
/// }
/// ```
pub trait Automaton {
    /// Payload type carried by this automaton's broadcasts.
    type Msg: MacMessage;
    /// Environment input type (e.g. MMB `arrive` events).
    type Env: fmt::Debug;
    /// Problem-level output type (e.g. MMB `deliver` events).
    type Out: fmt::Debug;

    /// Wake-up at the start of the execution (time 0).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Out>) {
        let _ = ctx;
    }

    /// An environment input arrived (scheduled via the runtime's `inject`).
    fn on_env(&mut self, input: Self::Env, ctx: &mut Ctx<'_, Self::Msg, Self::Out>) {
        let _ = (input, ctx);
    }

    /// The MAC layer delivered a message to this node. The payload is
    /// borrowed from the instance's interned copy; clone it if ownership
    /// is needed.
    fn on_receive(&mut self, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg, Self::Out>);

    /// The MAC layer acknowledged this node's broadcast of `msg`.
    fn on_ack(&mut self, msg: &Self::Msg, ctx: &mut Ctx<'_, Self::Msg, Self::Out>);

    /// A timer set via [`Ctx::set_timer`] fired (enhanced model only).
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Self::Msg, Self::Out>) {
        let _ = (tag, ctx);
    }

    /// The node recovered from a crash (crash-recovery fault model, see
    /// [`FaultPlan`](crate::FaultPlan)): its state survived the outage, but
    /// every broadcast, delivery, and timer firing scheduled during the
    /// outage was silently dropped, and any broadcast in flight at the
    /// crash was silenced. Default: do nothing.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Out>) {
        let _ = ctx;
    }
}
