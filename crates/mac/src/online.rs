//! Streaming (online) validation of the MAC-layer guarantees.
//!
//! [`OnlineValidator`] is an [`Observer`] that checks the same guarantees
//! as the post-hoc [`validate`](crate::validate) function — receive
//! correctness, acknowledgment correctness, termination, the ack bound,
//! the progress bound, crash conditioning, and user well-formedness — but
//! *incrementally, as the events happen*, instead of over a retained
//! [`Trace`].
//!
//! ## Memory model
//!
//! The validator never stores the event stream. Its state at any instant
//! is proportional to the *in-flight* portion of the execution, not its
//! length:
//!
//! * one record per **live instance** (broadcast, not yet terminated) —
//!   at most one per sender by user well-formedness;
//! * one record per **recently retired instance**, kept only until the
//!   clock passes its termination time by `F_ack` (the window within
//!   which any straggler event of that instance must fall), so late
//!   `rcv`s and double terminations are still classified exactly;
//! * O(1) **progress state per receiver** (its live connected/protector
//!   bookkeeping mirrors what the runtime itself maintains to *enforce*
//!   the bound) plus a lazy deadline heap;
//! * the (small) node fault log, and the violations found.
//!
//! Per-instance state is retired at termination; [`OnlineStats`] reports
//! the observed peaks so harnesses can assert the bound. An execution
//! with millions of events therefore validates in memory proportional to
//! its concurrency, which is what makes `n = 10⁴`-node sweeps (and the
//! ROADMAP's larger ambitions) validatable at all.
//!
//! ## Equivalence with the post-hoc validator
//!
//! On any trace the [`Runtime`](crate::Runtime) can produce — including
//! under crash/recovery fault plans — the online validator reports exactly
//! the same violation set as [`validate`](crate::validate) (a property
//! test in `tests/fault_conformance.rs` holds this). On *hand-built*
//! pathological streams the two can classify differently at the margins,
//! by construction of the memory model:
//!
//! * an event referencing an instance terminated more than `F_ack` ago
//!   (impossible for a runtime: every event of an instance falls within
//!   `F_ack` of its broadcast) reports [`Violation::MissingBcast`] rather
//!   than a post-termination violation — either way it is rejected;
//! * a `rcv` recorded *after* its instance's termination does not count
//!   toward progress coverage (the post-hoc validator, seeing the whole
//!   trace at once, lets it cover windows before the termination);
//! * progress windows are judged against the stream's own clock: a
//!   hand-built trace whose entries simply stop while a window is open is
//!   judged by the fault events that follow, where the post-hoc validator
//!   caps every span at the last *entry*.

use crate::config::MacConfig;
use crate::fault::FaultKind;
use crate::instance::InstanceId;
use crate::observer::Observer;
use crate::trace::{Trace, TraceEntry, TraceKind};
use crate::validator::{ValidationReport, Violation};
use amac_graph::{DualGraph, NodeId};
use amac_sim::{Duration, Time};
use amac_sim::{FastHashMap, FastHashSet};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Peak-memory statistics of one finished [`OnlineValidator`] run, used to
/// assert the streaming-memory contract in tests and to report "peak
/// in-flight state" in the `scale` experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OnlineStats {
    /// Maximum number of live (broadcast, not yet terminated) instances
    /// tracked at once.
    pub peak_live: usize,
    /// Maximum number of instance records held at once: live plus
    /// recently-retired (retained for `F_ack` past termination).
    pub peak_tracked: usize,
    /// Total MAC-level events processed.
    pub events: u64,
}

struct LiveInstance {
    sender: NodeId,
    start: Time,
    /// Receivers delivered so far (sorted).
    delivered: Vec<NodeId>,
}

struct RetiredInstance {
    sender: NodeId,
    /// `true` for an `ack`/`abort` termination, `false` for a
    /// crash-silenced instance (which post-hoc has no terminating event).
    by_event: bool,
    delivered: Vec<NodeId>,
}

/// Per-receiver progress-bound state, mirroring the runtime's own
/// enforcement bookkeeping (`live_protectors` / `protected_until` /
/// `connected`) but with the post-hoc validator's exact window boundaries.
#[derive(Default)]
struct RxState {
    /// Live instances of reliable neighbors that could span a window for
    /// this receiver, sorted by (start, id); an instance is removed at
    /// termination — or when a progress violation has been reported for
    /// this (instance, receiver) pair, so each pair reports at most once
    /// (matching the post-hoc validator).
    connected: Vec<(Time, InstanceId)>,
    /// Live instances that have delivered to this receiver. While any
    /// exists, no window can close uncovered.
    protectors: usize,
    /// Earliest admissible uncovered-window start: one past the latest
    /// past-protector termination, or the latest recovery, whichever is
    /// later.
    floor: Time,
    /// Invalidates stale deadline-heap entries.
    epoch: u64,
    /// The deadline currently armed in the heap (with the current epoch),
    /// if any. Invariant: `armed == Some(d)` iff the heap holds a live
    /// `(d, receiver, epoch)` entry.
    armed: Option<Time>,
}

#[derive(Default)]
struct NodeFaults {
    /// Crash intervals `[crash, recover)` in time order; an open interval
    /// ends at `Time::MAX`. Boundary instants are permissive, exactly as
    /// in the post-hoc validator.
    intervals: Vec<(Time, Time)>,
}

impl NodeFaults {
    fn crashed_strictly_at(&self, t: Time) -> bool {
        // Only the last interval can contain the (non-decreasing) current
        // time.
        self.intervals.last().is_some_and(|&(c, r)| c < t && t < r)
    }

    fn overlaps(&self, lo: Time, hi: Time) -> bool {
        self.intervals.iter().any(|&(c, r)| c <= hi && r > lo)
    }
}

/// Streaming validator of the five MAC-layer guarantees (see the
/// [module docs](self) for the memory model and the equivalence contract
/// with the post-hoc [`validate`](crate::validate)).
///
/// Attach to a [`Runtime`](crate::Runtime) like any observer; when the run
/// is over, [`detach`](crate::Runtime::detach) it and call
/// [`into_report`](OnlineValidator::into_report).
///
/// # Examples
///
/// ```
/// use amac_mac::{MacConfig, OnlineValidator, Runtime, policies::LazyPolicy};
/// # use amac_mac::{Automaton, Ctx, MacMessage, MessageKey};
/// # use amac_graph::{generators, DualGraph, NodeId};
/// # #[derive(Clone, Debug)]
/// # struct T;
/// # impl MacMessage for T { fn key(&self) -> MessageKey { MessageKey(0) } }
/// # struct Hop { seen: bool }
/// # impl Automaton for Hop {
/// #     type Msg = T; type Env = (); type Out = ();
/// #     fn on_start(&mut self, ctx: &mut Ctx<'_, T, ()>) {
/// #         if ctx.id() == NodeId::new(0) { self.seen = true; ctx.bcast(T); }
/// #     }
/// #     fn on_receive(&mut self, _: &T, ctx: &mut Ctx<'_, T, ()>) {
/// #         if !self.seen { self.seen = true; ctx.bcast(T); }
/// #     }
/// #     fn on_ack(&mut self, _: &T, _: &mut Ctx<'_, T, ()>) {}
/// # }
/// let dual = DualGraph::reliable(generators::line(6)?);
/// let cfg = MacConfig::from_ticks(2, 30);
/// let nodes = (0..6).map(|_| Hop { seen: false }).collect();
/// let mut rt = Runtime::new(dual.clone(), cfg, nodes, LazyPolicy::new());
/// let validator = rt.attach(OnlineValidator::new(dual, cfg));
/// rt.run();
/// let report = rt.detach(validator).into_report(true);
/// assert!(report.is_ok(), "{report}");
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
pub struct OnlineValidator {
    dual: DualGraph,
    config: MacConfig,
    /// Clock of the merged event+fault stream.
    now: Time,
    /// Time of the last MAC-level *event* (the post-hoc horizon).
    horizon: Time,
    /// Live instances by id. Hashed: per-event lookups are hot, and the
    /// only iteration (leftover instances at finish) sorts its keys.
    live: FastHashMap<InstanceId, LiveInstance>,
    in_flight_of: Vec<Option<InstanceId>>,
    retired: FastHashMap<InstanceId, RetiredInstance>,
    /// Retired ids with their prune deadlines (`term + F_ack`), in
    /// non-decreasing deadline order.
    retire_queue: VecDeque<(Time, InstanceId)>,
    rx: Vec<RxState>,
    /// Lazy min-heap of `(deadline, receiver, epoch)` progress deadlines.
    deadlines: BinaryHeap<Reverse<(Time, usize, u64)>>,
    faults: Vec<NodeFaults>,
    crashed: Vec<bool>,
    violations: Vec<Violation>,
    /// Instances silenced by a sender crash *after* the ack window closed:
    /// a live sender would have terminated them, so they are reported as
    /// missing terminations if the execution is flagged quiescent.
    late_crash_unterminated: Vec<InstanceId>,
    orphans: FastHashSet<InstanceId>,
    events: u64,
    peak_live: usize,
    peak_tracked: usize,
}

impl OnlineValidator {
    /// Creates a validator for executions over `dual` under `config`.
    pub fn new(dual: DualGraph, config: MacConfig) -> OnlineValidator {
        let n = dual.len();
        OnlineValidator {
            dual,
            config,
            now: Time::ZERO,
            horizon: Time::ZERO,
            live: FastHashMap::default(),
            in_flight_of: vec![None; n],
            retired: FastHashMap::default(),
            retire_queue: VecDeque::new(),
            rx: (0..n).map(|_| RxState::default()).collect(),
            deadlines: BinaryHeap::new(),
            faults: (0..n).map(|_| NodeFaults::default()).collect(),
            crashed: vec![false; n],
            violations: Vec::new(),
            late_crash_unterminated: Vec::new(),
            orphans: FastHashSet::default(),
            events: 0,
            peak_live: 0,
            peak_tracked: 0,
        }
    }

    /// Feeds a recorded trace through a fresh validator and returns its
    /// report — the replay entry point used by the equivalence tests (and
    /// by anyone holding a trace rather than a live runtime). Entries and
    /// fault records are merged by time; at equal times faults go first,
    /// matching the runtime's scheduling order (fault events are enqueued
    /// at plan time, before the execution's own events).
    pub fn replay(
        trace: &Trace,
        dual: &DualGraph,
        config: &MacConfig,
        quiescent: bool,
    ) -> ValidationReport {
        let mut validator = OnlineValidator::new(dual.clone(), *config);
        let entries = trace.entries();
        let faults = trace.faults();
        let (mut e, mut f) = (0, 0);
        while e < entries.len() || f < faults.len() {
            let fault_first =
                f < faults.len() && (e >= entries.len() || faults[f].time <= entries[e].time);
            if fault_first {
                let rec = faults[f];
                validator.on_fault(rec.time, rec.node, rec.kind);
                f += 1;
            } else {
                validator.on_event(&entries[e]);
                e += 1;
            }
        }
        validator.into_report(quiescent)
    }

    /// Violations found so far (more may follow until
    /// [`into_report`](Self::into_report) runs the end-of-execution
    /// checks).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Peak-memory statistics observed so far.
    pub fn stats(&self) -> OnlineStats {
        OnlineStats {
            peak_live: self.peak_live,
            peak_tracked: self.peak_tracked,
            events: self.events,
        }
    }

    /// Finishes the validation and returns the report. Set `quiescent`
    /// when the execution ran to idleness, enabling the termination check
    /// (guarantee 3); truncated executions skip it, exactly as in the
    /// post-hoc [`validate`](crate::validate).
    pub fn into_report(mut self, quiescent: bool) -> ValidationReport {
        // Progress windows that closed strictly before the horizon are
        // due; windows still open at the horizon are not judged.
        self.fire_deadlines(self.horizon);
        if quiescent {
            let mut unterminated: Vec<InstanceId> = self.live.keys().copied().collect();
            unterminated.extend(self.late_crash_unterminated.iter().copied());
            unterminated.sort_unstable();
            for instance in unterminated {
                self.violations
                    .push(Violation::MissingTermination { instance });
            }
        }
        ValidationReport::from_violations(self.violations)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// The progress window length: a silent span strictly longer than
    /// `F_prog` (i.e. of `F_prog + 1` ticks) is a violation.
    fn window(&self) -> Duration {
        self.config.f_prog() + Duration::TICK
    }

    /// Advances the stream clock to `t`: fires progress deadlines that
    /// closed strictly before `t` and prunes retired instances whose
    /// straggler window has passed.
    fn advance(&mut self, t: Time) {
        self.fire_deadlines(t);
        while let Some(&(deadline, id)) = self.retire_queue.front() {
            if deadline >= t {
                break;
            }
            self.retire_queue.pop_front();
            self.retired.remove(&id);
        }
        self.now = t;
    }

    /// Pops and judges every armed deadline strictly before `t`. An armed
    /// deadline whose epoch is still current means the receiver has been
    /// continuously unprotected while a connected instance spanned the
    /// window — the window closed uncovered.
    fn fire_deadlines(&mut self, t: Time) {
        while let Some(&Reverse((deadline, j, epoch))) = self.deadlines.peek() {
            if deadline >= t {
                break;
            }
            self.deadlines.pop();
            if self.rx[j].epoch != epoch {
                continue; // stale: state changed since this was armed
            }
            debug_assert_eq!(self.rx[j].armed, Some(deadline));
            let (start, instance) = self.rx[j].connected[0];
            let window_start = start.max(self.rx[j].floor);
            self.violations.push(Violation::ProgressViolation {
                receiver: NodeId::new(j),
                instance,
                window_start,
            });
            // One report per (instance, receiver) pair, like the post-hoc
            // validator: this pair stops participating.
            self.rx[j].connected.remove(0);
            self.rx[j].armed = None;
            self.rearm(j);
        }
    }

    fn deadline(&self, j: usize) -> Option<Time> {
        if self.crashed[j] || self.rx[j].protectors > 0 {
            return None;
        }
        let &(start, _) = self.rx[j].connected.first()?;
        Some(start.max(self.rx[j].floor) + self.window())
    }

    /// Recomputes receiver `j`'s deadline and re-arms the heap if it
    /// changed. A no-op when the armed deadline is already correct, so
    /// state churn that leaves the deadline alone costs nothing.
    fn rearm(&mut self, j: usize) {
        let deadline = self.deadline(j);
        if deadline == self.rx[j].armed {
            return;
        }
        self.rx[j].epoch += 1;
        self.rx[j].armed = deadline;
        if let Some(d) = deadline {
            self.deadlines.push(Reverse((d, j, self.rx[j].epoch)));
        }
    }

    fn track_peaks(&mut self) {
        self.peak_live = self.peak_live.max(self.live.len());
        self.peak_tracked = self.peak_tracked.max(self.live.len() + self.retired.len());
    }

    fn orphan(&mut self, instance: InstanceId) {
        if self.orphans.insert(instance) {
            self.violations.push(Violation::MissingBcast { instance });
        }
    }

    fn handle_bcast(&mut self, e: &TraceEntry) {
        let id = e.instance;
        if self.live.contains_key(&id) || self.retired.contains_key(&id) {
            self.violations
                .push(Violation::DuplicateBcast { instance: id });
            return;
        }
        if let Some(first) = self.in_flight_of[e.node.index()] {
            self.violations.push(Violation::OverlappingBcasts {
                sender: e.node,
                first,
                second: id,
            });
        }
        self.in_flight_of[e.node.index()] = Some(id);
        self.live.insert(
            id,
            LiveInstance {
                sender: e.node,
                start: e.time,
                delivered: Vec::new(),
            },
        );
        for i in 0..self.dual.reliable_neighbors(e.node).len() {
            let j = self.dual.reliable_neighbors(e.node)[i];
            let connected = &mut self.rx[j.index()].connected;
            let at = connected.partition_point(|&entry| entry < (e.time, id));
            connected.insert(at, (e.time, id));
            self.rearm(j.index());
        }
        // A broadcast in the same tick as its sender's crash (the runtime
        // processes time-0 wake-ups before same-tick faults; a replayed
        // stream merges faults first) is silenced on the spot: the crash
        // caps the instance at its own start, exempting it from
        // termination — exactly the post-hoc `first_crash_at_or_after`
        // boundary semantics.
        if self.crashed[e.node.index()]
            && self.faults[e.node.index()]
                .intervals
                .last()
                .is_some_and(|&(c, _)| c == e.time)
        {
            self.retire(id, e.time, false);
        }
    }

    fn handle_rcv(&mut self, e: &TraceEntry) {
        let id = e.instance;
        let receiver = e.node;
        if let Some(inst) = self.live.get_mut(&id) {
            if !self.dual.g_prime().has_edge(inst.sender, receiver) {
                self.violations.push(Violation::RcvToNonNeighbor {
                    instance: id,
                    receiver,
                });
            }
            match inst.delivered.binary_search(&receiver) {
                Ok(_) => {
                    self.violations.push(Violation::DuplicateRcv {
                        instance: id,
                        receiver,
                    });
                }
                Err(at) => {
                    inst.delivered.insert(at, receiver);
                    self.rx[receiver.index()].protectors += 1;
                    self.rearm(receiver.index());
                }
            }
        } else if let Some(inst) = self.retired.get(&id) {
            if !self.dual.g_prime().has_edge(inst.sender, receiver) {
                self.violations.push(Violation::RcvToNonNeighbor {
                    instance: id,
                    receiver,
                });
            }
            if inst.delivered.binary_search(&receiver).is_ok() {
                self.violations.push(Violation::DuplicateRcv {
                    instance: id,
                    receiver,
                });
            }
            if inst.by_event {
                self.violations.push(Violation::RcvAfterTermination {
                    instance: id,
                    receiver,
                });
            }
        } else {
            self.orphan(id);
        }
    }

    fn handle_termination(&mut self, e: &TraceEntry) {
        let id = e.instance;
        let Some(inst) = self.live.get(&id) else {
            if self.retired.contains_key(&id) {
                self.violations
                    .push(Violation::MultipleTerminations { instance: id });
            } else {
                self.orphan(id);
            }
            return;
        };
        if e.node != inst.sender {
            self.violations.push(Violation::TerminationByNonSender {
                instance: id,
                node: e.node,
            });
        }
        if e.kind == TraceKind::Ack {
            let (sender, start) = (inst.sender, inst.start);
            let mut missing: Vec<NodeId> = Vec::new();
            for &g_neighbor in self.dual.reliable_neighbors(sender) {
                let delivered = self.live[&id].delivered.binary_search(&g_neighbor).is_ok();
                // A receiver crashed at any point of the instance's
                // lifetime is exempt: its delivery may have been silenced.
                if !delivered && !self.faults[g_neighbor.index()].overlaps(start, e.time) {
                    missing.push(g_neighbor);
                }
            }
            for receiver in missing {
                self.violations.push(Violation::MissingReliableDelivery {
                    instance: id,
                    receiver,
                });
            }
            let delay = e.time.saturating_since(start).ticks();
            if delay > self.config.f_ack().ticks() {
                self.violations.push(Violation::AckBoundExceeded {
                    instance: id,
                    delay,
                });
            }
        }
        self.retire(id, e.time, true);
    }

    /// Retires a live instance at `term`: releases its progress state
    /// (connected spans end, protected receivers convert to floor
    /// updates) and parks a straggler record for `F_ack`.
    fn retire(&mut self, id: InstanceId, term: Time, by_event: bool) {
        let inst = self.live.remove(&id).expect("retire of a live instance");
        if self.in_flight_of[inst.sender.index()] == Some(id) {
            self.in_flight_of[inst.sender.index()] = None;
        }
        for i in 0..self.dual.reliable_neighbors(inst.sender).len() {
            let j = self.dual.reliable_neighbors(inst.sender)[i];
            let connected = &mut self.rx[j.index()].connected;
            // May be absent if a progress violation already reported this
            // pair.
            if let Ok(at) = connected.binary_search(&(inst.start, id)) {
                connected.remove(at);
            }
            self.rearm(j.index());
        }
        let next_floor = term + Duration::TICK;
        for &receiver in &inst.delivered {
            let rx = &mut self.rx[receiver.index()];
            rx.protectors -= 1;
            rx.floor = rx.floor.max(next_floor);
        }
        for &receiver in &inst.delivered {
            self.rearm(receiver.index());
        }
        self.retired.insert(
            id,
            RetiredInstance {
                sender: inst.sender,
                by_event,
                delivered: inst.delivered,
            },
        );
        self.retire_queue
            .push_back((term + self.config.f_ack(), id));
    }
}

impl Observer for OnlineValidator {
    fn on_event(&mut self, e: &TraceEntry) {
        self.events += 1;
        self.advance(e.time);
        self.horizon = e.time;
        if self.faults[e.node.index()].crashed_strictly_at(e.time) {
            self.violations.push(Violation::ActionWhileCrashed {
                instance: e.instance,
                node: e.node,
                kind: e.kind,
            });
        }
        match e.kind {
            TraceKind::Bcast => self.handle_bcast(e),
            TraceKind::Rcv => self.handle_rcv(e),
            TraceKind::Ack | TraceKind::Abort => self.handle_termination(e),
        }
        self.track_peaks();
    }

    fn on_fault(&mut self, time: Time, node: NodeId, kind: FaultKind) {
        self.advance(time);
        let v = node.index();
        match kind {
            FaultKind::Crash => {
                if self.crashed[v] {
                    return;
                }
                self.crashed[v] = true;
                self.faults[v].intervals.push((time, Time::MAX));
                if let Some(id) = self.in_flight_of[v] {
                    // The sender's in-flight instance is silenced here. A
                    // crash after the ack window closed excuses nothing: a
                    // live sender would already have terminated.
                    let start = self.live[&id].start;
                    if time > start + self.config.f_ack() {
                        self.late_crash_unterminated.push(id);
                    }
                    self.retire(id, time, false);
                }
                self.rearm(v);
            }
            FaultKind::Recover => {
                if !self.crashed[v] {
                    return;
                }
                self.crashed[v] = false;
                if let Some(last) = self.faults[v].intervals.last_mut() {
                    last.1 = time;
                }
                // Starvation spent crashed is not starvation: the first
                // judged window after an outage starts at the recovery.
                self.rx[v].floor = self.rx[v].floor.max(time);
                self.rearm(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKey;

    fn line_dual(n: usize) -> DualGraph {
        DualGraph::reliable(amac_graph::generators::line(n).unwrap())
    }

    fn t(ticks: u64) -> Time {
        Time::from_ticks(ticks)
    }

    fn key() -> MessageKey {
        MessageKey(1)
    }

    /// Sorted debug strings, for order-insensitive set comparison with the
    /// post-hoc validator.
    fn violation_set(report: &ValidationReport) -> Vec<String> {
        let mut v: Vec<String> = report
            .violations()
            .iter()
            .map(|x| format!("{x:?}"))
            .collect();
        v.sort();
        v
    }

    fn assert_matches_posthoc(
        trace: &Trace,
        dual: &DualGraph,
        config: &MacConfig,
        quiescent: bool,
    ) {
        let posthoc = crate::validate(trace, dual, config, quiescent);
        let online = OnlineValidator::replay(trace, dual, config, quiescent);
        assert_eq!(
            violation_set(&online),
            violation_set(&posthoc),
            "online and post-hoc disagree\nonline: {online}\npost-hoc: {posthoc}"
        );
    }

    fn push(tr: &mut Trace, ticks: u64, inst: u64, node: usize, kind: TraceKind, k: MessageKey) {
        tr.push(t(ticks), InstanceId::new(inst), NodeId::new(node), kind, k);
    }

    #[test]
    fn empty_trace_is_valid() {
        let report = OnlineValidator::replay(
            &Trace::new(),
            &line_dual(2),
            &MacConfig::from_ticks(2, 8),
            true,
        );
        assert!(report.is_ok());
    }

    #[test]
    fn matches_posthoc_on_valid_and_invalid_hand_built_traces() {
        let dual2 = line_dual(2);
        let dual3 = line_dual(3);
        let cfg = MacConfig::from_ticks(2, 8);

        // Valid bcast/rcv/ack triple.
        let mut valid = Trace::new();
        push(&mut valid, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut valid, 1, 0, 1, TraceKind::Rcv, key());
        push(&mut valid, 2, 0, 0, TraceKind::Ack, key());
        assert_matches_posthoc(&valid, &dual2, &cfg, true);

        // Missing reliable delivery.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 2, 0, 0, TraceKind::Ack, key());
        assert_matches_posthoc(&tr, &dual2, &cfg, true);

        // Ack past the bound.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 1, 0, 1, TraceKind::Rcv, key());
        push(&mut tr, 100, 0, 0, TraceKind::Ack, key());
        assert_matches_posthoc(&tr, &dual2, &MacConfig::from_ticks(4, 64), true);

        // Rcv to a non-neighbor.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 1, 0, 1, TraceKind::Rcv, key());
        push(&mut tr, 1, 0, 2, TraceKind::Rcv, key());
        push(&mut tr, 2, 0, 0, TraceKind::Ack, key());
        assert_matches_posthoc(&tr, &dual3, &cfg, true);

        // Duplicate + late rcv after the ack.
        let mut tr = valid.clone();
        push(&mut tr, 3, 0, 1, TraceKind::Rcv, key());
        assert_matches_posthoc(&tr, &dual2, &cfg, true);

        // Termination by a non-sender.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 1, 0, 1, TraceKind::Rcv, key());
        push(&mut tr, 2, 0, 1, TraceKind::Ack, key());
        assert_matches_posthoc(&tr, &dual2, &cfg, true);

        // Orphaned event.
        let mut tr = Trace::new();
        push(&mut tr, 1, 9, 1, TraceKind::Rcv, key());
        assert_matches_posthoc(&tr, &dual2, &cfg, false);

        // Overlapping broadcasts.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 1, 1, 0, TraceKind::Bcast, MessageKey(2));
        assert_matches_posthoc(&tr, &dual2, &cfg, false);

        // Abort exempts the ack checks.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 3, 0, 0, TraceKind::Abort, key());
        assert_matches_posthoc(&tr, &dual2, &cfg, true);
    }

    #[test]
    fn matches_posthoc_on_progress_traces() {
        let cfg = MacConfig::from_ticks(4, 64);

        // Starvation: single instance delivering only at t=50.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 50, 0, 1, TraceKind::Rcv, key());
        push(&mut tr, 50, 0, 0, TraceKind::Ack, key());
        assert_matches_posthoc(&tr, &line_dual(2), &cfg, true);

        // A single early receive from a live instance covers everything.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 3, 0, 1, TraceKind::Rcv, key());
        push(&mut tr, 60, 0, 0, TraceKind::Ack, key());
        assert_matches_posthoc(&tr, &line_dual(2), &cfg, true);

        // Protection ends at the protector's termination.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 0, 1, 2, TraceKind::Bcast, MessageKey(2));
        push(&mut tr, 2, 1, 1, TraceKind::Rcv, MessageKey(2));
        push(&mut tr, 4, 1, 2, TraceKind::Ack, MessageKey(2));
        push(&mut tr, 40, 0, 1, TraceKind::Rcv, key());
        push(&mut tr, 40, 0, 0, TraceKind::Ack, key());
        assert_matches_posthoc(&tr, &line_dual(3), &cfg, true);

        // Steady receives from a third node keep progress satisfied.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        let mut inst = 1;
        let mut time = 0;
        while time < 60 {
            time += 4;
            push(&mut tr, time, inst, 2, TraceKind::Bcast, MessageKey(inst));
            push(&mut tr, time, inst, 1, TraceKind::Rcv, MessageKey(inst));
            push(&mut tr, time, inst, 2, TraceKind::Ack, MessageKey(inst));
            inst += 1;
        }
        push(&mut tr, 60, 0, 1, TraceKind::Rcv, key());
        push(&mut tr, 60, 0, 0, TraceKind::Ack, key());
        assert_matches_posthoc(&tr, &line_dual(3), &cfg, true);
    }

    #[test]
    fn matches_posthoc_on_crash_conditioned_traces() {
        let cfg = MacConfig::from_ticks(2, 8);
        let dual = line_dual(2);

        // A crashed node acting is rejected.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 1, 0, 1, TraceKind::Rcv, key());
        push(&mut tr, 2, 0, 0, TraceKind::Ack, key());
        tr.push_fault(t(0), NodeId::new(1), FaultKind::Crash);
        assert_matches_posthoc(&tr, &dual, &cfg, true);

        // A crashed receiver exempts reliable delivery.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 2, 0, 0, TraceKind::Ack, key());
        tr.push_fault(t(1), NodeId::new(1), FaultKind::Crash);
        assert_matches_posthoc(&tr, &dual, &cfg, true);

        // Recovered receivers can starve again (window from the recovery).
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 100, 0, 1, TraceKind::Rcv, key());
        push(&mut tr, 100, 0, 0, TraceKind::Ack, key());
        tr.push_fault(t(2), NodeId::new(1), FaultKind::Crash);
        tr.push_fault(t(10), NodeId::new(1), FaultKind::Recover);
        assert_matches_posthoc(&tr, &dual, &MacConfig::from_ticks(4, 200), true);

        // Crashed sender exempts termination and progress; a later
        // instance extends the horizon.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 10, 1, 1, TraceKind::Bcast, MessageKey(2));
        push(&mut tr, 12, 1, 0, TraceKind::Rcv, MessageKey(2));
        push(&mut tr, 13, 1, 1, TraceKind::Ack, MessageKey(2));
        tr.push_fault(t(2), NodeId::new(0), FaultKind::Crash);
        tr.push_fault(t(11), NodeId::new(0), FaultKind::Recover);
        assert_matches_posthoc(&tr, &dual, &MacConfig::from_ticks(4, 64), true);

        // Post-recovery rebroadcast is well-formed.
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 3, 1, 0, TraceKind::Bcast, MessageKey(2));
        push(&mut tr, 4, 1, 1, TraceKind::Rcv, MessageKey(2));
        push(&mut tr, 5, 1, 0, TraceKind::Ack, MessageKey(2));
        tr.push_fault(t(1), NodeId::new(0), FaultKind::Crash);
        tr.push_fault(t(2), NodeId::new(0), FaultKind::Recover);
        assert_matches_posthoc(&tr, &dual, &cfg, true);
    }

    #[test]
    fn missing_termination_is_gated_on_quiescence() {
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        let dual = line_dual(2);
        let cfg = MacConfig::from_ticks(2, 8);
        assert_matches_posthoc(&tr, &dual, &cfg, true);
        assert_matches_posthoc(&tr, &dual, &cfg, false);
        let report = OnlineValidator::replay(&tr, &dual, &cfg, true);
        assert!(matches!(
            report.violations()[0],
            Violation::MissingTermination { .. }
        ));
    }

    #[test]
    fn stats_track_peak_and_retire_after_the_straggler_window() {
        // A long sequence of short-lived instances: live state stays at 1,
        // tracked state is bounded by the F_ack straggler window rather
        // than the execution length.
        let dual = line_dual(2);
        let cfg = MacConfig::from_ticks(2, 8);
        let mut validator = OnlineValidator::new(dual.clone(), cfg);
        let total = 200u64;
        for i in 0..total {
            let base = i * 10;
            validator.on_event(&TraceEntry {
                time: t(base),
                instance: InstanceId::new(i),
                node: NodeId::new(0),
                kind: TraceKind::Bcast,
                key: key(),
            });
            validator.on_event(&TraceEntry {
                time: t(base + 1),
                instance: InstanceId::new(i),
                node: NodeId::new(1),
                kind: TraceKind::Rcv,
                key: key(),
            });
            validator.on_event(&TraceEntry {
                time: t(base + 2),
                instance: InstanceId::new(i),
                node: NodeId::new(0),
                kind: TraceKind::Ack,
                key: key(),
            });
        }
        let stats = validator.stats();
        assert_eq!(stats.events, 3 * total);
        assert_eq!(stats.peak_live, 1, "one instance in flight at a time");
        assert!(
            stats.peak_tracked <= 3,
            "tracked state ({}) must be bounded by the F_ack window, not the {} instances",
            stats.peak_tracked,
            total
        );
        let report = validator.into_report(true);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn duplicate_bcast_is_rejected() {
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 1, 0, 0, TraceKind::Bcast, key());
        let report =
            OnlineValidator::replay(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), false);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::DuplicateBcast { .. })));
    }

    #[test]
    fn multiple_terminations_are_rejected() {
        let mut tr = Trace::new();
        push(&mut tr, 0, 0, 0, TraceKind::Bcast, key());
        push(&mut tr, 1, 0, 1, TraceKind::Rcv, key());
        push(&mut tr, 2, 0, 0, TraceKind::Ack, key());
        push(&mut tr, 3, 0, 0, TraceKind::Ack, key());
        assert_matches_posthoc(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
    }
}
