//! The observer pipeline: streaming consumers of MAC-level events.
//!
//! The [`Runtime`](crate::Runtime) does not own a [`Trace`] (or any other
//! derived view of the execution). Instead it *emits* every MAC-level
//! event — `bcast` / `rcv` / `ack` / `abort`, plus node crash/recovery
//! faults — to whatever set of [`Observer`]s the caller attached, as the
//! events happen. Execution and observation are decoupled: the hot path
//! pays only for the observers actually present (none, by default), and
//! new views of an execution are new observers, not new runtime fields.
//!
//! Three observers ship with this crate:
//!
//! * [`TraceObserver`] — records the full [`Trace`], O(events) memory; the
//!   pre-observer default behaviour, now opt-in. Attach it (or use
//!   [`Runtime::tracing`](crate::Runtime::tracing)) when you need the
//!   post-hoc [`validate`](crate::validate) function, `--dump-traces`
//!   output, or hand inspection.
//! * [`CounterObserver`] — per-kind event counts, O(1) memory.
//! * [`OnlineValidator`](crate::OnlineValidator) — checks the five MAC
//!   guarantees *while the execution runs*, with memory proportional to
//!   the in-flight state rather than the execution length (see
//!   [`online`](crate::online)).
//!
//! Downstream crates plug further observers into the same pipeline:
//! `amac-store`'s `StoreObserver` streams the execution to a durable
//! `.amactrace` file, and `amac-obs` adds `MetricsObserver` (sim-time
//! latency/slack histograms, per-node counters) and `SpanObserver`
//! (per-instance span timelines as Chrome trace-event JSON).
//!
//! Observers are attached with [`Runtime::attach`](crate::Runtime::attach),
//! which returns a typed [`ObserverHandle`]; after (or during) the run the
//! observer is borrowed back with
//! [`Runtime::observer`](crate::Runtime::observer) or reclaimed by value
//! with [`Runtime::detach`](crate::Runtime::detach).

use crate::fault::FaultKind;
use crate::trace::{Trace, TraceEntry, TraceKind};
use amac_graph::NodeId;
use amac_sim::Time;
use std::any::Any;
use std::marker::PhantomData;

/// A streaming consumer of MAC-level events.
///
/// The runtime calls [`on_event`](Observer::on_event) for every
/// `bcast`/`rcv`/`ack`/`abort` in execution order (times are
/// non-decreasing; ties reflect zero-delay steps whose relative order is
/// meaningful), and [`on_fault`](Observer::on_fault) for every applied
/// node crash or recovery. Observers must not assume they see a complete
/// execution until the caller stops stepping the runtime.
///
/// The `Any` supertrait is what lets [`Runtime::detach`](crate::Runtime::detach)
/// hand the concrete observer back by value.
pub trait Observer: Any {
    /// A MAC-level event was recorded.
    fn on_event(&mut self, event: &TraceEntry);

    /// A node fault (crash or recovery) was applied. Default: ignore.
    fn on_fault(&mut self, time: Time, node: NodeId, kind: FaultKind) {
        let _ = (time, node, kind);
    }
}

/// Typed handle to an observer attached to a runtime, returned by
/// [`Runtime::attach`](crate::Runtime::attach). Redeem it with
/// [`Runtime::observer`](crate::Runtime::observer) (borrow) or
/// [`Runtime::detach`](crate::Runtime::detach) (take back by value).
#[derive(Debug)]
pub struct ObserverHandle<O> {
    pub(crate) index: usize,
    pub(crate) _marker: PhantomData<fn() -> O>,
}

/// The set of observers attached to one runtime. Detached slots stay as
/// holes so outstanding handles keep their indices.
#[derive(Default)]
pub(crate) struct ObserverSet {
    observers: Vec<Option<Box<dyn Observer>>>,
}

impl ObserverSet {
    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.observers.iter().all(Option::is_none)
    }

    pub(crate) fn attach<O: Observer>(&mut self, observer: O) -> ObserverHandle<O> {
        self.observers.push(Some(Box::new(observer)));
        ObserverHandle {
            index: self.observers.len() - 1,
            _marker: PhantomData,
        }
    }

    pub(crate) fn get<O: Observer>(&self, handle: &ObserverHandle<O>) -> &O {
        let boxed = self.observers[handle.index]
            .as_ref()
            .expect("observer was already detached");
        (boxed.as_ref() as &dyn Any)
            .downcast_ref::<O>()
            .expect("observer handle type matches the attached observer")
    }

    pub(crate) fn detach<O: Observer>(&mut self, handle: ObserverHandle<O>) -> O {
        let boxed = self.observers[handle.index]
            .take()
            .expect("observer was already detached");
        *(boxed as Box<dyn Any>)
            .downcast::<O>()
            .unwrap_or_else(|_| panic!("observer handle type matches the attached observer"))
    }

    /// First attached observer of type `O`, if any (used by the
    /// [`Runtime::trace`](crate::Runtime::trace) convenience accessors).
    pub(crate) fn find<O: Observer>(&self) -> Option<&O> {
        self.observers
            .iter()
            .flatten()
            .find_map(|boxed| (boxed.as_ref() as &dyn Any).downcast_ref::<O>())
    }

    /// Takes the first attached observer of type `O` out of the set.
    pub(crate) fn take_first<O: Observer>(&mut self) -> Option<O> {
        let index = self.observers.iter().position(|slot| {
            slot.as_ref()
                .is_some_and(|boxed| (boxed.as_ref() as &dyn Any).is::<O>())
        })?;
        let boxed = self.observers[index].take().expect("slot checked above");
        Some(
            *(boxed as Box<dyn Any>)
                .downcast::<O>()
                .unwrap_or_else(|_| panic!("type checked above")),
        )
    }

    #[inline]
    pub(crate) fn emit(&mut self, event: &TraceEntry) {
        for observer in self.observers.iter_mut().flatten() {
            observer.on_event(event);
        }
    }

    #[inline]
    pub(crate) fn emit_fault(&mut self, time: Time, node: NodeId, kind: FaultKind) {
        for observer in self.observers.iter_mut().flatten() {
            observer.on_fault(time, node, kind);
        }
    }
}

/// Records the full execution [`Trace`] — the pre-observer default
/// behaviour, now opt-in. O(events) memory; attach it only when a surface
/// actually consumes the trace (post-hoc [`validate`](crate::validate),
/// outlier dumps, hand-built-trace comparisons).
///
/// # Examples
///
/// ```
/// use amac_mac::{Runtime, TraceObserver, MacConfig, policies::EagerPolicy};
/// # use amac_mac::{Automaton, Ctx, MacMessage, MessageKey};
/// # use amac_graph::{generators, DualGraph};
/// # #[derive(Clone, Debug)]
/// # struct T;
/// # impl MacMessage for T { fn key(&self) -> MessageKey { MessageKey(0) } }
/// # struct Quiet;
/// # impl Automaton for Quiet {
/// #     type Msg = T; type Env = (); type Out = ();
/// #     fn on_receive(&mut self, _: &T, _: &mut Ctx<'_, T, ()>) {}
/// #     fn on_ack(&mut self, _: &T, _: &mut Ctx<'_, T, ()>) {}
/// # }
/// let dual = DualGraph::reliable(generators::line(2)?);
/// let mut rt = Runtime::new(dual, MacConfig::from_ticks(1, 4), vec![Quiet, Quiet], EagerPolicy::new());
/// let tracer = rt.attach(TraceObserver::new());
/// rt.run();
/// let trace = rt.detach(tracer).into_trace();
/// assert!(trace.is_empty(), "nobody broadcast");
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
#[derive(Debug, Default)]
pub struct TraceObserver {
    trace: Trace,
}

impl TraceObserver {
    /// Creates an observer with an empty trace.
    pub fn new() -> TraceObserver {
        TraceObserver::default()
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the observer, returning the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Observer for TraceObserver {
    fn on_event(&mut self, event: &TraceEntry) {
        self.trace.push(
            event.time,
            event.instance,
            event.node,
            event.kind,
            event.key,
        );
    }

    fn on_fault(&mut self, time: Time, node: NodeId, kind: FaultKind) {
        self.trace.push_fault(time, node, kind);
    }
}

/// Counts MAC-level events per kind (plus applied faults) in O(1) memory —
/// the cheapest useful observer, and the reference example for writing new
/// ones.
#[derive(Clone, Copy, Debug, Default)]
pub struct CounterObserver {
    counts: [u64; 4],
    faults: u64,
}

impl CounterObserver {
    /// Creates a zeroed counter.
    pub fn new() -> CounterObserver {
        CounterObserver::default()
    }

    fn slot(kind: TraceKind) -> usize {
        match kind {
            TraceKind::Bcast => 0,
            TraceKind::Rcv => 1,
            TraceKind::Ack => 2,
            TraceKind::Abort => 3,
        }
    }

    /// Number of events of `kind` observed so far.
    pub fn count(&self, kind: TraceKind) -> u64 {
        self.counts[Self::slot(kind)]
    }

    /// Total MAC-level events observed (faults excluded).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of applied faults (crashes plus recoveries) observed.
    pub fn faults(&self) -> u64 {
        self.faults
    }
}

impl Observer for CounterObserver {
    fn on_event(&mut self, event: &TraceEntry) {
        self.counts[Self::slot(event.kind)] += 1;
    }

    fn on_fault(&mut self, _time: Time, _node: NodeId, _kind: FaultKind) {
        self.faults += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceId;
    use crate::message::MessageKey;

    fn entry(kind: TraceKind, ticks: u64) -> TraceEntry {
        TraceEntry {
            time: Time::from_ticks(ticks),
            instance: InstanceId::new(0),
            node: NodeId::new(0),
            kind,
            key: MessageKey(1),
        }
    }

    #[test]
    fn trace_observer_replays_events_into_a_trace() {
        let mut obs = TraceObserver::new();
        obs.on_event(&entry(TraceKind::Bcast, 0));
        obs.on_event(&entry(TraceKind::Ack, 2));
        obs.on_fault(Time::from_ticks(3), NodeId::new(1), FaultKind::Crash);
        assert_eq!(obs.trace().len(), 2);
        let trace = obs.into_trace();
        assert_eq!(trace.count(TraceKind::Ack), 1);
        assert_eq!(trace.faults().len(), 1);
    }

    #[test]
    fn counter_observer_counts_by_kind() {
        let mut obs = CounterObserver::new();
        obs.on_event(&entry(TraceKind::Bcast, 0));
        obs.on_event(&entry(TraceKind::Rcv, 1));
        obs.on_event(&entry(TraceKind::Rcv, 1));
        obs.on_fault(Time::from_ticks(2), NodeId::new(0), FaultKind::Crash);
        assert_eq!(obs.count(TraceKind::Rcv), 2);
        assert_eq!(obs.count(TraceKind::Bcast), 1);
        assert_eq!(obs.count(TraceKind::Abort), 0);
        assert_eq!(obs.total(), 3);
        assert_eq!(obs.faults(), 1);
    }

    #[test]
    fn observer_set_attach_get_detach_roundtrip() {
        let mut set = ObserverSet::default();
        assert!(set.is_empty());
        let counters = set.attach(CounterObserver::new());
        let tracer = set.attach(TraceObserver::new());
        assert!(!set.is_empty());
        set.emit(&entry(TraceKind::Bcast, 0));
        assert_eq!(set.get(&counters).total(), 1);
        assert_eq!(set.find::<TraceObserver>().unwrap().trace().len(), 1);
        let taken = set.detach(tracer);
        assert_eq!(taken.trace().len(), 1);
        assert!(set.find::<TraceObserver>().is_none());
        // The counter handle survives the tracer's detach.
        set.emit(&entry(TraceKind::Ack, 1));
        assert_eq!(set.detach(counters).total(), 2);
        assert!(set.is_empty());
    }

    #[test]
    fn observer_set_take_first_by_type() {
        let mut set = ObserverSet::default();
        set.attach(TraceObserver::new());
        assert!(set.take_first::<CounterObserver>().is_none());
        assert!(set.take_first::<TraceObserver>().is_some());
        assert!(set.take_first::<TraceObserver>().is_none());
    }
}
