//! Execution traces: the ground truth record of MAC-level events.
//!
//! The runtime appends one entry per `bcast` / `rcv` / `ack` / `abort`
//! event. Traces are the input to the [`validate`](crate::validate) function, which
//! re-checks the paper's five MAC-layer guarantees on the concrete
//! execution — our mechanical substitute for the paper's hand proofs of
//! model conformance. Traces can also be constructed by hand, which the
//! test suite uses for fault injection (deliberately invalid traces must be
//! rejected).

use crate::fault::FaultKind;
use crate::instance::InstanceId;
use crate::message::MessageKey;
use amac_graph::NodeId;
use amac_sim::Time;
use std::fmt;

/// The kind of a trace entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A node initiated a local broadcast (one per message instance).
    Bcast,
    /// A node received the instance's message.
    Rcv,
    /// The MAC layer acknowledged the instance to its sender.
    Ack,
    /// The sender aborted the instance (enhanced model only).
    Abort,
}

impl TraceKind {
    /// Stable single-byte wire code of this kind, used as the record tag of
    /// the `amac-store` on-disk trace format (`docs/TRACE_FORMAT.md`).
    /// These values are part of the persisted format: never renumber them —
    /// new kinds get new codes.
    pub const fn code(self) -> u8 {
        match self {
            TraceKind::Bcast => 0,
            TraceKind::Rcv => 1,
            TraceKind::Ack => 2,
            TraceKind::Abort => 3,
        }
    }

    /// Inverse of [`code`](TraceKind::code); `None` for an unassigned code.
    pub const fn from_code(code: u8) -> Option<TraceKind> {
        match code {
            0 => Some(TraceKind::Bcast),
            1 => Some(TraceKind::Rcv),
            2 => Some(TraceKind::Ack),
            3 => Some(TraceKind::Abort),
            _ => None,
        }
    }
}

/// One MAC-level event.
///
/// Also the event type the runtime feeds to every attached
/// [`Observer`](crate::Observer) — the trace is simply the log of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulated time of the event.
    pub time: Time,
    /// The message instance the event belongs to (the model's *cause*
    /// function, made explicit).
    pub instance: InstanceId,
    /// The acting node: the sender for `Bcast`/`Ack`/`Abort`, the receiver
    /// for `Rcv`.
    pub node: NodeId,
    /// Event kind.
    pub kind: TraceKind,
    /// Semantic key of the instance's payload.
    pub key: MessageKey,
}

/// One applied node fault (crash or recovery), recorded alongside the
/// MAC-level events so the validator can condition the model guarantees on
/// node liveness. Kept in a separate log from [`TraceEntry`]: faults are
/// node-level, not instance-level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// When the fault was applied.
    pub time: Time,
    /// The affected node.
    pub node: NodeId,
    /// Crash or recovery.
    pub kind: FaultKind,
}

/// An append-only log of MAC-level events in execution order.
///
/// Entries are totally ordered by append position; ties in `time` reflect
/// zero-delay steps, whose relative order is meaningful (e.g. all `rcv`s of
/// an instance precede its `ack` even when they share a tick).
///
/// # Examples
///
/// ```
/// use amac_mac::trace::{Trace, TraceKind};
/// use amac_mac::{InstanceId, MessageKey};
/// use amac_graph::NodeId;
/// use amac_sim::Time;
///
/// let mut t = Trace::new();
/// t.push(Time::ZERO, InstanceId::new(0), NodeId::new(0), TraceKind::Bcast, MessageKey(1));
/// t.push(Time::from_ticks(3), InstanceId::new(0), NodeId::new(1), TraceKind::Rcv, MessageKey(1));
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.entries()[1].kind, TraceKind::Rcv);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    faults: Vec<FaultRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(
        &mut self,
        time: Time,
        instance: InstanceId,
        node: NodeId,
        kind: TraceKind,
        key: MessageKey,
    ) {
        if let Some(last) = self.entries.last() {
            debug_assert!(last.time <= time, "trace must be time-ordered");
        }
        self.entries.push(TraceEntry {
            time,
            instance,
            node,
            kind,
            key,
        });
    }

    /// Appends a node fault (crash or recovery) to the fault log.
    pub fn push_fault(&mut self, time: Time, node: NodeId, kind: FaultKind) {
        if let Some(last) = self.faults.last() {
            debug_assert!(last.time <= time, "fault log must be time-ordered");
        }
        self.faults.push(FaultRecord { time, node, kind });
    }

    /// All applied node faults in execution order (empty for crash-free
    /// executions).
    pub fn faults(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// All entries in execution order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the trace records no events.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Time of the last recorded event (the trace horizon), or `None` for
    /// an empty trace. Entries are appended in time order, so this is also
    /// the maximum timestamp.
    pub fn last_time(&self) -> Option<Time> {
        self.entries.last().map(|e| e.time)
    }

    /// Number of entries of the given kind.
    pub fn count(&self, kind: TraceKind) -> usize {
        self.entries.iter().filter(|e| e.kind == kind).count()
    }

    /// Iterates entries of one kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace with {} events:", self.entries.len())?;
        for e in &self.entries {
            writeln!(
                f,
                "  t={:<8} {:?} inst={:?} node={} key={}",
                e.time, e.kind, e.instance, e.node, e.key
            )?;
        }
        if !self.faults.is_empty() {
            writeln!(f, "faults ({}):", self.faults.len())?;
            for rec in &self.faults {
                writeln!(f, "  t={:<8} {} node={}", rec.time, rec.kind, rec.node)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_times(t: &Trace) -> Vec<u64> {
        t.entries().iter().map(|e| e.time.ticks()).collect()
    }

    #[test]
    fn append_preserves_order() {
        let mut t = Trace::new();
        for i in 0..5 {
            t.push(
                Time::from_ticks(i),
                InstanceId::new(0),
                NodeId::new(0),
                TraceKind::Rcv,
                MessageKey(0),
            );
        }
        assert_eq!(entry_times(&t), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.last_time(), Some(Time::from_ticks(4)));
        assert_eq!(Trace::new().last_time(), None);
    }

    #[test]
    fn count_by_kind() {
        let mut t = Trace::new();
        t.push(
            Time::ZERO,
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            MessageKey(0),
        );
        t.push(
            Time::ZERO,
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Rcv,
            MessageKey(0),
        );
        t.push(
            Time::ZERO,
            InstanceId::new(0),
            NodeId::new(2),
            TraceKind::Rcv,
            MessageKey(0),
        );
        t.push(
            Time::ZERO,
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Ack,
            MessageKey(0),
        );
        assert_eq!(t.count(TraceKind::Rcv), 2);
        assert_eq!(t.count(TraceKind::Bcast), 1);
        assert_eq!(t.count(TraceKind::Abort), 0);
        assert_eq!(t.of_kind(TraceKind::Rcv).count(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn wire_codes_round_trip_and_stay_stable() {
        let kinds = [
            TraceKind::Bcast,
            TraceKind::Rcv,
            TraceKind::Ack,
            TraceKind::Abort,
        ];
        for kind in kinds {
            assert_eq!(TraceKind::from_code(kind.code()), Some(kind));
        }
        // Persisted-format pins: renumbering breaks stored traces.
        assert_eq!(TraceKind::Bcast.code(), 0);
        assert_eq!(TraceKind::Rcv.code(), 1);
        assert_eq!(TraceKind::Ack.code(), 2);
        assert_eq!(TraceKind::Abort.code(), 3);
        assert_eq!(TraceKind::from_code(4), None);
    }

    #[test]
    fn fault_log_is_recorded_and_displayed() {
        let mut t = Trace::new();
        t.push_fault(Time::from_ticks(4), NodeId::new(2), FaultKind::Crash);
        t.push_fault(Time::from_ticks(9), NodeId::new(2), FaultKind::Recover);
        assert_eq!(t.faults().len(), 2);
        assert_eq!(t.faults()[0].kind, FaultKind::Crash);
        assert!(t.is_empty(), "faults live in their own log");
        let s = t.to_string();
        assert!(s.contains("crash"));
        assert!(s.contains("recover"));
    }

    #[test]
    fn display_renders_every_entry() {
        let mut t = Trace::new();
        t.push(
            Time::ZERO,
            InstanceId::new(3),
            NodeId::new(1),
            TraceKind::Bcast,
            MessageKey(9),
        );
        let s = t.to_string();
        assert!(s.contains("Bcast"));
        assert!(s.contains("k9"));
    }
}
