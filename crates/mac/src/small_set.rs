//! A sorted-`Vec` set for the runtime's hot per-receiver collections.
//!
//! The runtime keeps, per receiver, small ordered sets of in-flight
//! instance ids (`connected`, `contending`, `live_protectors`). These sets
//! are mutated and iterated on every broadcast/termination — a `BTreeSet`
//! pays a node allocation per insert and pointer-chases on iteration,
//! while the populations are tiny (bounded by the in-flight instances in a
//! neighborhood). A sorted `Vec` with binary-search insert/remove keeps the
//! *same documented iteration order* (ascending, i.e. broadcast order for
//! [`InstanceId`](crate::InstanceId)s) with contiguous memory and no
//! per-element allocation, so the runtime's determinism policy — every
//! collection whose iteration order reaches execution must be ordered — is
//! preserved verbatim.

use std::fmt;

/// An ordered set backed by a sorted `Vec`.
#[derive(Clone, PartialEq, Eq)]
pub(crate) struct SortedSet<T> {
    items: Vec<T>,
}

impl<T: Ord + Copy> SortedSet<T> {
    pub(crate) fn new() -> SortedSet<T> {
        SortedSet { items: Vec::new() }
    }

    /// Inserts `value`; returns `false` if it was already present.
    pub(crate) fn insert(&mut self, value: T) -> bool {
        match self.items.binary_search(&value) {
            Ok(_) => false,
            Err(at) => {
                self.items.insert(at, value);
                true
            }
        }
    }

    /// Removes `value`; returns `false` if it was absent.
    pub(crate) fn remove(&mut self, value: &T) -> bool {
        match self.items.binary_search(value) {
            Ok(at) => {
                self.items.remove(at);
                true
            }
            Err(_) => false,
        }
    }

    pub(crate) fn contains(&self, value: &T) -> bool {
        self.items.binary_search(value).is_ok()
    }

    /// The smallest element, if any.
    pub(crate) fn first(&self) -> Option<&T> {
        self.items.first()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Ascending iteration (the documented, deterministic order).
    pub(crate) fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }
}

impl<T: Ord + Copy> Default for SortedSet<T> {
    fn default() -> Self {
        SortedSet::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for SortedSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(&self.items).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_keep_sorted_order() {
        let mut s = SortedSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(3));
        assert!(!s.insert(3), "duplicate insert is rejected");
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert_eq!(s.first(), Some(&1));
        assert!(s.contains(&3));
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert_eq!(s.first(), Some(&3));
        assert!(!s.is_empty());
        assert!(s.remove(&3));
        assert!(s.remove(&5));
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
    }
}
