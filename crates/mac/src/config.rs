//! MAC layer configuration: the timing constants and the model variant.

use amac_sim::Duration;
use std::fmt;

/// Which abstract MAC layer variant an execution runs under (paper
/// Section 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    /// The **standard** abstract MAC layer: event-driven nodes with no
    /// clocks, no knowledge of `F_ack`/`F_prog`, and no abort interface.
    Standard,
    /// The **enhanced** abstract MAC layer: nodes may set timers, know
    /// `F_ack` and `F_prog` (and `n`), and may abort broadcasts in
    /// progress.
    Enhanced,
}

impl fmt::Display for ModelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelVariant::Standard => write!(f, "standard"),
            ModelVariant::Enhanced => write!(f, "enhanced"),
        }
    }
}

/// Timing constants and variant for one execution of the abstract MAC
/// layer.
///
/// The two constants bound the scheduler's freedom (paper Section 3.2.1):
///
/// * **acknowledgment bound** `F_ack`: a `bcast` is acknowledged within
///   `F_ack`, and every reliable neighbor receives the message before the
///   ack;
/// * **progress bound** `F_prog`: a node with at least one `G`-neighbor
///   broadcasting throughout an interval longer than `F_prog` receives
///   *some* contending message within that interval.
///
/// In both theory and practice `F_prog ≪ F_ack`; experiments usually keep
/// the ratio configurable.
///
/// # Examples
///
/// ```
/// use amac_mac::{MacConfig, ModelVariant};
/// use amac_sim::Duration;
///
/// let cfg = MacConfig::new(Duration::from_ticks(4), Duration::from_ticks(64));
/// assert_eq!(cfg.f_prog().ticks(), 4);
/// assert_eq!(cfg.f_ack().ticks(), 64);
/// assert_eq!(cfg.variant(), ModelVariant::Standard);
/// let enh = cfg.enhanced();
/// assert_eq!(enh.variant(), ModelVariant::Enhanced);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MacConfig {
    f_prog: Duration,
    f_ack: Duration,
    variant: ModelVariant,
}

impl MacConfig {
    /// Creates a standard-variant configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ f_prog ≤ f_ack` (the model requires positive
    /// bounds, and a progress bound above the ack bound would be vacuous).
    pub fn new(f_prog: Duration, f_ack: Duration) -> MacConfig {
        assert!(
            f_prog.ticks() >= 1,
            "F_prog must be at least one tick, got {f_prog:?}"
        );
        assert!(
            f_ack >= f_prog,
            "F_ack ({f_ack:?}) must be at least F_prog ({f_prog:?})"
        );
        MacConfig {
            f_prog,
            f_ack,
            variant: ModelVariant::Standard,
        }
    }

    /// Convenience constructor from raw tick counts.
    ///
    /// # Panics
    ///
    /// Same as [`MacConfig::new`].
    pub fn from_ticks(f_prog: u64, f_ack: u64) -> MacConfig {
        MacConfig::new(Duration::from_ticks(f_prog), Duration::from_ticks(f_ack))
    }

    /// Switches to the enhanced variant (timers, abort, known bounds).
    pub fn enhanced(mut self) -> MacConfig {
        self.variant = ModelVariant::Enhanced;
        self
    }

    /// Switches to the standard variant.
    pub fn standard(mut self) -> MacConfig {
        self.variant = ModelVariant::Standard;
        self
    }

    /// The progress bound `F_prog`.
    pub fn f_prog(&self) -> Duration {
        self.f_prog
    }

    /// The acknowledgment bound `F_ack`.
    pub fn f_ack(&self) -> Duration {
        self.f_ack
    }

    /// The model variant.
    pub fn variant(&self) -> ModelVariant {
        self.variant
    }

    /// Returns `true` for the enhanced variant.
    pub fn is_enhanced(&self) -> bool {
        self.variant == ModelVariant::Enhanced
    }
}

impl fmt::Display for MacConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} MAC layer (F_prog = {}, F_ack = {})",
            self.variant, self.f_prog, self.f_ack
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let cfg = MacConfig::from_ticks(2, 50);
        assert_eq!(cfg.f_prog(), Duration::from_ticks(2));
        assert_eq!(cfg.f_ack(), Duration::from_ticks(50));
        assert!(!cfg.is_enhanced());
        assert!(cfg.enhanced().is_enhanced());
        assert!(!cfg.enhanced().standard().is_enhanced());
    }

    #[test]
    fn equal_bounds_allowed() {
        let cfg = MacConfig::from_ticks(5, 5);
        assert_eq!(cfg.f_prog(), cfg.f_ack());
    }

    #[test]
    #[should_panic(expected = "F_prog must be at least one tick")]
    fn zero_f_prog_rejected() {
        MacConfig::from_ticks(0, 10);
    }

    #[test]
    #[should_panic(expected = "must be at least F_prog")]
    fn inverted_bounds_rejected() {
        MacConfig::from_ticks(10, 5);
    }

    #[test]
    fn display_mentions_variant() {
        let s = MacConfig::from_ticks(2, 20).enhanced().to_string();
        assert!(s.contains("enhanced"));
        assert!(s.contains("F_ack"));
    }
}
