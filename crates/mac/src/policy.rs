//! The message scheduler interface.
//!
//! The abstract MAC layer resolves all timing and unreliable-delivery
//! choices **non-deterministically**: an adversarial *message scheduler*
//! decides when each receiver gets each message, which `G′ \ G` neighbors
//! receive it at all, and when the acknowledgment returns — constrained
//! only by the model's guarantees. A [`Policy`] is one concrete scheduler.
//!
//! Upper bounds in the paper must hold for *every* valid policy; lower
//! bounds need only *one*. The [`policies`](crate::policies) module ships
//! generic schedulers (eager, lazy, random, duplicate-feeding); the
//! `amac-lower` crate implements the specialized Section 3.3 adversary.
//!
//! The runtime clamps every plan into validity (delays within
//! `[0, F_ack]`, deliveries before the ack) and enforces the progress bound
//! itself, so *no policy can produce an invalid execution* — the policy
//! only steers the adversarial freedom that remains.

use crate::config::MacConfig;
use crate::instance::InstanceId;
use crate::message::MessageKey;
use amac_graph::{DualGraph, NodeId};
use amac_sim::{Duration, Time};

/// Read-only context handed to policy callbacks.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// The network topology.
    pub dual: &'a DualGraph,
    /// Timing constants and variant.
    pub config: &'a MacConfig,
    /// Current simulated time.
    pub now: Time,
}

/// Metadata describing a freshly initiated broadcast.
#[derive(Clone, Debug)]
pub struct BcastInfo {
    /// The new instance's id.
    pub instance: InstanceId,
    /// Broadcasting node.
    pub sender: NodeId,
    /// Semantic key of the payload.
    pub key: MessageKey,
}

/// A scheduling plan for one broadcast instance, produced by
/// [`Policy::plan_bcast`].
///
/// All delays are relative to the broadcast time. The runtime clamps:
///
/// * `ack_delay` into `[1, F_ack]`;
/// * every delivery delay into `[0, ack_delay]` (receive correctness:
///   all `rcv`s precede the `ack`);
/// * reliable neighbors missing from `reliable` receive at
///   `reliable_default` (or `ack_delay` when unset — ack correctness:
///   every `G`-neighbor receives before the ack).
///
/// Unreliable neighbors not listed in `unreliable` simply never receive the
/// instance — the model permits this for `G′ \ G` links.
#[derive(Clone, Debug, Default)]
pub struct BcastPlan {
    /// Delay from broadcast to acknowledgment.
    pub ack_delay: Duration,
    /// Delivery delay for reliable neighbors not listed in `reliable`
    /// (defaults to `ack_delay` when `None`). Policies that deliver to
    /// every reliable neighbor at one uniform delay set this instead of
    /// materializing a per-neighbor list — the hot path then builds no
    /// `Vec` per broadcast.
    pub reliable_default: Option<Duration>,
    /// Planned delivery delays for individual reliable (`G`) neighbors.
    pub reliable: Vec<(NodeId, Duration)>,
    /// Planned delivery delays for unreliable (`G′ \ G`) neighbors; omitted
    /// neighbors never receive.
    pub unreliable: Vec<(NodeId, Duration)>,
}

impl BcastPlan {
    /// A plan that delivers to every reliable neighbor at the ack deadline
    /// and acks at the given delay, with no unreliable deliveries.
    pub fn uniform(ack_delay: Duration) -> BcastPlan {
        BcastPlan {
            ack_delay,
            reliable_default: None,
            reliable: Vec::new(),
            unreliable: Vec::new(),
        }
    }

    /// A plan that delivers to every reliable neighbor at one uniform
    /// `delivery` delay and acks at `ack_delay`, allocation-free.
    pub fn uniform_with_delivery(ack_delay: Duration, delivery: Duration) -> BcastPlan {
        BcastPlan {
            ack_delay,
            reliable_default: Some(delivery),
            reliable: Vec::new(),
            unreliable: Vec::new(),
        }
    }
}

/// A candidate instance for a forced progress delivery.
///
/// When the progress bound is about to expire for a receiver, the runtime
/// collects the in-flight instances from `G′`-neighbors that have not yet
/// delivered to that receiver and asks the policy to pick one. This is the
/// scheduler's chance to satisfy the progress bound with the *least useful*
/// message (e.g. a duplicate), the freedom at the heart of the paper's
/// lower bounds.
#[derive(Clone, Debug)]
pub struct ForcedCandidate {
    /// The candidate instance.
    pub instance: InstanceId,
    /// Its sender.
    pub sender: NodeId,
    /// Semantic key of its payload.
    pub key: MessageKey,
    /// When the instance's broadcast began.
    pub start: Time,
    /// `true` if the receiver has already received *some* message with the
    /// same key (so this delivery would be semantically useless to it).
    pub duplicate_for_receiver: bool,
    /// `true` if the sender is a reliable (`G`) neighbor of the receiver.
    pub reliable_link: bool,
}

/// A message scheduler: the adversary resolving the MAC layer's
/// non-determinism.
///
/// Implementations may keep internal randomness or state; the runtime calls
/// them deterministically, so a deterministic policy yields a fully
/// reproducible execution.
pub trait Policy {
    /// Plans deliveries and acknowledgment for a new broadcast.
    fn plan_bcast(&mut self, ctx: &PolicyCtx<'_>, info: &BcastInfo) -> BcastPlan;

    /// Picks which candidate to deliver when the runtime must force a
    /// delivery to `receiver` to uphold the progress bound. Returns an
    /// index into `candidates` (non-empty; out-of-range values are treated
    /// as 0).
    ///
    /// The default takes the oldest candidate.
    fn pick_forced(
        &mut self,
        ctx: &PolicyCtx<'_>,
        receiver: NodeId,
        candidates: &[ForcedCandidate],
    ) -> usize {
        let _ = (ctx, receiver);
        debug_assert!(!candidates.is_empty());
        0
    }
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn plan_bcast(&mut self, ctx: &PolicyCtx<'_>, info: &BcastInfo) -> BcastPlan {
        (**self).plan_bcast(ctx, info)
    }

    fn pick_forced(
        &mut self,
        ctx: &PolicyCtx<'_>,
        receiver: NodeId,
        candidates: &[ForcedCandidate],
    ) -> usize {
        (**self).pick_forced(ctx, receiver, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl Policy for Fixed {
        fn plan_bcast(&mut self, _ctx: &PolicyCtx<'_>, _info: &BcastInfo) -> BcastPlan {
            BcastPlan::uniform(Duration::from_ticks(5))
        }
    }

    #[test]
    fn uniform_plan_is_empty_lists() {
        let p = BcastPlan::uniform(Duration::from_ticks(9));
        assert_eq!(p.ack_delay.ticks(), 9);
        assert!(p.reliable.is_empty());
        assert!(p.unreliable.is_empty());
    }

    #[test]
    fn default_forced_pick_is_first() {
        let dual = DualGraph::reliable(amac_graph::generators::line(2).unwrap());
        let config = MacConfig::from_ticks(1, 4);
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let mut p = Fixed;
        let candidates = vec![ForcedCandidate {
            instance: InstanceId::new(0),
            sender: NodeId::new(0),
            key: MessageKey(0),
            start: Time::ZERO,
            duplicate_for_receiver: false,
            reliable_link: true,
        }];
        assert_eq!(p.pick_forced(&ctx, NodeId::new(1), &candidates), 0);
    }

    #[test]
    fn boxed_policy_delegates() {
        let dual = DualGraph::reliable(amac_graph::generators::line(2).unwrap());
        let config = MacConfig::from_ticks(1, 4);
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let mut boxed: Box<dyn Policy> = Box::new(Fixed);
        let plan = boxed.plan_bcast(
            &ctx,
            &BcastInfo {
                instance: InstanceId::new(0),
                sender: NodeId::new(0),
                key: MessageKey(1),
            },
        );
        assert_eq!(plan.ack_delay.ticks(), 5);
    }
}
