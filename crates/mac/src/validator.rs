//! Post-hoc validation of executions against the abstract MAC layer
//! guarantees (paper Section 3.2.1).
//!
//! The validator re-derives, from a recorded [`Trace`] and the topology,
//! whether the execution satisfied:
//!
//! 1. **receive correctness** — receivers are `G′`-neighbors of the sender,
//!    at most one `rcv` per (instance, receiver), all `rcv`s precede the
//!    instance's termination;
//! 2. **acknowledgment correctness** — every `G`-neighbor receives before
//!    the `ack`; at most one terminating event per instance; acks go to the
//!    sender;
//! 3. **termination** — every instance terminates (checked only for
//!    executions flagged as run to quiescence);
//! 4. **acknowledgment bound** — `ack − bcast ≤ F_ack`;
//! 5. **progress bound** — no silent window longer than `F_prog` at a node
//!    while a `G`-neighbor's instance spans it;
//!
//! plus **user well-formedness** (no overlapping broadcasts per sender).
//!
//! ## Crash conditioning
//!
//! When the trace carries a fault log (see [`FaultPlan`](crate::FaultPlan)),
//! every guarantee is conditioned on the liveness of the nodes involved,
//! exactly as the runtime enforces it:
//!
//! * an instance whose **sender crashed** mid-flight is exempt from
//!   termination and its progress span is capped at the crash;
//! * a **receiver crashed** at any point during an instance's lifetime is
//!   exempt from that instance's reliable-delivery obligation;
//! * progress windows only count while the receiver is **alive
//!   throughout** (an uncovered window spent crashed is not starvation);
//! * conversely, no crashed node may *act*: a `bcast`/`ack`/`abort` by — or
//!   a `rcv` to — a node strictly inside one of its crash intervals is a
//!   new violation, [`Violation::ActionWhileCrashed`].
//!
//! Every test execution in this workspace is validated; fault-injection
//! tests hand-build invalid traces and assert they are rejected.

use crate::config::MacConfig;
use crate::fault::FaultKind;
use crate::instance::InstanceId;
use crate::trace::{Trace, TraceKind};
use amac_graph::{DualGraph, NodeId};
use amac_sim::Time;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A single violation of the model guarantees found in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// An instance has more than one `bcast` entry.
    DuplicateBcast {
        /// The offending instance.
        instance: InstanceId,
    },
    /// An event references an instance with no preceding `bcast` (the cause
    /// function is undefined for it).
    MissingBcast {
        /// The offending instance.
        instance: InstanceId,
    },
    /// A receiver got a message from a node that is not its `G′`-neighbor.
    RcvToNonNeighbor {
        /// The offending instance.
        instance: InstanceId,
        /// The receiver.
        receiver: NodeId,
    },
    /// The same receiver got the same instance twice.
    DuplicateRcv {
        /// The offending instance.
        instance: InstanceId,
        /// The receiver.
        receiver: NodeId,
    },
    /// A `rcv` appears after the instance's terminating event.
    RcvAfterTermination {
        /// The offending instance.
        instance: InstanceId,
        /// The receiver.
        receiver: NodeId,
    },
    /// An instance has more than one `ack`/`abort`.
    MultipleTerminations {
        /// The offending instance.
        instance: InstanceId,
    },
    /// An `ack`/`abort` is attributed to a node other than the sender.
    TerminationByNonSender {
        /// The offending instance.
        instance: InstanceId,
        /// The node recorded on the terminating event.
        node: NodeId,
    },
    /// An acked instance never delivered to some reliable neighbor.
    MissingReliableDelivery {
        /// The offending instance.
        instance: InstanceId,
        /// The `G`-neighbor that never received it.
        receiver: NodeId,
    },
    /// The ack came later than `F_ack` after the broadcast.
    AckBoundExceeded {
        /// The offending instance.
        instance: InstanceId,
        /// Observed delay in ticks.
        delay: u64,
    },
    /// An instance never terminated in a quiescent execution.
    MissingTermination {
        /// The offending instance.
        instance: InstanceId,
    },
    /// A window longer than `F_prog` was spanned by a `G`-neighbor's
    /// instance while the receiver had no covering receive (no receive, at
    /// any time up to the window's end, from an instance still contending
    /// at the window's start).
    ProgressViolation {
        /// The starving receiver.
        receiver: NodeId,
        /// The spanning instance from a `G`-neighbor.
        instance: InstanceId,
        /// Start of the uncovered window.
        window_start: Time,
    },
    /// A crashed node acted (broadcast, acknowledged, aborted) or received
    /// a message strictly inside one of its crash intervals.
    ActionWhileCrashed {
        /// The instance the offending event belongs to.
        instance: InstanceId,
        /// The crashed node recorded on the event.
        node: NodeId,
        /// The offending event's kind.
        kind: TraceKind,
    },
    /// A sender started a new broadcast before terminating the previous one
    /// (user well-formedness).
    OverlappingBcasts {
        /// The offending sender.
        sender: NodeId,
        /// The earlier, still-in-flight instance.
        first: InstanceId,
        /// The prematurely started instance.
        second: InstanceId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateBcast { instance } => {
                write!(f, "instance {instance} broadcast more than once")
            }
            Violation::MissingBcast { instance } => {
                write!(f, "instance {instance} has events but no bcast")
            }
            Violation::RcvToNonNeighbor { instance, receiver } => {
                write!(f, "instance {instance} delivered to non-G'-neighbor {receiver}")
            }
            Violation::DuplicateRcv { instance, receiver } => {
                write!(f, "instance {instance} delivered twice to {receiver}")
            }
            Violation::RcvAfterTermination { instance, receiver } => {
                write!(f, "instance {instance} delivered to {receiver} after termination")
            }
            Violation::MultipleTerminations { instance } => {
                write!(f, "instance {instance} terminated more than once")
            }
            Violation::TerminationByNonSender { instance, node } => {
                write!(f, "instance {instance} terminated by non-sender {node}")
            }
            Violation::MissingReliableDelivery { instance, receiver } => write!(
                f,
                "instance {instance} acked without delivering to reliable neighbor {receiver}"
            ),
            Violation::AckBoundExceeded { instance, delay } => {
                write!(f, "instance {instance} acked after {delay} ticks, beyond F_ack")
            }
            Violation::MissingTermination { instance } => {
                write!(f, "instance {instance} never terminated in a quiescent execution")
            }
            Violation::ProgressViolation {
                receiver,
                instance,
                window_start,
            } => write!(
                f,
                "receiver {receiver} had no covering receive for the window starting at t={window_start} while instance {instance} of a G-neighbor spanned it (progress bound)"
            ),
            Violation::ActionWhileCrashed { instance, node, kind } => write!(
                f,
                "crashed node {node} appears on a {kind:?} event of instance {instance}"
            ),
            Violation::OverlappingBcasts { sender, first, second } => write!(
                f,
                "sender {sender} started {second} before terminating {first} (user well-formedness)"
            ),
        }
    }
}

impl Error for Violation {}

/// The result of validating one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ValidationReport {
    violations: Vec<Violation>,
}

impl ValidationReport {
    /// Builds a report from an already-collected violation list (used by
    /// the streaming [`OnlineValidator`](crate::OnlineValidator)).
    pub(crate) fn from_violations(violations: Vec<Violation>) -> ValidationReport {
        ValidationReport { violations }
    }

    /// `true` when no violations were found.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations found.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// One-line verdict for table footers and trace-dump headers:
    /// `"ok"`, or the violation count.
    pub fn summary(&self) -> String {
        if self.is_ok() {
            "ok".to_string()
        } else {
            format!("{} violation(s)", self.violations.len())
        }
    }

    /// Converts into a `Result`, yielding the first violation on failure.
    pub fn into_result(mut self) -> Result<(), Violation> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(self.violations.remove(0))
        }
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(f, "execution conforms to the abstract MAC layer model");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

struct InstanceView {
    sender: NodeId,
    bcast_idx: usize,
    bcast_time: Time,
    rcvs: Vec<(usize, Time, NodeId)>,
    term: Option<(usize, Time, TraceKind)>,
}

/// Per-node crash intervals `[crash, recover)` derived from the trace's
/// fault log. Boundary instants are permissive: an event at exactly the
/// crash or recovery tick counts as live (the runtime processes same-tick
/// events in order, so a node may legitimately act in the tick its crash
/// lands).
struct CrashIntervals {
    by_node: BTreeMap<NodeId, Vec<(Time, Time)>>,
}

impl CrashIntervals {
    fn from_trace(trace: &Trace) -> CrashIntervals {
        let mut by_node: BTreeMap<NodeId, Vec<(Time, Time)>> = BTreeMap::new();
        for rec in trace.faults() {
            match rec.kind {
                FaultKind::Crash => by_node
                    .entry(rec.node)
                    .or_default()
                    .push((rec.time, Time::MAX)),
                FaultKind::Recover => {
                    if let Some(last) = by_node.get_mut(&rec.node).and_then(|v| v.last_mut()) {
                        if last.1 == Time::MAX {
                            last.1 = rec.time;
                        }
                    }
                }
            }
        }
        CrashIntervals { by_node }
    }

    fn is_empty(&self) -> bool {
        self.by_node.is_empty()
    }

    /// `true` when `node` is crashed strictly inside an interval at `t`.
    fn crashed_at(&self, node: NodeId, t: Time) -> bool {
        self.by_node
            .get(&node)
            .is_some_and(|iv| iv.iter().any(|&(c, r)| c < t && t < r))
    }

    /// `true` when any crash interval of `node` touches `[lo, hi]`. The
    /// interval is `[crash, recover)`: the node is alive again *at* the
    /// recovery instant, so an interval ending exactly at `lo` does not
    /// overlap — windows starting at a recovery count in full.
    fn overlaps(&self, node: NodeId, lo: Time, hi: Time) -> bool {
        self.by_node
            .get(&node)
            .is_some_and(|iv| iv.iter().any(|&(c, r)| c <= hi && r > lo))
    }

    /// The first crash of `node` at or after `t`, if any.
    fn first_crash_at_or_after(&self, node: NodeId, t: Time) -> Option<Time> {
        self.by_node
            .get(&node)?
            .iter()
            .map(|&(c, _)| c)
            .filter(|&c| c >= t)
            .min()
    }

    /// Finite recovery instants of `node`, in log order.
    fn recoveries(&self, node: NodeId) -> Vec<Time> {
        self.by_node
            .get(&node)
            .map(|iv| {
                iv.iter()
                    .map(|&(_, r)| r)
                    .filter(|&r| r < Time::MAX)
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Validates a recorded execution against the model guarantees.
///
/// Set `quiescent` to `true` when the execution ran to idleness, enabling
/// the termination check (3); truncated executions skip it and only check
/// progress windows that closed before the trace horizon.
///
/// # Examples
///
/// ```
/// use amac_mac::{validate, MacConfig, trace::Trace};
/// use amac_graph::{generators, DualGraph};
///
/// let dual = DualGraph::reliable(generators::line(3)?);
/// let report = validate(&Trace::new(), &dual, &MacConfig::from_ticks(1, 8), true);
/// assert!(report.is_ok(), "an empty execution is trivially valid");
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
pub fn validate(
    trace: &Trace,
    dual: &DualGraph,
    config: &MacConfig,
    quiescent: bool,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    let crashes = CrashIntervals::from_trace(trace);
    // Ordered maps keep the violation report order independent of hasher
    // state (same determinism policy as the runtime).
    let mut views: BTreeMap<InstanceId, InstanceView> = BTreeMap::new();
    let mut orphaned: Vec<InstanceId> = Vec::new();

    for (idx, e) in trace.entries().iter().enumerate() {
        match e.kind {
            TraceKind::Bcast => {
                if views
                    .insert(
                        e.instance,
                        InstanceView {
                            sender: e.node,
                            bcast_idx: idx,
                            bcast_time: e.time,
                            rcvs: Vec::new(),
                            term: None,
                        },
                    )
                    .is_some()
                {
                    report.violations.push(Violation::DuplicateBcast {
                        instance: e.instance,
                    });
                }
            }
            TraceKind::Rcv => match views.get_mut(&e.instance) {
                Some(v) => v.rcvs.push((idx, e.time, e.node)),
                None => orphaned.push(e.instance),
            },
            TraceKind::Ack | TraceKind::Abort => match views.get_mut(&e.instance) {
                Some(v) => {
                    if v.term.is_some() {
                        report.violations.push(Violation::MultipleTerminations {
                            instance: e.instance,
                        });
                    } else {
                        if e.node != v.sender {
                            report.violations.push(Violation::TerminationByNonSender {
                                instance: e.instance,
                                node: e.node,
                            });
                        }
                        v.term = Some((idx, e.time, e.kind));
                    }
                }
                None => orphaned.push(e.instance),
            },
        }
    }
    orphaned.sort();
    orphaned.dedup();
    for instance in orphaned {
        report.violations.push(Violation::MissingBcast { instance });
    }

    // No crashed node may act: every event attributed to a node strictly
    // inside one of its crash intervals is a violation.
    if !crashes.is_empty() {
        for e in trace.entries() {
            if crashes.crashed_at(e.node, e.time) {
                report.violations.push(Violation::ActionWhileCrashed {
                    instance: e.instance,
                    node: e.node,
                    kind: e.kind,
                });
            }
        }
    }

    let horizon = trace.entries().last().map(|e| e.time).unwrap_or(Time::ZERO);

    // Per-instance checks (receive/ack correctness, bounds, termination).
    let mut ids: Vec<InstanceId> = views.keys().copied().collect();
    ids.sort();
    for id in &ids {
        let v = &views[id];
        let mut seen: Vec<NodeId> = Vec::new();
        for &(idx, _t, receiver) in &v.rcvs {
            if !dual.g_prime().has_edge(v.sender, receiver) {
                report.violations.push(Violation::RcvToNonNeighbor {
                    instance: *id,
                    receiver,
                });
            }
            if seen.contains(&receiver) {
                report.violations.push(Violation::DuplicateRcv {
                    instance: *id,
                    receiver,
                });
            }
            seen.push(receiver);
            if let Some((term_idx, _, _)) = v.term {
                if idx > term_idx {
                    report.violations.push(Violation::RcvAfterTermination {
                        instance: *id,
                        receiver,
                    });
                }
            }
        }
        match v.term {
            Some((term_idx, term_time, TraceKind::Ack)) => {
                for &g_neighbor in dual.reliable_neighbors(v.sender) {
                    let delivered_before_ack = v
                        .rcvs
                        .iter()
                        .any(|&(idx, _, r)| r == g_neighbor && idx < term_idx);
                    // A receiver crashed at any point of the instance's
                    // lifetime is exempt: its delivery may have been
                    // silenced by the crash.
                    let crash_exempt = crashes.overlaps(g_neighbor, v.bcast_time, term_time);
                    if !delivered_before_ack && !crash_exempt {
                        report.violations.push(Violation::MissingReliableDelivery {
                            instance: *id,
                            receiver: g_neighbor,
                        });
                    }
                }
                let delay = term_time.saturating_since(v.bcast_time).ticks();
                if delay > config.f_ack().ticks() {
                    report.violations.push(Violation::AckBoundExceeded {
                        instance: *id,
                        delay,
                    });
                }
            }
            Some(_) => {} // aborts exempt from ack correctness and bound
            None => {
                // Termination is conditioned on the sender staying alive
                // *through the ack window*: a crash within `F_ack` of the
                // broadcast silences the instance (no ack follows). A
                // crash only after the ack was already overdue exempts
                // nothing — a live sender must have acked by then.
                let crashed_mid_flight = crashes
                    .first_crash_at_or_after(v.sender, v.bcast_time)
                    .is_some_and(|c| c <= v.bcast_time + config.f_ack());
                if quiescent && !crashed_mid_flight {
                    report
                        .violations
                        .push(Violation::MissingTermination { instance: *id });
                }
            }
        }
    }

    // Progress bound with coverage semantics. A window `[s, s + F + 1]`
    // (`F = F_prog`, strictly longer than `F_prog`) spanned by a connected
    // instance is *covered* for receiver `j` iff `j` has some receive at
    // `t_r ≤ s + F + 1` whose instance terminated no earlier than `s`
    // (i.e. was still contending at the window start). For each receiver
    // we collect `(t_r, T_term)` pairs sorted by `t_r` with a running
    // prefix-max of `T_term`; `covered(s)` is then
    // `max{T : t_r ≤ s + F + 1} ≥ s`. It suffices to test the window
    // starts `s = b` and `s = T_i + 1` for each receive (coverage only
    // switches off just past a termination time).
    // An instance stops spanning (and stops protecting) at its sender's
    // first crash after the broadcast: the runtime silences it there.
    let crash_cap = |v: &InstanceView| -> Time {
        crashes
            .first_crash_at_or_after(v.sender, v.bcast_time)
            .unwrap_or(Time::MAX)
    };
    let mut rcv_cover: Vec<Vec<(Time, Time)>> = vec![Vec::new(); dual.len()];
    for v in views.values() {
        let term_time = v
            .term
            .map(|(_, t, _)| t)
            .unwrap_or(Time::MAX)
            .min(crash_cap(v));
        for &(_, t, r) in &v.rcvs {
            rcv_cover[r.index()].push((t, term_time));
        }
    }
    let mut prefix_max: Vec<Vec<Time>> = Vec::with_capacity(dual.len());
    for cover in &mut rcv_cover {
        cover.sort();
        let mut acc = Time::ZERO;
        let maxes = cover
            .iter()
            .map(|&(_, term)| {
                acc = acc.max(term);
                acc
            })
            .collect();
        prefix_max.push(maxes);
    }
    let window = config.f_prog().ticks() + 1;
    for id in &ids {
        let v = &views[id];
        let span_end = match v.term {
            Some((_, t, _)) => t,
            None => horizon,
        }
        .min(crash_cap(v));
        // A violating window must fit strictly inside the span: the
        // terminating event at `span_end` must come after the window's
        // end, so the latest admissible window start is
        // `span_end - window - 1` (lenient by one tick on the boundary).
        if span_end.ticks() < v.bcast_time.ticks() + window + 1 {
            continue; // no full window fits in the span
        }
        let lo = v.bcast_time;
        let hi = Time::from_ticks(span_end.ticks() - window - 1);
        for &j in dual.reliable_neighbors(v.sender) {
            let cover = &rcv_cover[j.index()];
            let maxes = &prefix_max[j.index()];
            let covered = |s: Time| -> bool {
                let cutoff = Time::from_ticks(s.ticks() + window);
                let idx = cover.partition_point(|&(t_r, _)| t_r <= cutoff);
                idx > 0 && maxes[idx - 1] >= s
            };
            let mut candidates: Vec<Time> = vec![lo];
            for &(_, term) in cover {
                if term >= lo && term < hi {
                    candidates.push(term + amac_sim::Duration::TICK);
                }
            }
            // Coverage also switches at the receiver's recoveries: the
            // first window after an outage starts at the recovery.
            for r_t in crashes.recoveries(j) {
                if r_t >= lo && r_t <= hi {
                    candidates.push(r_t);
                }
            }
            // The guarantee only binds while the receiver is alive for the
            // whole window: windows touching one of j's crash intervals
            // are skipped (starvation spent crashed is not starvation).
            let alive_throughout =
                |s: Time| -> bool { !crashes.overlaps(j, s, Time::from_ticks(s.ticks() + window)) };
            if let Some(&s) = candidates
                .iter()
                .find(|&&s| s >= lo && s <= hi && alive_throughout(s) && !covered(s))
            {
                report.violations.push(Violation::ProgressViolation {
                    receiver: j,
                    instance: *id,
                    window_start: s,
                });
            }
        }
    }

    // User well-formedness: per-sender broadcasts must not overlap.
    let mut by_sender: BTreeMap<NodeId, Vec<InstanceId>> = BTreeMap::new();
    for id in &ids {
        by_sender.entry(views[id].sender).or_default().push(*id);
    }
    for (sender, mut insts) in by_sender {
        insts.sort_by_key(|id| views[id].bcast_idx);
        for pair in insts.windows(2) {
            let first = &views[&pair[0]];
            let second = &views[&pair[1]];
            let first_closed = match first.term {
                Some((term_idx, _, _)) => term_idx < second.bcast_idx,
                None => false,
            };
            // A crash between the two broadcasts silenced the first
            // instance, so a post-recovery broadcast is well-formed.
            let crash_closed = crashes
                .first_crash_at_or_after(sender, first.bcast_time)
                .is_some_and(|c| c <= second.bcast_time);
            if !first_closed && !crash_closed {
                report.violations.push(Violation::OverlappingBcasts {
                    sender,
                    first: pair[0],
                    second: pair[1],
                });
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKey;
    use amac_graph::generators;

    fn line_dual(n: usize) -> DualGraph {
        DualGraph::reliable(generators::line(n).unwrap())
    }

    fn t(ticks: u64) -> Time {
        Time::from_ticks(ticks)
    }

    fn key() -> MessageKey {
        MessageKey(1)
    }

    /// A minimal valid execution: node 0 broadcasts on a 2-node line,
    /// node 1 receives, ack follows.
    fn valid_trace() -> Trace {
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(1),
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Rcv,
            key(),
        );
        tr.push(
            t(2),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Ack,
            key(),
        );
        tr
    }

    #[test]
    fn accepts_valid_trace() {
        let report = validate(
            &valid_trace(),
            &line_dual(2),
            &MacConfig::from_ticks(2, 8),
            true,
        );
        assert!(report.is_ok(), "{report}");
        assert_eq!(report.summary(), "ok");
    }

    #[test]
    fn rejects_missing_reliable_delivery() {
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(2),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Ack,
            key(),
        );
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        assert!(matches!(
            report.violations()[0],
            Violation::MissingReliableDelivery { .. }
        ));
    }

    #[test]
    fn rejects_ack_bound_excess() {
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(1),
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Rcv,
            key(),
        );
        tr.push(
            t(100),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Ack,
            key(),
        );
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::AckBoundExceeded { delay: 100, .. })));
    }

    #[test]
    fn rejects_rcv_to_non_neighbor() {
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(1),
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Rcv,
            key(),
        );
        tr.push(
            t(1),
            InstanceId::new(0),
            NodeId::new(2),
            TraceKind::Rcv,
            key(),
        );
        tr.push(
            t(2),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Ack,
            key(),
        );
        let report = validate(&tr, &line_dual(3), &MacConfig::from_ticks(2, 8), true);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::RcvToNonNeighbor { .. })));
    }

    #[test]
    fn rejects_duplicate_rcv() {
        let mut tr = valid_trace();
        // Re-deliver to node 1 after the ack — both duplicate and late.
        tr.push(
            t(3),
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Rcv,
            key(),
        );
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::DuplicateRcv { .. })));
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::RcvAfterTermination { .. })));
    }

    #[test]
    fn rejects_missing_termination_when_quiescent() {
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        assert!(matches!(
            report.violations()[0],
            Violation::MissingTermination { .. }
        ));
        // Truncated executions skip the check.
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), false);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn rejects_progress_starvation() {
        // Node 0 broadcasts from t=0 to t=50 (within F_ack = 64) but node 1
        // receives only at t=50: a silent window of 50 > F_prog = 4.
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(50),
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Rcv,
            key(),
        );
        tr.push(
            t(50),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Ack,
            key(),
        );
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(4, 64), true);
        assert!(report.violations().iter().any(
            |v| matches!(v, Violation::ProgressViolation { window_start, .. }
                if window_start.ticks() == 0)
        ));
    }

    #[test]
    fn progress_covered_by_earlier_rcv_from_live_instance() {
        // Node 0's instance spans [0, 60]; node 1 receives it ONCE at t=3.
        // Because the delivering instance stays in flight until t=60, that
        // single receive covers every window starting before t=60: valid.
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(3),
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Rcv,
            key(),
        );
        tr.push(
            t(60),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Ack,
            key(),
        );
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(4, 64), true);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn progress_protection_ends_at_protector_termination() {
        // Instance A (node 2 -> node 1) delivers at t=2 and terminates at
        // t=4. Instance B (node 0 -> node 1) spans [0, 40] but only
        // delivers at t=40. Windows starting after t=4 are uncovered while
        // B spans them: violation.
        let dual = line_dual(3);
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(0),
            InstanceId::new(1),
            NodeId::new(2),
            TraceKind::Bcast,
            MessageKey(2),
        );
        tr.push(
            t(2),
            InstanceId::new(1),
            NodeId::new(1),
            TraceKind::Rcv,
            MessageKey(2),
        );
        tr.push(
            t(4),
            InstanceId::new(1),
            NodeId::new(2),
            TraceKind::Ack,
            MessageKey(2),
        );
        tr.push(
            t(40),
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Rcv,
            key(),
        );
        tr.push(
            t(40),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Ack,
            key(),
        );
        let report = validate(&tr, &dual, &MacConfig::from_ticks(4, 64), true);
        assert!(report.violations().iter().any(
            |v| matches!(v, Violation::ProgressViolation { window_start, .. }
                if window_start.ticks() == 5)
        ));
    }

    #[test]
    fn progress_satisfied_by_other_instances() {
        // Node 0's instance spans [0, 60], but node 1 keeps receiving other
        // messages (from node 2) every 4 ticks, so progress holds.
        let dual = line_dual(3); // 1 is adjacent to both 0 and 2
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        let mut inst = 1;
        let mut time = 0;
        while time < 60 {
            time += 4;
            let id = InstanceId::new(inst);
            tr.push(
                t(time),
                id,
                NodeId::new(2),
                TraceKind::Bcast,
                MessageKey(inst),
            );
            tr.push(
                t(time),
                id,
                NodeId::new(1),
                TraceKind::Rcv,
                MessageKey(inst),
            );
            tr.push(
                t(time),
                id,
                NodeId::new(2),
                TraceKind::Ack,
                MessageKey(inst),
            );
            inst += 1;
        }
        tr.push(
            t(60),
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Rcv,
            key(),
        );
        tr.push(
            t(60),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Ack,
            key(),
        );
        let report = validate(&tr, &dual, &MacConfig::from_ticks(4, 64), true);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn rejects_overlapping_bcasts() {
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(1),
            InstanceId::new(1),
            NodeId::new(0),
            TraceKind::Bcast,
            MessageKey(2),
        );
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), false);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::OverlappingBcasts { .. })));
    }

    #[test]
    fn rejects_orphaned_events() {
        let mut tr = Trace::new();
        tr.push(
            t(1),
            InstanceId::new(9),
            NodeId::new(1),
            TraceKind::Rcv,
            key(),
        );
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), false);
        assert!(matches!(
            report.violations()[0],
            Violation::MissingBcast { .. }
        ));
    }

    #[test]
    fn rejects_termination_by_non_sender() {
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(1),
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Rcv,
            key(),
        );
        tr.push(
            t(2),
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Ack,
            key(),
        );
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::TerminationByNonSender { .. })));
    }

    #[test]
    fn abort_exempts_ack_checks() {
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(3),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Abort,
            key(),
        );
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn late_crash_does_not_excuse_an_overdue_ack() {
        // The sender crashes only at t=100, long after its F_ack = 8 ack
        // window closed: no runtime can produce this trace (a live sender
        // must have acked by t=8), so the exemption must not apply.
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push_fault(t(100), NodeId::new(0), crate::FaultKind::Crash);
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        assert!(
            report
                .violations()
                .iter()
                .any(|v| matches!(v, Violation::MissingTermination { .. })),
            "{report}"
        );
    }

    #[test]
    fn recovered_receiver_can_starve_again() {
        // Receiver 1 is crashed during [2, 10) but alive from t=10 on; a
        // G-neighbor instance spans [0, 100] and only delivers at t=100.
        // The window starting exactly at the recovery is uncovered and
        // fully alive: a progress violation — the outage excuses nothing
        // past its end.
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(100),
            InstanceId::new(0),
            NodeId::new(1),
            TraceKind::Rcv,
            key(),
        );
        tr.push(
            t(100),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Ack,
            key(),
        );
        tr.push_fault(t(2), NodeId::new(1), crate::FaultKind::Crash);
        tr.push_fault(t(10), NodeId::new(1), crate::FaultKind::Recover);
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(4, 200), true);
        assert!(
            report.violations().iter().any(
                |v| matches!(v, Violation::ProgressViolation { window_start, .. }
                    if window_start.ticks() == 10)
            ),
            "{report}"
        );
    }

    #[test]
    fn crashed_sender_exempts_termination_and_progress() {
        // inst0: node 0 broadcasts at t=0 and is silenced by a crash at
        // t=2; it never terminates and never delivers. inst1 extends the
        // horizon past every window inst0 could have spanned.
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(10),
            InstanceId::new(1),
            NodeId::new(1),
            TraceKind::Bcast,
            MessageKey(2),
        );
        tr.push(
            t(12),
            InstanceId::new(1),
            NodeId::new(0),
            TraceKind::Rcv,
            MessageKey(2),
        );
        tr.push(
            t(13),
            InstanceId::new(1),
            NodeId::new(1),
            TraceKind::Ack,
            MessageKey(2),
        );
        // Without the fault log this trace is invalid (inst0 never
        // terminated in a quiescent run).
        let bare = validate(&tr, &line_dual(2), &MacConfig::from_ticks(4, 64), true);
        assert!(matches!(
            bare.violations()[0],
            Violation::MissingTermination { .. }
        ));
        // With the crash recorded (and a recovery before node 0 receives
        // again), every guarantee is conditioned on liveness: valid.
        tr.push_fault(t(2), NodeId::new(0), crate::FaultKind::Crash);
        tr.push_fault(t(11), NodeId::new(0), crate::FaultKind::Recover);
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(4, 64), true);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn rejects_actions_by_crashed_nodes() {
        let mut tr = valid_trace();
        tr.push_fault(t(0), NodeId::new(1), crate::FaultKind::Crash);
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        assert!(
            report.violations().iter().any(|v| matches!(
                v,
                Violation::ActionWhileCrashed {
                    node,
                    kind: TraceKind::Rcv,
                    ..
                } if node.index() == 1
            )),
            "{report}"
        );
    }

    #[test]
    fn crashed_receiver_exempts_reliable_delivery() {
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(2),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Ack,
            key(),
        );
        tr.push_fault(t(1), NodeId::new(1), crate::FaultKind::Crash);
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn post_recovery_rebroadcast_is_well_formed() {
        // Instance 0 is silenced by a crash; after recovery the sender
        // starts instance 1 — not an overlapping-broadcast violation.
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        tr.push(
            t(3),
            InstanceId::new(1),
            NodeId::new(0),
            TraceKind::Bcast,
            MessageKey(2),
        );
        tr.push(
            t(4),
            InstanceId::new(1),
            NodeId::new(1),
            TraceKind::Rcv,
            MessageKey(2),
        );
        tr.push(
            t(5),
            InstanceId::new(1),
            NodeId::new(0),
            TraceKind::Ack,
            MessageKey(2),
        );
        tr.push_fault(t(1), NodeId::new(0), crate::FaultKind::Crash);
        tr.push_fault(t(2), NodeId::new(0), crate::FaultKind::Recover);
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        assert!(report.is_ok(), "{report}");
        // Without the fault log the same trace is rejected twice over
        // (overlap + missing termination of instance 0).
        let mut bare = Trace::new();
        for e in tr.entries() {
            bare.push(e.time, e.instance, e.node, e.kind, e.key);
        }
        let report = validate(&bare, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::OverlappingBcasts { .. })));
    }

    #[test]
    fn report_display_lists_violations() {
        let mut tr = Trace::new();
        tr.push(
            t(0),
            InstanceId::new(0),
            NodeId::new(0),
            TraceKind::Bcast,
            key(),
        );
        let report = validate(&tr, &line_dual(2), &MacConfig::from_ticks(2, 8), true);
        let s = report.to_string();
        assert!(s.contains("violation"));
        assert!(report.clone().into_result().is_err());
    }
}
