//! # amac-mac — the abstract MAC layer
//!
//! An executable model of the **abstract MAC layer** from *"Multi-Message
//! Broadcast with Abstract MAC Layers and Unreliable Links"* (Ghaffari,
//! Kantor, Lynch, Newport, PODC 2014), in both its **standard** and
//! **enhanced** variants.
//!
//! The model gives each node an *acknowledged local broadcast* primitive
//! over a dual graph `(G, G′)`: a broadcast is always delivered to reliable
//! (`G`) neighbors and possibly to some unreliable (`G′ \ G`) neighbors,
//! then acknowledged. Two constants bound the non-determinism: `F_ack`
//! (time to complete and acknowledge a broadcast) and `F_prog` (time within
//! which a node hears *something* while a `G`-neighbor broadcasts), with
//! `F_prog ≪ F_ack` in practice.
//!
//! All remaining freedom — delivery timing, which unreliable links fire,
//! which message satisfies the progress bound — belongs to an adversarial
//! *message scheduler*, modelled by the [`Policy`] trait. The [`Runtime`]
//! clamps every policy into validity and *enforces* the progress bound, so
//! every execution this crate produces conforms to the model.
//!
//! Execution and observation are decoupled: the runtime streams every
//! MAC-level event to pluggable [`Observer`]s. Attach an
//! [`OnlineValidator`] to re-check conformance *while the execution runs*
//! in memory proportional to the in-flight state, or a [`TraceObserver`]
//! to record a full [`trace::Trace`] for the post-hoc [`validate`]
//! function and hand inspection.
//!
//! ## Layer map
//!
//! | concept in the paper | type here |
//! |---|---|
//! | node automaton (Timed I/O Automaton) | [`Automaton`] + [`Ctx`] |
//! | `bcast`/`ack`/`abort`/`rcv` interface | [`Ctx::bcast`], [`Automaton::on_ack`], [`Ctx::abort`], [`Automaton::on_receive`] |
//! | message scheduler adversary | [`Policy`] (+ [`policies`]) |
//! | `F_ack`, `F_prog`, model variant | [`MacConfig`], [`ModelVariant`] |
//! | execution (admissible timed execution) | [`Runtime`] + [`Observer`] stream |
//! | guarantees 1–5 of Section 3.2.1 | [`Runtime`] enforcement + [`OnlineValidator`] / [`validate`] |
//! | node-crash faults (the NR18/ZT24 follow-up model) | [`FaultPlan`] + [`Runtime::with_faults`] |
//!
//! ## Example: flooding a token under a worst-case scheduler
//!
//! ```
//! use amac_graph::{generators, DualGraph, NodeId};
//! use amac_mac::{
//!     policies::LazyPolicy, Automaton, Ctx, MacConfig, MacMessage, MessageKey,
//!     OnlineValidator, Runtime,
//! };
//!
//! #[derive(Clone, Debug)]
//! struct Token;
//! impl MacMessage for Token {
//!     fn key(&self) -> MessageKey { MessageKey(0) }
//! }
//!
//! struct Hop { seen: bool }
//! impl Automaton for Hop {
//!     type Msg = Token;
//!     type Env = ();
//!     type Out = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Token, ()>) {
//!         if ctx.id() == NodeId::new(0) {
//!             self.seen = true;
//!             ctx.bcast(Token);
//!         }
//!     }
//!     fn on_receive(&mut self, msg: &Token, ctx: &mut Ctx<'_, Token, ()>) {
//!         if !self.seen {
//!             self.seen = true;
//!             ctx.bcast(msg.clone());
//!         }
//!     }
//!     fn on_ack(&mut self, _: &Token, _: &mut Ctx<'_, Token, ()>) {}
//! }
//!
//! let dual = DualGraph::reliable(generators::line(8)?);
//! let cfg = MacConfig::from_ticks(2, 40);
//! let nodes = (0..8).map(|_| Hop { seen: false }).collect();
//! let mut rt = Runtime::new(dual.clone(), cfg, nodes, LazyPolicy::new());
//! let validator = rt.attach(OnlineValidator::new(dual, cfg));
//! rt.run();
//! // Even under the lazy scheduler the progress bound drives the token
//! // down the line at F_prog per hop, and the execution is model-valid —
//! // checked while it ran, with no retained trace:
//! assert!(rt.detach(validator).into_report(true).is_ok());
//! # Ok::<(), amac_graph::GraphError>(())
//! ```

pub mod choice;
mod config;
mod fault;
mod instance;
mod message;
mod node;
pub mod observer;
pub mod online;
pub mod policies;
mod policy;
mod runtime;
mod small_set;
pub mod trace;
mod validator;

pub use choice::{ChoicePoint, ChoicePolicy, ChoiceSource, RngSource};
pub use config::{MacConfig, ModelVariant};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use instance::InstanceId;
pub use message::{MacMessage, MessageKey};
pub use node::{Automaton, Ctx, TimerId};
pub use observer::{CounterObserver, Observer, ObserverHandle, TraceObserver};
pub use online::{OnlineStats, OnlineValidator};
pub use policy::{BcastInfo, BcastPlan, ForcedCandidate, Policy, PolicyCtx};
pub use runtime::{OutputRecord, RunOutcome, Runtime};
pub use validator::{validate, ValidationReport, Violation};
