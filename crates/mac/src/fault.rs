//! Node-crash fault injection: the schedule of crashes (and optional
//! recoveries) applied to one execution.
//!
//! The abstract MAC layer papers that build *services* on the layer —
//! Newport & Robinson's fault-tolerant consensus (2018), Zhang & Tseng's
//! fault-tolerance study (2024) — assume nodes may **crash**: a crashed
//! node stops broadcasting, acknowledging, and receiving, possibly leaving
//! a broadcast half-delivered (some neighbors got it, some never will).
//! That partial delivery is the whole difficulty of consensus on this
//! layer, so the simulator must be able to produce it.
//!
//! A [`FaultPlan`] is a deterministic schedule of [`FaultEvent`]s handed to
//! [`Runtime::with_faults`](crate::Runtime::with_faults). Crashes can be
//! placed explicitly ([`crash_at`](FaultPlan::crash_at), the *scheduled*
//! adversary) or sampled from a seeded stream
//! ([`random_crashes`](FaultPlan::random_crashes), the *policy-driven*
//! adversary used by the crash-fraction sweeps). Optional
//! [`recover_at`](FaultPlan::recover_at) events model crash-recovery:
//! the node's automaton state survives the outage and its
//! [`on_recover`](crate::Automaton::on_recover) callback runs when it
//! comes back.
//!
//! Every applied fault is recorded in the execution [`Trace`](crate::trace::Trace)
//! as a [`FaultRecord`](crate::trace::FaultRecord), and
//! [`validate`](crate::validate) conditions the five model guarantees on
//! the liveness of the nodes involved.
//!
//! # Examples
//!
//! ```
//! use amac_mac::{FaultPlan, FaultKind};
//! use amac_graph::NodeId;
//! use amac_sim::{SimRng, Time};
//!
//! // Scheduled: node 3 crashes at t=10 and comes back at t=50.
//! let plan = FaultPlan::new()
//!     .crash_at(NodeId::new(3), Time::from_ticks(10))
//!     .recover_at(NodeId::new(3), Time::from_ticks(50));
//! assert_eq!(plan.len(), 2);
//!
//! // Policy-driven: crash 2 of 10 nodes at seeded-uniform times in [0, 100).
//! let mut rng = SimRng::seed(7);
//! let random = FaultPlan::random_crashes(10, 2, Time::from_ticks(100), &mut rng);
//! assert_eq!(random.events().iter().filter(|e| e.kind == FaultKind::Crash).count(), 2);
//! ```

use amac_graph::NodeId;
use amac_sim::{SimRng, Time};
use std::fmt;

/// What happens to a node at a fault event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The node crashes: it stops broadcasting, acknowledging, and
    /// receiving; its in-flight broadcast (if any) is silenced, leaving
    /// any deliveries that already happened standing.
    Crash,
    /// The node recovers from a crash with its automaton state intact
    /// (crash-recovery model); a no-op for a node that is not crashed.
    Recover,
}

impl FaultKind {
    /// Stable single-byte wire code of this kind, used as the record tag of
    /// the `amac-store` on-disk trace format (`docs/TRACE_FORMAT.md`).
    /// Codes 0–3 belong to [`TraceKind`](crate::trace::TraceKind); fault
    /// kinds continue the sequence. Part of the persisted format: never
    /// renumber.
    pub const fn code(self) -> u8 {
        match self {
            FaultKind::Crash => 4,
            FaultKind::Recover => 5,
        }
    }

    /// Inverse of [`code`](FaultKind::code); `None` for an unassigned code.
    pub const fn from_code(code: u8) -> Option<FaultKind> {
        match code {
            4 => Some(FaultKind::Crash),
            5 => Some(FaultKind::Recover),
            _ => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Crash => write!(f, "crash"),
            FaultKind::Recover => write!(f, "recover"),
        }
    }
}

/// One scheduled fault: a node and the instant its state flips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault is applied.
    pub at: Time,
    /// The affected node.
    pub node: NodeId,
    /// Crash or recover.
    pub kind: FaultKind,
}

/// A deterministic schedule of node crashes and recoveries for one
/// execution (see the `fault` module docs above for the fault model).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules a crash of `node` at time `at`.
    pub fn crash_at(mut self, node: NodeId, at: Time) -> FaultPlan {
        self.events.push(FaultEvent {
            at,
            node,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Schedules a recovery of `node` at time `at` (a no-op at runtime if
    /// the node is not crashed then).
    pub fn recover_at(mut self, node: NodeId, at: Time) -> FaultPlan {
        self.events.push(FaultEvent {
            at,
            node,
            kind: FaultKind::Recover,
        });
        self
    }

    /// Samples a policy-driven plan: `count` distinct nodes out of `n`
    /// crash (no recovery) at independent uniform times in `[0, window)`,
    /// drawn from `rng`. Deterministic for a given rng state, so
    /// experiment trials replay their crash schedules exactly.
    ///
    /// # Panics
    ///
    /// Panics if `count > n` or `window` is zero while `count > 0`.
    pub fn random_crashes(n: usize, count: usize, window: Time, rng: &mut SimRng) -> FaultPlan {
        assert!(count <= n, "cannot crash {count} of {n} nodes");
        if count > 0 {
            assert!(window.ticks() > 0, "crash window must be non-empty");
        }
        // Partial Fisher-Yates over the node indices: the first `count`
        // slots are a uniform sample without replacement.
        let mut ids: Vec<usize> = (0..n).collect();
        let mut plan = FaultPlan::new();
        for i in 0..count {
            let j = i + rng.below((n - i) as u64) as usize;
            ids.swap(i, j);
            let at = Time::from_ticks(rng.below(window.ticks()));
            plan = plan.crash_at(NodeId::new(ids[i]), at);
        }
        plan
    }

    /// The scheduled events in insertion order (the runtime orders them by
    /// time when it enqueues them).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The nodes with at least one scheduled crash, deduplicated and in
    /// ascending order.
    pub fn crashed_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .events
            .iter()
            .filter(|e| e.kind == FaultKind::Crash)
            .map(|e| e.node)
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan with {} event(s)", self.events.len())?;
        for e in &self.events {
            write!(f, "; {} {} at t={}", e.kind, e.node, e.at)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events() {
        let plan = FaultPlan::new()
            .crash_at(NodeId::new(1), Time::from_ticks(5))
            .recover_at(NodeId::new(1), Time::from_ticks(9))
            .crash_at(NodeId::new(2), Time::from_ticks(3));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.crashed_nodes(), vec![NodeId::new(1), NodeId::new(2)]);
        let s = plan.to_string();
        assert!(s.contains("crash n1 at t=5"));
        assert!(s.contains("recover n1 at t=9"));
    }

    #[test]
    fn wire_codes_round_trip_and_stay_stable() {
        for kind in [FaultKind::Crash, FaultKind::Recover] {
            assert_eq!(FaultKind::from_code(kind.code()), Some(kind));
        }
        // Persisted-format pins: renumbering breaks stored traces.
        assert_eq!(FaultKind::Crash.code(), 4);
        assert_eq!(FaultKind::Recover.code(), 5);
        assert_eq!(FaultKind::from_code(0), None);
        assert_eq!(FaultKind::from_code(6), None);
    }

    #[test]
    fn random_crashes_sample_distinct_nodes_in_window() {
        let mut rng = SimRng::seed(11);
        let plan = FaultPlan::random_crashes(20, 6, Time::from_ticks(50), &mut rng);
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.crashed_nodes().len(), 6, "nodes must be distinct");
        for e in plan.events() {
            assert!(e.at.ticks() < 50);
            assert_eq!(e.kind, FaultKind::Crash);
        }
    }

    #[test]
    fn random_crashes_are_deterministic_per_stream() {
        let a = FaultPlan::random_crashes(12, 4, Time::from_ticks(30), &mut SimRng::seed(3));
        let b = FaultPlan::random_crashes(12, 4, Time::from_ticks(30), &mut SimRng::seed(3));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_count_needs_no_window() {
        let plan = FaultPlan::random_crashes(5, 0, Time::ZERO, &mut SimRng::seed(0));
        assert!(plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot crash")]
    fn over_budget_panics() {
        FaultPlan::random_crashes(3, 4, Time::from_ticks(10), &mut SimRng::seed(0));
    }
}
