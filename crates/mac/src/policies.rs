//! Generic message schedulers (adversaries) usable with any topology.
//!
//! * [`EagerPolicy`] — best case: immediate deliveries and acks, optional
//!   probabilistic unreliable deliveries. An optimistic baseline.
//! * [`LazyPolicy`] — worst case within the model: every ack takes the full
//!   `F_ack`; receivers get messages only when the progress bound forces
//!   them to. Optionally prefers feeding *duplicates* on forced
//!   deliveries — the freedom that drives the paper's pessimistic bounds.
//! * [`RandomPolicy`] — seeded uniform choices over all the scheduler's
//!   freedoms; useful for property-based testing.
//!
//! All three produce only valid executions (the runtime clamps and enforces
//! the model guarantees); they differ purely in how adversarially they
//! exercise the scheduler's latitude.

use crate::choice::{ChoicePoint, ChoicePolicy, ChoiceSource, RngSource};
use crate::policy::{BcastInfo, BcastPlan, ForcedCandidate, Policy, PolicyCtx};
use amac_graph::NodeId;
use amac_sim::Duration;

/// Best-case scheduler: deliveries after one tick, ack right after, and
/// (optionally) unreliable deliveries with a fixed probability.
///
/// # Examples
///
/// ```
/// use amac_mac::policies::EagerPolicy;
///
/// let fast = EagerPolicy::new();
/// let leaky = EagerPolicy::new().with_unreliable(0.5, 7);
/// # let _ = (fast, leaky);
/// ```
#[derive(Debug)]
pub struct EagerPolicy {
    delivery_delay: Duration,
    unreliable_probability: f64,
    source: RngSource,
}

impl EagerPolicy {
    /// Immediate scheduler with no unreliable deliveries (`G′` links stay
    /// silent, the adversary's prerogative).
    pub fn new() -> EagerPolicy {
        EagerPolicy {
            delivery_delay: Duration::TICK,
            unreliable_probability: 0.0,
            source: RngSource::seed(0),
        }
    }

    /// Enables unreliable deliveries: each `G′ \ G` neighbor receives each
    /// broadcast independently with probability `p` (seeded).
    pub fn with_unreliable(mut self, p: f64, seed: u64) -> EagerPolicy {
        self.unreliable_probability = p;
        self.source = RngSource::seed(seed);
        self
    }

    /// Sets the delivery delay (default 1 tick).
    pub fn with_delivery_delay(mut self, d: Duration) -> EagerPolicy {
        self.delivery_delay = d;
        self
    }
}

impl Default for EagerPolicy {
    fn default() -> Self {
        EagerPolicy::new()
    }
}

impl Policy for EagerPolicy {
    fn plan_bcast(&mut self, ctx: &PolicyCtx<'_>, info: &BcastInfo) -> BcastPlan {
        let d = self.delivery_delay;
        let ack = d + Duration::TICK;
        if self.unreliable_probability == 0.0 {
            // The common case builds no per-broadcast lists at all.
            return BcastPlan::uniform_with_delivery(ack, d);
        }
        let p = self.unreliable_probability;
        let unreliable = ctx
            .dual
            .unreliable_neighbors(info.sender)
            .iter()
            .filter(|_| self.source.chance(ChoicePoint::UnreliableInclude, p))
            .map(|&j| (j, d))
            .collect();
        BcastPlan {
            ack_delay: ack,
            reliable_default: Some(d),
            reliable: Vec::new(),
            unreliable,
        }
    }
}

/// Worst-case scheduler: acks at exactly `F_ack`, deliveries withheld until
/// the ack (so receivers see messages only via the runtime's forced
/// progress deliveries every `F_prog`), no voluntary unreliable deliveries.
///
/// With [`prefer_duplicates`](LazyPolicy::prefer_duplicates) the forced
/// deliveries pick messages the receiver has already seen whenever
/// possible — the "old messages arriving from far away at inopportune
/// points" behaviour the paper blames for the `O((D+k)·F_ack)` slowdown.
#[derive(Debug, Default)]
pub struct LazyPolicy {
    prefer_duplicates: bool,
}

impl LazyPolicy {
    /// Plain lazy scheduler (forced picks take the oldest candidate).
    pub fn new() -> LazyPolicy {
        LazyPolicy {
            prefer_duplicates: false,
        }
    }

    /// Makes forced progress deliveries prefer semantically useless
    /// duplicates over new information.
    pub fn prefer_duplicates(mut self) -> LazyPolicy {
        self.prefer_duplicates = true;
        self
    }
}

impl Policy for LazyPolicy {
    fn plan_bcast(&mut self, ctx: &PolicyCtx<'_>, _info: &BcastInfo) -> BcastPlan {
        // Deliveries default to the ack deadline; the runtime flushes them
        // right before the ack, and the progress bound forces earlier ones.
        BcastPlan::uniform(ctx.config.f_ack())
    }

    fn pick_forced(
        &mut self,
        _ctx: &PolicyCtx<'_>,
        _receiver: NodeId,
        candidates: &[ForcedCandidate],
    ) -> usize {
        if self.prefer_duplicates {
            if let Some(i) = candidates.iter().position(|c| c.duplicate_for_receiver) {
                return i;
            }
        }
        0
    }
}

/// Uniformly random scheduler over all the model's freedoms, seeded for
/// reproducibility: ack delays uniform in `[1, F_ack]`, delivery delays
/// uniform in `[0, ack]`, each unreliable neighbor included with
/// probability `p`, forced picks uniform.
///
/// This is [`ChoicePolicy`] over an [`RngSource`] — the same policy code
/// the `amac-check` DFS controller enumerates, resolved randomly instead.
/// The seeded draw stream is unchanged from the pre-`ChoiceSource`
/// implementation (see `tests/choice_equivalence.rs`).
#[derive(Debug)]
pub struct RandomPolicy {
    inner: ChoicePolicy<RngSource>,
}

impl RandomPolicy {
    /// Creates a random scheduler with the given seed and an unreliable
    /// delivery probability of 0.5.
    pub fn new(seed: u64) -> RandomPolicy {
        RandomPolicy {
            inner: ChoicePolicy::new(RngSource::seed(seed)).with_unreliable_probability(0.5),
        }
    }

    /// Sets the per-neighbor unreliable delivery probability.
    pub fn with_unreliable_probability(mut self, p: f64) -> RandomPolicy {
        self.inner = self.inner.with_unreliable_probability(p);
        self
    }
}

impl Policy for RandomPolicy {
    fn plan_bcast(&mut self, ctx: &PolicyCtx<'_>, info: &BcastInfo) -> BcastPlan {
        self.inner.plan_bcast(ctx, info)
    }

    fn pick_forced(
        &mut self,
        ctx: &PolicyCtx<'_>,
        receiver: NodeId,
        candidates: &[ForcedCandidate],
    ) -> usize {
        self.inner.pick_forced(ctx, receiver, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MacConfig;
    use crate::instance::InstanceId;
    use crate::message::MessageKey;
    use amac_graph::{generators, DualGraph};
    use amac_sim::{SimRng, Time};

    fn ctx_fixture() -> (DualGraph, MacConfig) {
        let g = generators::line(4).unwrap();
        let mut rng = SimRng::seed(1);
        let dual = generators::r_restricted_augment(g, 3, 1.0, &mut rng).unwrap();
        (dual, MacConfig::from_ticks(2, 20))
    }

    fn info() -> BcastInfo {
        BcastInfo {
            instance: InstanceId::new(0),
            sender: NodeId::new(1),
            key: MessageKey(5),
        }
    }

    #[test]
    fn eager_plans_fast_deliveries() {
        let (dual, config) = ctx_fixture();
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let plan = EagerPolicy::new().plan_bcast(&ctx, &info());
        assert_eq!(plan.ack_delay, Duration::from_ticks(2));
        assert_eq!(
            plan.reliable_default,
            Some(Duration::TICK),
            "uniform delivery, no per-neighbor list"
        );
        assert!(plan.reliable.is_empty());
        assert!(plan.unreliable.is_empty());
    }

    #[test]
    fn eager_unreliable_probability_one_covers_all() {
        let (dual, config) = ctx_fixture();
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let plan = EagerPolicy::new()
            .with_unreliable(1.0, 3)
            .plan_bcast(&ctx, &info());
        assert_eq!(
            plan.unreliable.len(),
            dual.unreliable_neighbors(NodeId::new(1)).len()
        );
    }

    #[test]
    fn lazy_plans_full_ack_delay() {
        let (dual, config) = ctx_fixture();
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let plan = LazyPolicy::new().plan_bcast(&ctx, &info());
        assert_eq!(plan.ack_delay, config.f_ack());
        assert!(plan.reliable.is_empty(), "deliveries default to ack time");
    }

    fn candidate(i: u64, dup: bool) -> ForcedCandidate {
        ForcedCandidate {
            instance: InstanceId::new(i),
            sender: NodeId::new(0),
            key: MessageKey(i),
            start: Time::ZERO,
            duplicate_for_receiver: dup,
            reliable_link: true,
        }
    }

    #[test]
    fn lazy_duplicate_preference() {
        let (dual, config) = ctx_fixture();
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let cands = vec![candidate(0, false), candidate(1, true), candidate(2, true)];
        let mut plain = LazyPolicy::new();
        assert_eq!(plain.pick_forced(&ctx, NodeId::new(2), &cands), 0);
        let mut dup = LazyPolicy::new().prefer_duplicates();
        assert_eq!(dup.pick_forced(&ctx, NodeId::new(2), &cands), 1);
        let none = vec![candidate(0, false)];
        assert_eq!(dup.pick_forced(&ctx, NodeId::new(2), &none), 0);
    }

    #[test]
    fn random_policy_is_seeded_deterministic() {
        let (dual, config) = ctx_fixture();
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let p1 = RandomPolicy::new(9).plan_bcast(&ctx, &info());
        let p2 = RandomPolicy::new(9).plan_bcast(&ctx, &info());
        assert_eq!(p1.ack_delay, p2.ack_delay);
        assert_eq!(p1.reliable, p2.reliable);
        assert!(p1.ack_delay.ticks() >= 1 && p1.ack_delay <= config.f_ack());
    }
}
