//! Message instance identity.

use std::fmt;

/// Identifier of one **message instance**: a single `bcast` together with
/// all the `rcv`/`ack`/`abort` events it causes (the paper's cause-function
/// equivalence class).
///
/// Instance ids are assigned sequentially in broadcast order, so
/// `a < b` implies instance `a` started no later than instance `b`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(u64);

impl InstanceId {
    /// Creates an instance id from its sequence number.
    pub const fn new(seq: u64) -> InstanceId {
        InstanceId(seq)
    }

    /// The sequence number (creation order) of this instance.
    pub const fn seq(self) -> u64 {
        self.0
    }

    /// The index into the runtime's instance table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_creation_order() {
        assert!(InstanceId::new(1) < InstanceId::new(2));
        assert_eq!(InstanceId::new(5).seq(), 5);
        assert_eq!(InstanceId::new(5).index(), 5);
        assert_eq!(format!("{}", InstanceId::new(3)), "i3");
    }
}
