//! Explicit nondeterminism: every scheduler freedom as a named choice.
//!
//! The runtime itself is deterministic — all of the model's latitude
//! (delivery timing within the `[1, F_ack]` window, which contending
//! message a forced progress delivery feeds, whether a `G′ \ G` link
//! fires) enters through the [`Policy`] callbacks, and fault/back-off
//! placement enters through the harnesses that build [`FaultPlan`]s and
//! protocol parameters. This module narrows all of those entry points to
//! a single funnel: the [`ChoiceSource`] trait, which resolves one
//! decision at a time, each labelled with a [`ChoicePoint`] describing
//! what is being decided.
//!
//! Two kinds of implementor exist:
//!
//! * [`RngSource`] — a seeded [`SimRng`]; random testing. Draw-for-draw
//!   identical to the pre-`ChoiceSource` seeded policies, so recorded
//!   `.amactrace` files and canonical experiment seeds are unaffected.
//! * `amac-check`'s DFS controller — replays a chosen prefix and
//!   enumerates the remaining alternatives, turning the same policy code
//!   into a bounded exhaustive model checker.
//!
//! [`ChoicePolicy`] is the bridge: a [`Policy`] that spends its entire
//! latitude through a `ChoiceSource`. `RandomPolicy` (in
//! [`policies`](crate::policies)) is now a thin wrapper around
//! `ChoicePolicy<RngSource>`.
//!
//! [`FaultPlan`]: crate::FaultPlan

use crate::policy::{BcastInfo, BcastPlan, ForcedCandidate, Policy, PolicyCtx};
use amac_graph::NodeId;
use amac_sim::{Duration, SimRng};

/// The semantic role of a single nondeterministic decision.
///
/// Labels let an enumerating [`ChoiceSource`] report *what* each position
/// in a schedule decided (and let a shrinker print readable
/// counterexamples); random sources ignore them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChoicePoint {
    /// Ack delay for a new instance: index `i` means `i + 1` ticks, so the
    /// width is `F_ack` and the result lands in the model's `[1, F_ack]`.
    AckDelay,
    /// Delivery delay on a reliable link: index `i` means `i` ticks, width
    /// `ack + 1` (the runtime flushes undelivered receivers at the ack).
    ReliableDelay,
    /// Whether a `G′ \ G` link fires at all for this broadcast.
    UnreliableInclude,
    /// Delivery delay on an unreliable link (same encoding as
    /// [`ReliableDelay`](ChoicePoint::ReliableDelay)).
    UnreliableDelay,
    /// Which contending candidate a forced progress delivery feeds.
    ForcedPick,
    /// Crash/recovery placement chosen by a checking harness.
    FaultPlacement,
    /// Protocol-level latitude (e.g. an election back-off window slot).
    ProtocolChoice,
}

/// A source of resolved nondeterministic decisions.
///
/// Each call resolves one decision; the sequence of calls an execution
/// makes — its *schedule* — fully determines that execution, because the
/// runtime is deterministic in everything else.
pub trait ChoiceSource {
    /// Picks one alternative out of `width` (must be ≥ 1); returns an
    /// index in `[0, width)`.
    fn choose(&mut self, point: ChoicePoint, width: u64) -> u64;

    /// A biased binary decision. Random implementors honour the
    /// probability; enumerating implementors branch both ways whenever
    /// `0 < probability < 1` and take the forced arm (without consuming a
    /// schedule position) at the extremes.
    fn chance(&mut self, point: ChoicePoint, probability: f64) -> bool {
        if probability <= 0.0 {
            false
        } else if probability >= 1.0 {
            true
        } else {
            self.choose(point, 2) == 1
        }
    }
}

impl<S: ChoiceSource + ?Sized> ChoiceSource for &mut S {
    fn choose(&mut self, point: ChoicePoint, width: u64) -> u64 {
        (**self).choose(point, width)
    }

    fn chance(&mut self, point: ChoicePoint, probability: f64) -> bool {
        (**self).chance(point, probability)
    }
}

/// Seeded random resolution of choices: the [`SimRng`]-backed
/// [`ChoiceSource`].
///
/// Draw-for-draw compatible with calling [`SimRng::below`] /
/// [`SimRng::chance`] directly, which keeps every pre-refactor seeded
/// execution byte-identical (see `tests/choice_equivalence.rs` in this
/// crate and the workspace determinism suite).
#[derive(Debug, Clone)]
pub struct RngSource {
    rng: SimRng,
}

impl RngSource {
    /// Creates a source from an experiment seed.
    pub fn seed(seed: u64) -> RngSource {
        RngSource {
            rng: SimRng::seed(seed),
        }
    }

    /// Wraps an existing generator (e.g. a [`SimRng::split`] stream).
    pub fn from_rng(rng: SimRng) -> RngSource {
        RngSource { rng }
    }
}

impl ChoiceSource for RngSource {
    fn choose(&mut self, _point: ChoicePoint, width: u64) -> u64 {
        self.rng.below(width)
    }

    fn chance(&mut self, _point: ChoicePoint, probability: f64) -> bool {
        self.rng.chance(probability)
    }
}

/// A [`Policy`] that spends the scheduler's entire latitude through a
/// [`ChoiceSource`]: ack delays over `[1, F_ack]`, per-receiver delivery
/// delays over `[0, ack]`, unreliable-link inclusion as a binary choice,
/// forced picks over the full candidate list.
///
/// With an [`RngSource`] this *is* the uniform random adversary
/// (`RandomPolicy` wraps exactly that); with `amac-check`'s DFS source it
/// enumerates every schedule the model permits.
///
/// # Examples
///
/// ```
/// use amac_mac::{ChoicePolicy, RngSource};
///
/// let policy = ChoicePolicy::new(RngSource::seed(7)).with_unreliable_probability(0.5);
/// # let _ = policy;
/// ```
#[derive(Debug)]
pub struct ChoicePolicy<C> {
    source: C,
    unreliable_probability: f64,
}

impl<C: ChoiceSource> ChoicePolicy<C> {
    /// Wraps a choice source; unreliable links stay silent by default
    /// (probability 0 — enumerating sources then never branch on them).
    pub fn new(source: C) -> ChoicePolicy<C> {
        ChoicePolicy {
            source,
            unreliable_probability: 0.0,
        }
    }

    /// Sets the per-neighbor unreliable inclusion probability. Any value
    /// in `(0, 1)` makes enumerating sources branch on each `G′ \ G`
    /// neighbor of each broadcast.
    pub fn with_unreliable_probability(mut self, p: f64) -> ChoicePolicy<C> {
        self.unreliable_probability = p;
        self
    }

    /// The wrapped source.
    pub fn source(&self) -> &C {
        &self.source
    }

    /// Unwraps the source.
    pub fn into_source(self) -> C {
        self.source
    }
}

impl<C: ChoiceSource> Policy for ChoicePolicy<C> {
    fn plan_bcast(&mut self, ctx: &PolicyCtx<'_>, info: &BcastInfo) -> BcastPlan {
        let f_ack = ctx.config.f_ack().ticks();
        let ack_ticks = 1 + self.source.choose(ChoicePoint::AckDelay, f_ack);
        let ack = Duration::from_ticks(ack_ticks);
        let mut reliable = Vec::new();
        for &j in ctx.dual.reliable_neighbors(info.sender) {
            let d = self
                .source
                .choose(ChoicePoint::ReliableDelay, ack_ticks + 1);
            reliable.push((j, Duration::from_ticks(d)));
        }
        let mut unreliable = Vec::new();
        for &j in ctx.dual.unreliable_neighbors(info.sender) {
            if self
                .source
                .chance(ChoicePoint::UnreliableInclude, self.unreliable_probability)
            {
                let d = self
                    .source
                    .choose(ChoicePoint::UnreliableDelay, ack_ticks + 1);
                unreliable.push((j, Duration::from_ticks(d)));
            }
        }
        BcastPlan {
            ack_delay: ack,
            reliable_default: None,
            reliable,
            unreliable,
        }
    }

    fn pick_forced(
        &mut self,
        _ctx: &PolicyCtx<'_>,
        _receiver: NodeId,
        candidates: &[ForcedCandidate],
    ) -> usize {
        self.source
            .choose(ChoicePoint::ForcedPick, candidates.len() as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MacConfig;
    use crate::instance::InstanceId;
    use crate::message::MessageKey;
    use amac_graph::{generators, DualGraph};
    use amac_sim::Time;

    fn ctx_fixture() -> (DualGraph, MacConfig) {
        let g = generators::line(4).unwrap();
        let mut rng = SimRng::seed(1);
        let dual = generators::r_restricted_augment(g, 3, 1.0, &mut rng).unwrap();
        (dual, MacConfig::from_ticks(2, 20))
    }

    fn info() -> BcastInfo {
        BcastInfo {
            instance: InstanceId::new(0),
            sender: NodeId::new(1),
            key: MessageKey(5),
        }
    }

    /// Counts every branch it is offered and always takes the last
    /// alternative, exercising the clamp-free upper edge of each window.
    struct MaxSource {
        draws: Vec<(ChoicePoint, u64)>,
    }

    impl ChoiceSource for MaxSource {
        fn choose(&mut self, point: ChoicePoint, width: u64) -> u64 {
            self.draws.push((point, width));
            width - 1
        }
    }

    #[test]
    fn rng_source_matches_raw_simrng() {
        let mut raw = SimRng::seed(42);
        let mut src = RngSource::seed(42);
        for bound in [1u64, 2, 7, 100] {
            assert_eq!(raw.below(bound), src.choose(ChoicePoint::AckDelay, bound));
        }
        assert_eq!(
            raw.chance(0.3),
            src.chance(ChoicePoint::UnreliableInclude, 0.3)
        );
        // The extremes must not draw — SimRng::chance short-circuits and
        // the source must preserve that for byte-identical streams.
        assert!(!src.chance(ChoicePoint::UnreliableInclude, 0.0));
        assert!(src.chance(ChoicePoint::UnreliableInclude, 1.0));
        // Streams still aligned after the non-drawing extremes.
        assert_eq!(raw.below(9), src.choose(ChoicePoint::ForcedPick, 9));
    }

    #[test]
    fn choice_policy_offers_every_model_freedom() {
        let (dual, config) = ctx_fixture();
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let mut policy =
            ChoicePolicy::new(MaxSource { draws: Vec::new() }).with_unreliable_probability(0.5);
        let plan = policy.plan_bcast(&ctx, &info());
        // Max index on AckDelay (width F_ack) → the full F_ack delay.
        assert_eq!(plan.ack_delay, config.f_ack());
        assert_eq!(
            plan.reliable.len(),
            dual.reliable_neighbors(NodeId::new(1)).len()
        );
        // chance(0.5) branches via choose(2); last alternative = include.
        assert_eq!(
            plan.unreliable.len(),
            dual.unreliable_neighbors(NodeId::new(1)).len()
        );
        let draws = policy.source().draws.clone();
        assert_eq!(draws[0], (ChoicePoint::AckDelay, config.f_ack().ticks()));
        assert!(draws
            .iter()
            .any(|&(p, w)| p == ChoicePoint::ReliableDelay && w == config.f_ack().ticks() + 1));
        assert!(draws
            .iter()
            .any(|&(p, _)| p == ChoicePoint::UnreliableInclude));
    }

    #[test]
    fn zero_probability_never_branches() {
        let (dual, config) = ctx_fixture();
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let mut policy = ChoicePolicy::new(MaxSource { draws: Vec::new() });
        let plan = policy.plan_bcast(&ctx, &info());
        assert!(plan.unreliable.is_empty());
        assert!(policy
            .source()
            .draws
            .iter()
            .all(|&(p, _)| p != ChoicePoint::UnreliableInclude));
    }

    #[test]
    fn forced_pick_spans_candidates() {
        let (dual, config) = ctx_fixture();
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let cands: Vec<ForcedCandidate> = (0..3)
            .map(|i| ForcedCandidate {
                instance: InstanceId::new(i),
                sender: NodeId::new(0),
                key: MessageKey(i),
                start: Time::ZERO,
                duplicate_for_receiver: false,
                reliable_link: true,
            })
            .collect();
        let mut policy = ChoicePolicy::new(MaxSource { draws: Vec::new() });
        assert_eq!(policy.pick_forced(&ctx, NodeId::new(2), &cands), 2);
    }
}
