//! Model conformance under fault injection: every execution the [`Runtime`]
//! produces under a random [`FaultPlan`] must be accepted by the
//! crash-conditioned [`validate`] function — and by the streaming
//! [`OnlineValidator`], which must report the *identical violation set* —
//! and the fault semantics themselves must hold (a crashed node goes
//! silent the instant it crashes).

use amac_graph::{generators, DualGraph, NodeId};
use amac_mac::policies::{EagerPolicy, LazyPolicy, RandomPolicy};
use amac_mac::trace::{Trace, TraceKind};
use amac_mac::{
    validate, Automaton, Ctx, FaultKind, FaultPlan, MacConfig, MacMessage, MessageKey,
    OnlineValidator, Policy, Runtime, ValidationReport,
};
use amac_sim::{SimRng, Time};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Token(u64);
impl MacMessage for Token {
    fn key(&self) -> MessageKey {
        MessageKey(self.0)
    }
}

/// Floods one token per source: forwards the first copy received, then
/// keeps rebroadcasting on every ack so executions stay busy long enough
/// for crashes to land mid-traffic.
struct Chatter {
    token: Option<u64>,
    rebroadcasts: u64,
}

impl Automaton for Chatter {
    type Msg = Token;
    type Env = ();
    type Out = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, Token, ()>) {
        if let Some(t) = self.token {
            ctx.bcast(Token(t));
        }
    }

    fn on_receive(&mut self, msg: &Token, ctx: &mut Ctx<'_, Token, ()>) {
        if self.token.is_none() {
            self.token = Some(msg.0);
            if !ctx.has_broadcast_in_flight() {
                ctx.bcast(msg.clone());
            }
        }
    }

    fn on_ack(&mut self, msg: &Token, ctx: &mut Ctx<'_, Token, ()>) {
        if self.rebroadcasts > 0 {
            self.rebroadcasts -= 1;
            ctx.bcast(msg.clone());
        }
    }
}

fn topology(pick: u8, n: usize) -> DualGraph {
    let g = match pick % 4 {
        0 => generators::line(n).unwrap(),
        1 => generators::ring(n.max(3)).unwrap(),
        2 => generators::star(n).unwrap(),
        _ => generators::complete(n).unwrap(),
    };
    DualGraph::reliable(g)
}

fn chatters(n: usize, sources: usize) -> Vec<Chatter> {
    (0..n)
        .map(|i| Chatter {
            token: (i < sources).then_some(i as u64 + 1),
            rebroadcasts: 3,
        })
        .collect()
}

/// Runs a faulted execution with both a trace observer and a streaming
/// validator attached; returns the recorded trace and the live report.
fn run_with_plan_validated(
    dual: &DualGraph,
    cfg: MacConfig,
    nodes: Vec<Chatter>,
    policy: impl Policy,
    plan: FaultPlan,
) -> (Trace, ValidationReport) {
    let mut rt = Runtime::new(dual.clone(), cfg, nodes, policy)
        .tracing()
        .with_faults(plan)
        .with_event_limit(2_000_000);
    let validator = rt.attach(OnlineValidator::new(dual.clone(), cfg));
    rt.run();
    let online = rt.detach(validator).into_report(true);
    (rt.into_trace().expect("trace observer attached"), online)
}

fn run_with_plan(
    dual: &DualGraph,
    cfg: MacConfig,
    nodes: Vec<Chatter>,
    policy: impl Policy,
    plan: FaultPlan,
) -> Trace {
    run_with_plan_validated(dual, cfg, nodes, policy, plan).0
}

/// Order-insensitive view of a report, for set comparison.
fn violation_set(report: &ValidationReport) -> Vec<String> {
    let mut v: Vec<String> = report
        .violations()
        .iter()
        .map(|x| format!("{x:?}"))
        .collect();
    v.sort();
    v
}

/// The regression check the fault model hangs on: once a node's crash time
/// has passed (with no recovery in between), it must never appear as a
/// broadcaster — nor as an acker, aborter, or receiver — in the trace.
fn assert_silent_after_crash(trace: &Trace) {
    for fault in trace.faults() {
        if fault.kind != FaultKind::Crash {
            continue;
        }
        let recovery = trace
            .faults()
            .iter()
            .find(|r| r.kind == FaultKind::Recover && r.node == fault.node && r.time >= fault.time)
            .map(|r| r.time)
            .unwrap_or(Time::MAX);
        for e in trace.entries() {
            if e.node == fault.node && e.time > fault.time && e.time < recovery {
                panic!(
                    "crashed node {} appears on a {:?} at t={} (crashed at t={}, recovery {:?})",
                    fault.node, e.kind, e.time, fault.time, recovery
                );
            }
        }
    }
}

#[test]
fn crashed_broadcaster_never_reappears_in_the_trace() {
    // Deterministic regression instance: heavy traffic on a ring, half the
    // nodes crash at staggered times.
    let dual = topology(1, 8);
    let cfg = MacConfig::from_ticks(2, 12);
    let mut plan = FaultPlan::new();
    for (i, node) in [1usize, 3, 5, 7].into_iter().enumerate() {
        plan = plan.crash_at(NodeId::new(node), Time::from_ticks(4 * (i as u64 + 1)));
    }
    let trace = run_with_plan(&dual, cfg, chatters(8, 4), LazyPolicy::new(), plan);
    assert!(
        trace.faults().len() == 4,
        "all four crashes applied: {trace}"
    );
    assert_silent_after_crash(&trace);
    assert!(
        trace.count(TraceKind::Bcast) > 4,
        "traffic must outlive the crashes"
    );
    let report = validate(&trace, &dual, &cfg, true);
    assert!(report.is_ok(), "{report}");
}

#[test]
fn recovery_reopens_the_node_without_breaking_conformance() {
    let dual = topology(0, 6);
    let cfg = MacConfig::from_ticks(2, 10);
    let plan = FaultPlan::new()
        .crash_at(NodeId::new(2), Time::from_ticks(3))
        .recover_at(NodeId::new(2), Time::from_ticks(30))
        .crash_at(NodeId::new(4), Time::from_ticks(5));
    let trace = run_with_plan(&dual, cfg, chatters(6, 3), EagerPolicy::new(), plan);
    assert_silent_after_crash(&trace);
    let report = validate(&trace, &dual, &cfg, true);
    assert!(report.is_ok(), "{report}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The acceptance property of the fault subsystem: for any topology,
    /// scheduler, and random crash schedule, the runtime's execution
    /// passes the crash-conditioned validator — crashes never manufacture
    /// spurious guarantee violations. The streaming [`OnlineValidator`]
    /// (both attached live and replayed over the recorded trace) must
    /// report the *identical* violation set as the post-hoc [`validate`].
    #[test]
    fn online_and_posthoc_validators_agree_on_faulted_runtime_traces(
        seed in 0u64..1_000_000,
        topo in 0u8..4,
        n in 3usize..10,
        sources in 1usize..4,
        crash_count in 0usize..5,
        window in 5u64..80,
        f_prog in 1u64..4,
        f_ack_mult in 2u64..10,
        policy_pick in 0u8..3,
    ) {
        let crash_count = crash_count.min(n - 1);
        let sources = sources.min(n);
        let dual = topology(topo, n);
        let cfg = MacConfig::from_ticks(f_prog, f_prog * f_ack_mult);
        let mut rng = SimRng::seed(seed);
        let plan = FaultPlan::random_crashes(n, crash_count, Time::from_ticks(window), &mut rng);
        let policy: Box<dyn Policy> = match policy_pick {
            0 => Box::new(EagerPolicy::new()),
            1 => Box::new(LazyPolicy::new().prefer_duplicates()),
            _ => Box::new(RandomPolicy::new(seed ^ 0xFA57)),
        };
        let (trace, online) =
            run_with_plan_validated(&dual, cfg, chatters(n, sources), policy, plan);
        assert_silent_after_crash(&trace);
        let posthoc = validate(&trace, &dual, &cfg, true);
        prop_assert!(posthoc.is_ok(), "seed {}: {}", seed, posthoc);
        prop_assert_eq!(
            violation_set(&online),
            violation_set(&posthoc),
            "seed {}: live online validator disagrees with post-hoc\nonline: {}\npost-hoc: {}",
            seed, online, posthoc
        );
        let replayed = OnlineValidator::replay(&trace, &dual, &cfg, true);
        prop_assert_eq!(
            violation_set(&replayed),
            violation_set(&posthoc),
            "seed {}: replayed online validator disagrees with post-hoc",
            seed
        );
    }
}
