//! The `ChoiceSource` refactor must not move a single byte: the seeded
//! policies (`RandomPolicy`, `EagerPolicy::with_unreliable`) now draw
//! through [`RngSource`], and every execution they produce must be
//! trace-identical to the pre-refactor implementations, which drew from
//! [`SimRng`] directly. The reference policies below are verbatim copies
//! of the pre-refactor draw sequences; any change to the draw order,
//! count, or primitive used inside `ChoicePolicy`/`RngSource` fails here.

use amac_graph::{generators, DualGraph, NodeId};
use amac_mac::policies::{EagerPolicy, RandomPolicy};
use amac_mac::trace::Trace;
use amac_mac::{
    Automaton, BcastInfo, BcastPlan, Ctx, ForcedCandidate, MacConfig, MacMessage, MessageKey,
    Policy, PolicyCtx, Runtime,
};
use amac_sim::{Duration, SimRng};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Token(u64);
impl MacMessage for Token {
    fn key(&self) -> MessageKey {
        MessageKey(self.0)
    }
}

/// Floods and re-broadcasts enough to exercise forced picks and acks.
struct Chatter {
    token: Option<u64>,
    rebroadcasts: u64,
}

impl Automaton for Chatter {
    type Msg = Token;
    type Env = ();
    type Out = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, Token, ()>) {
        if let Some(t) = self.token {
            ctx.bcast(Token(t));
        }
    }

    fn on_receive(&mut self, msg: &Token, ctx: &mut Ctx<'_, Token, ()>) {
        if self.token.is_none() {
            self.token = Some(msg.0);
            if !ctx.has_broadcast_in_flight() {
                ctx.bcast(msg.clone());
            }
        }
    }

    fn on_ack(&mut self, msg: &Token, ctx: &mut Ctx<'_, Token, ()>) {
        if self.rebroadcasts > 0 {
            self.rebroadcasts -= 1;
            ctx.bcast(msg.clone());
        }
    }
}

/// The pre-refactor `RandomPolicy`, kept verbatim as the golden reference.
struct ReferenceRandomPolicy {
    rng: SimRng,
    unreliable_probability: f64,
}

impl Policy for ReferenceRandomPolicy {
    fn plan_bcast(&mut self, ctx: &PolicyCtx<'_>, info: &BcastInfo) -> BcastPlan {
        let f_ack = ctx.config.f_ack().ticks();
        let ack_ticks = 1 + self.rng.below(f_ack);
        let ack = Duration::from_ticks(ack_ticks);
        let mut reliable = Vec::new();
        for &j in ctx.dual.reliable_neighbors(info.sender) {
            reliable.push((j, Duration::from_ticks(self.rng.below(ack_ticks + 1))));
        }
        let mut unreliable = Vec::new();
        for &j in ctx.dual.unreliable_neighbors(info.sender) {
            if self.rng.chance(self.unreliable_probability) {
                unreliable.push((j, Duration::from_ticks(self.rng.below(ack_ticks + 1))));
            }
        }
        BcastPlan {
            ack_delay: ack,
            reliable_default: None,
            reliable,
            unreliable,
        }
    }

    fn pick_forced(
        &mut self,
        _ctx: &PolicyCtx<'_>,
        _receiver: NodeId,
        candidates: &[ForcedCandidate],
    ) -> usize {
        self.rng.below(candidates.len() as u64) as usize
    }
}

/// The pre-refactor `EagerPolicy` with unreliable deliveries enabled.
struct ReferenceEagerPolicy {
    delivery_delay: Duration,
    unreliable_probability: f64,
    rng: SimRng,
}

impl Policy for ReferenceEagerPolicy {
    fn plan_bcast(&mut self, ctx: &PolicyCtx<'_>, info: &BcastInfo) -> BcastPlan {
        let d = self.delivery_delay;
        let ack = d + Duration::TICK;
        if self.unreliable_probability == 0.0 {
            return BcastPlan::uniform_with_delivery(ack, d);
        }
        let unreliable = ctx
            .dual
            .unreliable_neighbors(info.sender)
            .iter()
            .filter(|_| self.rng.chance(self.unreliable_probability))
            .map(|&j| (j, d))
            .collect();
        BcastPlan {
            ack_delay: ack,
            reliable_default: Some(d),
            reliable: Vec::new(),
            unreliable,
        }
    }
}

fn dual(pick: u8, n: usize, grey_seed: u64) -> DualGraph {
    let g = match pick % 3 {
        0 => generators::line(n).unwrap(),
        1 => generators::ring(n.max(3)).unwrap(),
        _ => generators::complete(n).unwrap(),
    };
    // Add unreliable edges so the chance() draws actually fire.
    let mut rng = SimRng::seed(grey_seed);
    generators::r_restricted_augment(g, 2, 0.8, &mut rng).unwrap()
}

fn chatters(n: usize, sources: usize) -> Vec<Chatter> {
    (0..n)
        .map(|i| Chatter {
            token: (i < sources).then_some(i as u64 + 1),
            rebroadcasts: 2,
        })
        .collect()
}

fn run_trace(dual: &DualGraph, cfg: MacConfig, nodes: Vec<Chatter>, policy: impl Policy) -> Trace {
    let mut rt = Runtime::new(dual.clone(), cfg, nodes, policy).tracing();
    rt.run();
    rt.into_trace().expect("tracing runtime keeps its trace")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `RandomPolicy` (now `ChoicePolicy<RngSource>`) is execution-identical
    /// to the pre-refactor direct-`SimRng` implementation for every seed.
    #[test]
    fn random_policy_matches_pre_refactor_reference(
        seed in 0u64..u64::MAX,
        pick in 0u8..3,
        n in 3usize..7,
        sources in 1usize..3,
        p_pick in 0u8..4,
    ) {
        let p = [0.0, 0.3, 0.5, 1.0][p_pick as usize];
        let d = dual(pick, n, seed ^ 0xA5A5);
        let cfg = MacConfig::from_ticks(2, 12);
        let new = run_trace(
            &d,
            cfg,
            chatters(n, sources),
            RandomPolicy::new(seed).with_unreliable_probability(p),
        );
        let old = run_trace(
            &d,
            cfg,
            chatters(n, sources),
            ReferenceRandomPolicy { rng: SimRng::seed(seed), unreliable_probability: p },
        );
        prop_assert_eq!(new.entries(), old.entries());
    }

    /// `EagerPolicy::with_unreliable` draws through `RngSource` now; the
    /// stream must be unchanged.
    #[test]
    fn eager_policy_matches_pre_refactor_reference(
        seed in 0u64..u64::MAX,
        pick in 0u8..3,
        n in 3usize..7,
        p_pick in 0u8..3,
    ) {
        let p = [0.0, 0.4, 1.0][p_pick as usize];
        let d = dual(pick, n, seed ^ 0x5A5A);
        let cfg = MacConfig::from_ticks(2, 12);
        let new = run_trace(&d, cfg, chatters(n, 2), EagerPolicy::new().with_unreliable(p, seed));
        let old = run_trace(
            &d,
            cfg,
            chatters(n, 2),
            ReferenceEagerPolicy {
                delivery_delay: Duration::TICK,
                unreliable_probability: p,
                rng: SimRng::seed(seed),
            },
        );
        prop_assert_eq!(new.entries(), old.entries());
    }
}
