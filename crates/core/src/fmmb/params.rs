//! FMMB tuning parameters and the global round schedule.
//!
//! FMMB divides time into lock-step rounds of length `F_prog + 2` ticks
//! (strictly longer than `F_prog`, so the progress bound guarantees a
//! silent node hears a sole broadcasting `G`-neighbor within the round,
//! with one tick of slack so forced deliveries land before the round-end
//! abort).
//! All nodes share the schedule: an MIS segment of
//! `mis_phases × (election + announcement)` rounds, a gather segment of
//! three-round periods, and a spread segment of phases each containing
//! `lb_periods` three-round periods.
//!
//! The paper gives the segment lengths asymptotically
//! (`O(c² log² n)` phases, `O(c² (k + log n))` periods,
//! `DH + k` phases × `O(c² log n)` periods); the constants here are the
//! knobs the experiments expose. Following the paper's presentation, the
//! subroutine lengths are parameterized by `k` and a diameter bound
//! (`k_hint`, `d_hint`); a standard doubling trick would remove that
//! knowledge at a constant-factor cost.

use crate::bounds::log2_ceil;

/// Tuning constants for [`Fmmb`](crate::Fmmb).
#[derive(Clone, Debug, PartialEq)]
pub struct FmmbParams {
    /// Number of messages `k` (or an upper bound): sizes the gather segment
    /// and the spread phase count.
    pub k_hint: usize,
    /// Upper bound on the overlay diameter `D_H` (any bound on the
    /// `G`-diameter works, since `D_H ≤ D_G`).
    pub d_hint: usize,
    /// Per-period/round activation probability `1/Θ(c²)` used by the MIS
    /// announcement, gather, and spread subroutines.
    pub activation_probability: f64,
    /// Election rounds per MIS phase = `election_factor · ⌈log₂ n⌉`
    /// (paper: 4).
    pub election_factor: u64,
    /// Announcement rounds per MIS phase = `announce_factor · ⌈log₂ n⌉`
    /// (paper: `Θ(c²) · log n`).
    pub announce_factor: u64,
    /// MIS phases = `⌈mis_phase_factor · ⌈log₂ n⌉²⌉` (paper:
    /// `O(c² log² n)`).
    pub mis_phase_factor: f64,
    /// Gather periods = `⌈gather_factor · (k_hint + ⌈log₂ n⌉)⌉` (paper:
    /// `O(c² (k + log n))`).
    pub gather_factor: f64,
    /// Local-broadcast periods per spread phase =
    /// `⌈lb_factor · ⌈log₂ n⌉⌉` (paper: `O(c² log n)`).
    pub lb_factor: f64,
    /// Extra spread phases beyond `d_hint + k_hint` (slack for the w.h.p.
    /// argument).
    pub spread_slack: u64,
    /// Whether nodes use the enhanced layer's **abort** interface. With
    /// abort (the paper's FMMB), rounds last `F_prog + 2` ticks. Without
    /// it — the ablation the paper's conclusion motivates ("most existing
    /// MAC layers do not offer an interface to abort messages") — a
    /// broadcast must run to its acknowledgment, so rounds must last
    /// `F_ack + 2` ticks and the algorithm loses its `F_ack`-independence.
    pub use_abort: bool,
}

impl FmmbParams {
    /// Defaults tuned for grey-zone networks with `c ≈ 2` at the scales the
    /// experiments use; `k` and a diameter bound must be supplied.
    ///
    /// The activation probability and period counts trade off against each
    /// other through the unique-activation probability
    /// `p·(1-p)^(|S|-1)` of Lemmas 4.6/4.7: denser MIS neighborhoods need
    /// a smaller `p` and more periods. These defaults hold w.h.p. for the
    /// experiment scales (`n ≤ ~200`, `c = 2`).
    pub fn new(k_hint: usize, d_hint: usize) -> FmmbParams {
        FmmbParams {
            k_hint,
            d_hint,
            activation_probability: 0.12,
            election_factor: 4,
            announce_factor: 14,
            mis_phase_factor: 0.75,
            gather_factor: 14.0,
            lb_factor: 9.0,
            spread_slack: 12,
            use_abort: true,
        }
    }

    /// Disables the abort interface (ablation): rounds stretch to
    /// `F_ack + 2` ticks and the Theorem 4.1 `F_ack`-independence is lost.
    pub fn without_abort(mut self) -> FmmbParams {
        self.use_abort = false;
        self
    }

    /// Overrides the activation probability.
    pub fn with_activation_probability(mut self, p: f64) -> FmmbParams {
        self.activation_probability = p;
        self
    }

    /// Scales every segment by roughly `scale` (trade success probability
    /// for runtime in stress tests).
    pub fn scaled(mut self, scale: f64) -> FmmbParams {
        self.announce_factor = ((self.announce_factor as f64) * scale).ceil() as u64;
        self.mis_phase_factor *= scale;
        self.gather_factor *= scale;
        self.lb_factor *= scale;
        self
    }

    /// Computes the concrete schedule for a network of `n` nodes.
    pub fn schedule(&self, n: usize) -> Schedule {
        let lg = log2_ceil(n).max(1);
        let election_rounds = (self.election_factor * lg).clamp(1, 126);
        let announce_rounds = (self.announce_factor * lg).max(1);
        let mis_phases = ((self.mis_phase_factor * (lg * lg) as f64).ceil() as u64).max(1);
        let gather_periods =
            ((self.gather_factor * (self.k_hint as f64 + lg as f64)).ceil() as u64).max(1);
        let lb_periods = ((self.lb_factor * lg as f64).ceil() as u64).max(1);
        let spread_phases = (self.d_hint + self.k_hint) as u64 + self.spread_slack;
        Schedule {
            log2n: lg,
            election_rounds,
            announce_rounds,
            mis_phases,
            gather_periods,
            lb_periods,
            spread_phases,
        }
    }
}

/// The concrete global round schedule shared by all nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// `⌈log₂ n⌉` (at least 1).
    pub log2n: u64,
    /// Election rounds per MIS phase.
    pub election_rounds: u64,
    /// Announcement rounds per MIS phase.
    pub announce_rounds: u64,
    /// Number of MIS phases.
    pub mis_phases: u64,
    /// Number of gather periods (3 rounds each).
    pub gather_periods: u64,
    /// Local-broadcast periods per spread phase (3 rounds each).
    pub lb_periods: u64,
    /// Number of spread phases.
    pub spread_phases: u64,
}

/// What a given round index is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Segment {
    /// MIS election round `round_in` (0-based) of `phase`.
    MisElection {
        /// MIS phase index.
        phase: u64,
        /// Round within the election part.
        round_in: u64,
    },
    /// MIS announcement round `round_in` of `phase`.
    MisAnnounce {
        /// MIS phase index.
        phase: u64,
        /// Round within the announcement part.
        round_in: u64,
    },
    /// Gather period `period`, round `round_in ∈ {0,1,2}`.
    Gather {
        /// Gather period index.
        period: u64,
        /// Round within the period.
        round_in: u8,
    },
    /// Spread phase `phase`, period `period`, round `round_in ∈ {0,1,2}`.
    Spread {
        /// Spread phase index.
        phase: u64,
        /// Local-broadcast period within the phase.
        period: u64,
        /// Round within the period.
        round_in: u8,
    },
    /// Past the end of the schedule.
    Done,
}

impl Schedule {
    /// Rounds in one MIS phase.
    pub fn mis_phase_rounds(&self) -> u64 {
        self.election_rounds + self.announce_rounds
    }

    /// Total rounds in the MIS segment.
    pub fn mis_rounds(&self) -> u64 {
        self.mis_phases * self.mis_phase_rounds()
    }

    /// Total rounds in the gather segment.
    pub fn gather_rounds(&self) -> u64 {
        3 * self.gather_periods
    }

    /// Rounds in one spread phase.
    pub fn spread_phase_rounds(&self) -> u64 {
        3 * self.lb_periods
    }

    /// Total rounds in the spread segment.
    pub fn spread_rounds(&self) -> u64 {
        self.spread_phases * self.spread_phase_rounds()
    }

    /// Total schedule length in rounds.
    pub fn total_rounds(&self) -> u64 {
        self.mis_rounds() + self.gather_rounds() + self.spread_rounds()
    }

    /// Maps a round index to its segment.
    pub fn segment(&self, round: u64) -> Segment {
        let mis_total = self.mis_rounds();
        if round < mis_total {
            let phase = round / self.mis_phase_rounds();
            let r = round % self.mis_phase_rounds();
            return if r < self.election_rounds {
                Segment::MisElection { phase, round_in: r }
            } else {
                Segment::MisAnnounce {
                    phase,
                    round_in: r - self.election_rounds,
                }
            };
        }
        let round = round - mis_total;
        if round < self.gather_rounds() {
            return Segment::Gather {
                period: round / 3,
                round_in: (round % 3) as u8,
            };
        }
        let round = round - self.gather_rounds();
        if round < self.spread_rounds() {
            let per_phase = self.spread_phase_rounds();
            let within = round % per_phase;
            return Segment::Spread {
                phase: round / per_phase,
                period: within / 3,
                round_in: (within % 3) as u8,
            };
        }
        Segment::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_covers_every_round_exactly_once() {
        let sched = FmmbParams::new(3, 5).schedule(32);
        let total = sched.total_rounds();
        assert_eq!(
            total,
            sched.mis_rounds() + sched.gather_rounds() + sched.spread_rounds()
        );
        assert_eq!(sched.segment(total), Segment::Done);
        assert_ne!(sched.segment(total - 1), Segment::Done);
        assert!(matches!(
            sched.segment(0),
            Segment::MisElection {
                phase: 0,
                round_in: 0
            }
        ));
    }

    #[test]
    fn segment_boundaries_are_consistent() {
        let sched = FmmbParams::new(2, 4).schedule(16);
        // Last election round of phase 0 followed by first announce round.
        let e = sched.election_rounds;
        assert!(matches!(
            sched.segment(e - 1),
            Segment::MisElection { phase: 0, .. }
        ));
        assert!(matches!(
            sched.segment(e),
            Segment::MisAnnounce {
                phase: 0,
                round_in: 0
            }
        ));
        // First gather round right after the MIS segment.
        assert!(matches!(
            sched.segment(sched.mis_rounds()),
            Segment::Gather {
                period: 0,
                round_in: 0
            }
        ));
        // First spread round right after gather.
        assert!(matches!(
            sched.segment(sched.mis_rounds() + sched.gather_rounds()),
            Segment::Spread {
                phase: 0,
                period: 0,
                round_in: 0
            }
        ));
    }

    #[test]
    fn spread_indexing_walks_periods_and_phases() {
        let sched = FmmbParams::new(1, 2).schedule(8);
        let base = sched.mis_rounds() + sched.gather_rounds();
        match sched.segment(base + 3) {
            Segment::Spread {
                phase: 0,
                period: 1,
                round_in: 0,
            } => {}
            s => panic!("unexpected segment {s:?}"),
        }
        match sched.segment(base + sched.spread_phase_rounds()) {
            Segment::Spread {
                phase: 1,
                period: 0,
                round_in: 0,
            } => {}
            s => panic!("unexpected segment {s:?}"),
        }
    }

    #[test]
    fn scaling_grows_segments() {
        let small = FmmbParams::new(2, 3).schedule(64);
        let big = FmmbParams::new(2, 3).scaled(2.0).schedule(64);
        assert!(big.mis_phases >= small.mis_phases);
        assert!(big.gather_periods >= small.gather_periods);
        assert!(big.lb_periods >= small.lb_periods);
    }

    #[test]
    fn schedule_grows_polylog_in_n() {
        let p = FmmbParams::new(1, 1);
        let s16 = p.schedule(16).total_rounds();
        let s256 = p.schedule(256).total_rounds();
        let s4096 = p.schedule(4096).total_rounds();
        assert!(s256 > s16);
        assert!(s4096 > s256);
        // log^3 growth: doubling log n should scale MIS rounds ~8x, far
        // below linear growth in n (x16 here).
        assert!(s4096 < s256 * 16);
    }

    #[test]
    fn election_rounds_capped_for_huge_networks() {
        let sched = FmmbParams::new(1, 1).schedule(1 << 40);
        assert!(sched.election_rounds <= 126);
    }
}
