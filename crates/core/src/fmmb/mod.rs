//! The Fast Multi-Message Broadcast (FMMB) algorithm (paper Section 4).
//!
//! FMMB runs in the **enhanced** abstract MAC layer (timers, abort,
//! knowledge of `F_prog`) with a grey-zone restricted `G′`, and solves MMB
//! in `O((D·log n + k·log n + log³ n) · F_prog)` rounds w.h.p. — no
//! `F_ack` term at all, which the standard model provably cannot achieve
//! (Theorem 3.17).
//!
//! Time is divided into lock-step rounds of `F_prog + 2` ticks: a node
//! "broadcasting in round `t`" initiates the broadcast at the round start
//! and aborts it at the round end if not yet acknowledged. The algorithm
//! then composes three subroutines over this round structure:
//!
//! 1. **MIS** (`O(log³ n)` rounds, Lemmas 4.3–4.5): phases of a random-bit
//!    election (silent nodes that hear anyone step back; survivors join)
//!    followed by randomized announcements that permanently deactivate
//!    dominated neighbors. Produces a maximal independent set of `G`
//!    w.h.p.
//! 2. **Gather** (`O(k + log n)` three-round periods, Lemma 4.6): active
//!    MIS nodes announce; non-MIS nodes offer one pending message each;
//!    MIS nodes acknowledge — moving every message to some MIS node.
//! 3. **Spread** (`O((D + k) log n)` rounds, Lemmas 4.7–4.8): BMMB over
//!    the overlay `H` (MIS nodes within ≤ 3 `G`-hops), implemented by a
//!    randomized local-broadcast procedure with two-hop relays.
//!
//! See [`FmmbParams`] for how the paper's asymptotic segment lengths map
//! to concrete constants, and [`run_fmmb`] for the harness.

mod harness;
mod node;
mod packet;
mod params;

pub use harness::{run_fmmb, FmmbReport};
pub use node::{Fmmb, MisStatus};
pub use packet::FmmbPacket;
pub use params::{FmmbParams, Schedule, Segment};
