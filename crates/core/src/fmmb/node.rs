//! The FMMB node automaton: lock-step rounds over the enhanced abstract
//! MAC layer, running the MIS, gather, and spread subroutines in sequence
//! (paper Section 4).

use super::packet::FmmbPacket;
use super::params::{Schedule, Segment};
use crate::mmb::{Delivered, MessageId, MmbMessage};
use amac_graph::NodeId;
use amac_mac::{Automaton, Ctx};
use amac_sim::{Duration, SimRng};
use std::collections::{HashSet, VecDeque};

/// A node's MIS status during and after the MIS subroutine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MisStatus {
    /// Still competing (neither joined nor covered).
    Undecided,
    /// Joined the MIS (a dominator).
    InMis,
    /// Permanently inactive: heard an announcement from a `G`-neighbor that
    /// joined the MIS (a dominated node).
    Covered,
}

/// One FMMB process.
///
/// Runs in the **enhanced** abstract MAC layer: it uses `F_prog` knowledge
/// and timers to form lock-step rounds of `F_prog + 2` ticks, and aborts
/// any broadcast still unacknowledged at a round boundary. The paper's
/// analysis needs exactly these powers (Theorem 4.1); the standard model
/// provably cannot match this performance (Theorem 3.17).
///
/// Construction requires the global [`Schedule`] (identical on every node)
/// and a per-node random stream.
#[derive(Debug)]
pub struct Fmmb {
    schedule: Schedule,
    activation_probability: f64,
    use_abort: bool,
    rng: SimRng,
    round: u64,
    broadcast_this_round: bool,
    // --- MIS subroutine state ---
    status: MisStatus,
    temp_inactive: bool,
    joined_this_phase: bool,
    elect_bits: u128,
    mis_finalized: bool,
    // --- round receive buffer ---
    rcvd: Vec<FmmbPacket>,
    // --- message sets (gather + spread) ---
    mv: VecDeque<MmbMessage>,
    mv_ids: HashSet<MessageId>,
    heard_active: bool,
    pending_ack: Option<MmbMessage>,
    // --- spread state ---
    sent_ids: HashSet<MessageId>,
    current_spread: Option<MmbMessage>,
    spread_broadcast_this_phase: bool,
    relay: Option<MmbMessage>,
    // --- delivery bookkeeping ---
    known: HashSet<MessageId>,
}

const ROUND_TIMER: u64 = 0;

impl Fmmb {
    /// Creates an FMMB process with the given global schedule, activation
    /// probability (the `1/Θ(c²)` of the paper), and node-local randomness.
    pub fn new(schedule: Schedule, activation_probability: f64, rng: SimRng) -> Fmmb {
        Fmmb {
            schedule,
            activation_probability,
            use_abort: true,
            rng,
            round: 0,
            broadcast_this_round: false,
            status: MisStatus::Undecided,
            temp_inactive: false,
            joined_this_phase: false,
            elect_bits: 0,
            mis_finalized: false,
            rcvd: Vec::new(),
            mv: VecDeque::new(),
            mv_ids: HashSet::new(),
            heard_active: false,
            pending_ack: None,
            sent_ids: HashSet::new(),
            current_spread: None,
            spread_broadcast_this_phase: false,
            relay: None,
            known: HashSet::new(),
        }
    }

    /// The node's MIS status (final once the MIS segment has ended).
    pub fn mis_status(&self) -> MisStatus {
        self.status
    }

    /// `true` if this node joined the MIS.
    pub fn in_mis(&self) -> bool {
        self.status == MisStatus::InMis
    }

    /// Number of distinct MMB messages this node has learned.
    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    /// `true` if the node has learned message `id`.
    pub fn knows(&self, id: MessageId) -> bool {
        self.known.contains(&id)
    }

    /// The node's current message set `M_v` (owned messages).
    pub fn message_set(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.mv.iter().map(|m| m.id)
    }

    /// Messages this node has spread over the overlay (`M'_v`).
    pub fn spread_sent_count(&self) -> usize {
        self.sent_ids.len()
    }

    /// Disables the abort interface (the paper's ablation): the node never
    /// aborts, so rounds must stretch to `F_ack + 2` ticks to let every
    /// broadcast complete naturally — losing the `F_ack`-independence that
    /// Theorem 4.1 credits to the abort interface.
    pub fn without_abort(mut self) -> Fmmb {
        self.use_abort = false;
        self
    }

    /// Rounds last `F_prog + 2` ticks: strictly longer than `F_prog`, with
    /// one tick of slack so a forced progress delivery (due at
    /// `round start + F_prog + 1` at the latest) lands strictly before the
    /// round-end abort rather than racing it. Without the abort interface
    /// a round must outlast the acknowledgment bound instead.
    fn round_len(&self, ctx: &Ctx<'_, FmmbPacket, Delivered>) -> Duration {
        if self.use_abort {
            ctx.f_prog() + Duration::TICK + Duration::TICK
        } else {
            ctx.f_ack() + Duration::TICK + Duration::TICK
        }
    }

    fn learn(&mut self, m: MmbMessage, ctx: &mut Ctx<'_, FmmbPacket, Delivered>) {
        if self.known.insert(m.id) {
            ctx.output(Delivered(m.id));
        }
    }

    fn is_g_neighbor(ctx: &Ctx<'_, FmmbPacket, Delivered>, from: NodeId) -> bool {
        ctx.reliable_neighbors().contains(&from)
    }

    fn elect_active(&self) -> bool {
        self.status == MisStatus::Undecided && !self.temp_inactive
    }

    fn resample_bits(&mut self) {
        let lo = self.rng.next() as u128;
        let hi = (self.rng.next() as u128) << 64;
        let mask = (1u128 << self.schedule.election_rounds) - 1;
        self.elect_bits = (hi | lo) & mask;
    }

    fn finalize_mis(&mut self) {
        self.mis_finalized = true;
    }

    fn try_bcast(&mut self, pkt: FmmbPacket, ctx: &mut Ctx<'_, FmmbPacket, Delivered>) {
        if !ctx.has_broadcast_in_flight() {
            ctx.bcast(pkt);
            self.broadcast_this_round = true;
        }
    }

    /// Decides this node's action at the start of round `self.round`.
    fn round_start(&mut self, ctx: &mut Ctx<'_, FmmbPacket, Delivered>) {
        let me = ctx.id();
        match self.schedule.segment(self.round) {
            Segment::MisElection { round_in, .. } => {
                if round_in == 0 {
                    self.resample_bits();
                    self.temp_inactive = false;
                }
                if self.elect_active() && (self.elect_bits >> round_in) & 1 == 1 {
                    self.try_bcast(
                        FmmbPacket::Elect {
                            bits: self.elect_bits,
                            from: me,
                        },
                        ctx,
                    );
                }
            }
            Segment::MisAnnounce { .. } => {
                if self.joined_this_phase && self.rng.chance(self.activation_probability) {
                    self.try_bcast(FmmbPacket::MisAnnounce { from: me }, ctx);
                }
            }
            Segment::Gather { round_in, .. } => {
                if !self.mis_finalized {
                    self.finalize_mis();
                }
                match round_in {
                    0 => {
                        self.heard_active = false;
                        self.pending_ack = None;
                        if self.in_mis() && self.rng.chance(self.activation_probability) {
                            self.try_bcast(FmmbPacket::GatherActive { from: me }, ctx);
                        }
                    }
                    1 => {
                        if !self.in_mis() && self.heard_active {
                            if let Some(&m) = self.mv.front() {
                                self.try_bcast(FmmbPacket::GatherMsg { msg: m, from: me }, ctx);
                            }
                        }
                    }
                    _ => {
                        if self.in_mis() {
                            if let Some(m) = self.pending_ack {
                                self.try_bcast(FmmbPacket::GatherAck { msg: m, from: me }, ctx);
                            }
                        }
                    }
                }
            }
            Segment::Spread {
                period, round_in, ..
            } => {
                if !self.mis_finalized {
                    self.finalize_mis();
                }
                match round_in {
                    0 => {
                        if period == 0 {
                            // Phase start: pick one unsent owned message.
                            self.current_spread = self
                                .mv
                                .iter()
                                .find(|m| !self.sent_ids.contains(&m.id))
                                .copied();
                            self.spread_broadcast_this_phase = false;
                        }
                        if self.in_mis() {
                            if let Some(m) = self.current_spread {
                                if self.rng.chance(self.activation_probability) {
                                    self.try_bcast(FmmbPacket::Spread { msg: m, from: me }, ctx);
                                    self.spread_broadcast_this_phase = true;
                                }
                            }
                        }
                    }
                    _ => {
                        if let Some(m) = self.relay.take() {
                            self.try_bcast(FmmbPacket::Spread { msg: m, from: me }, ctx);
                        }
                    }
                }
            }
            Segment::Done => {}
        }
    }

    /// Processes the outcome of the round that just ended (`self.round`).
    fn round_end(&mut self, ctx: &mut Ctx<'_, FmmbPacket, Delivered>) {
        match self.schedule.segment(self.round) {
            Segment::MisElection { round_in, .. } => {
                if self.elect_active() && !self.broadcast_this_round && !self.rcvd.is_empty() {
                    // Heard someone (G or G' neighbor) while silent: step
                    // back for the rest of this phase.
                    self.temp_inactive = true;
                }
                if round_in == self.schedule.election_rounds - 1 && self.elect_active() {
                    self.status = MisStatus::InMis;
                    self.joined_this_phase = true;
                }
            }
            Segment::MisAnnounce { round_in, .. } => {
                if self.status == MisStatus::Undecided {
                    let covered = self.rcvd.iter().any(|p| {
                        matches!(p, FmmbPacket::MisAnnounce { from }
                            if Self::is_g_neighbor(ctx, *from))
                    });
                    if covered {
                        self.status = MisStatus::Covered;
                    }
                }
                if round_in == self.schedule.announce_rounds - 1 {
                    // Phase end: fresh MIS members go quiet; temporarily
                    // inactive nodes reactivate.
                    self.joined_this_phase = false;
                    self.temp_inactive = false;
                }
            }
            Segment::Gather { round_in, .. } => match round_in {
                0 => {
                    self.heard_active = self.rcvd.iter().any(|p| {
                        matches!(p, FmmbPacket::GatherActive { from }
                            if Self::is_g_neighbor(ctx, *from))
                    });
                }
                1 => {
                    if self.in_mis() {
                        // Every offered message from a G-neighbor joins
                        // M_u; only the first is acknowledged in round 3.
                        let offered: Vec<MmbMessage> = self
                            .rcvd
                            .iter()
                            .filter_map(|p| match p {
                                FmmbPacket::GatherMsg { msg, from }
                                    if Self::is_g_neighbor(ctx, *from) =>
                                {
                                    Some(*msg)
                                }
                                _ => None,
                            })
                            .collect();
                        self.pending_ack = offered.first().copied();
                        for m in offered {
                            if self.mv_ids.insert(m.id) {
                                self.mv.push_back(m);
                            }
                        }
                    }
                }
                _ => {
                    if !self.in_mis() {
                        let acked: Vec<MessageId> = self
                            .rcvd
                            .iter()
                            .filter_map(|p| match p {
                                FmmbPacket::GatherAck { msg, from }
                                    if Self::is_g_neighbor(ctx, *from) =>
                                {
                                    Some(msg.id)
                                }
                                _ => None,
                            })
                            .collect();
                        for id in acked {
                            if self.mv_ids.remove(&id) {
                                self.mv.retain(|m| m.id != id);
                            }
                        }
                    }
                    self.heard_active = false;
                    self.pending_ack = None;
                }
            },
            Segment::Spread {
                period, round_in, ..
            } => {
                // Relay rule: the first spread message received this round
                // is rebroadcast next round, within the period. We relay on
                // receipt over G' links too: the adversarial scheduler may
                // attribute a delivery to a G'-only instance even while a
                // G-neighbor broadcasts the same content, and the paper's
                // 7c-radius interference argument (Lemma 4.7) already
                // accommodates relays displaced over grey-zone edges.
                if round_in < 2 {
                    self.relay = self.rcvd.iter().find_map(|p| match p {
                        FmmbPacket::Spread { msg, .. } => Some(*msg),
                        _ => None,
                    });
                } else {
                    self.relay = None;
                }
                let _ = ctx;
                // MIS nodes absorb everything they heard into M_v.
                if self.in_mis() {
                    let heard: Vec<MmbMessage> = self
                        .rcvd
                        .iter()
                        .filter_map(|p| match p {
                            FmmbPacket::Spread { msg, .. } => Some(*msg),
                            _ => None,
                        })
                        .collect();
                    for m in heard {
                        if self.mv_ids.insert(m.id) {
                            self.mv.push_back(m);
                        }
                    }
                }
                // Phase end: mark the phase's message as spread, but only
                // if the node was actually active at least once — a phase
                // in which the activation coin never landed must not
                // silently discard the message (it is retried in a later
                // phase; the paper's w.h.p. analysis makes such phases
                // negligible, an implementation must survive them).
                if period == self.schedule.lb_periods - 1 && round_in == 2 {
                    if let Some(m) = self.current_spread.take() {
                        if self.spread_broadcast_this_phase {
                            self.sent_ids.insert(m.id);
                        }
                    }
                }
            }
            Segment::Done => {}
        }
    }
}

impl Automaton for Fmmb {
    type Msg = FmmbPacket;
    type Env = MmbMessage;
    type Out = Delivered;

    fn on_start(&mut self, ctx: &mut Ctx<'_, FmmbPacket, Delivered>) {
        self.round_start(ctx);
        ctx.set_timer(self.round_len(ctx), ROUND_TIMER);
    }

    fn on_env(&mut self, input: MmbMessage, ctx: &mut Ctx<'_, FmmbPacket, Delivered>) {
        self.learn(input, ctx);
        if self.mv_ids.insert(input.id) {
            self.mv.push_back(input);
        }
    }

    fn on_receive(&mut self, pkt: &FmmbPacket, ctx: &mut Ctx<'_, FmmbPacket, Delivered>) {
        if let Some(m) = pkt.mmb_message() {
            self.learn(m, ctx);
        }
        self.rcvd.push(pkt.clone());
    }

    fn on_ack(&mut self, _msg: &FmmbPacket, _ctx: &mut Ctx<'_, FmmbPacket, Delivered>) {
        // Round bookkeeping happens at the timer; nothing to do here.
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, FmmbPacket, Delivered>) {
        debug_assert_eq!(tag, ROUND_TIMER);
        if ctx.has_broadcast_in_flight() {
            debug_assert!(
                self.use_abort,
                "without abort, rounds outlast F_ack so broadcasts always complete"
            );
            ctx.abort();
        }
        self.round_end(ctx);
        self.rcvd.clear();
        self.broadcast_this_round = false;
        self.round += 1;
        if self.schedule.segment(self.round) != Segment::Done {
            self.round_start(ctx);
            ctx.set_timer(self.round_len(ctx), ROUND_TIMER);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmmb::params::FmmbParams;

    #[test]
    fn fresh_node_state() {
        let sched = FmmbParams::new(1, 1).schedule(8);
        let node = Fmmb::new(sched, 0.25, SimRng::seed(1));
        assert_eq!(node.mis_status(), MisStatus::Undecided);
        assert!(!node.in_mis());
        assert_eq!(node.known_count(), 0);
        assert_eq!(node.spread_sent_count(), 0);
        assert_eq!(node.message_set().count(), 0);
    }

    #[test]
    fn resample_masks_to_election_rounds() {
        let sched = FmmbParams::new(1, 1).schedule(8); // 4*3 = 12 election rounds
        let mut node = Fmmb::new(sched.clone(), 0.25, SimRng::seed(2));
        node.resample_bits();
        assert!(node.elect_bits < (1u128 << sched.election_rounds));
    }
}
