//! The wire format of FMMB: small control packets, each carrying at most
//! one MMB message (respecting the model's constant-messages-per-broadcast
//! rule).

use crate::mmb::MmbMessage;
use amac_graph::NodeId;
use amac_mac::{MacMessage, MessageKey};

/// A packet broadcast by an FMMB node.
///
/// Every variant carries the sender id (`from`), because receivers must
/// distinguish messages arriving from reliable (`G`) neighbors from those
/// arriving over unreliable (`G′ \ G`) links — the model lets nodes tell
/// their neighbor lists apart, and FMMB's subroutines act only on
/// `G`-neighbor traffic.
#[derive(Clone, Debug, PartialEq)]
pub enum FmmbPacket {
    /// MIS election broadcast: the sender's random bit string for the
    /// current phase.
    Elect {
        /// The 4·log n random bits `b(v)`.
        bits: u128,
        /// Sender.
        from: NodeId,
    },
    /// MIS announcement: the sender joined the MIS this phase.
    MisAnnounce {
        /// Sender (a fresh MIS member).
        from: NodeId,
    },
    /// Gather period round 1: an active MIS node announcing itself.
    GatherActive {
        /// Sender (an active MIS node).
        from: NodeId,
    },
    /// Gather period round 2: a non-MIS node offering one of its messages.
    GatherMsg {
        /// The offered MMB message.
        msg: MmbMessage,
        /// Sender (a non-MIS node).
        from: NodeId,
    },
    /// Gather period round 3: an MIS node acknowledging receipt of `msg`.
    GatherAck {
        /// The acknowledged MMB message.
        msg: MmbMessage,
        /// Sender (an MIS node).
        from: NodeId,
    },
    /// Spread segment: an MMB message travelling over the overlay (origin
    /// broadcast or relay hop).
    Spread {
        /// The MMB message being spread.
        msg: MmbMessage,
        /// Sender of this hop (origin MIS node or relay).
        from: NodeId,
    },
}

impl FmmbPacket {
    /// The embedded MMB message, if this packet carries one.
    pub fn mmb_message(&self) -> Option<MmbMessage> {
        match self {
            FmmbPacket::GatherMsg { msg, .. }
            | FmmbPacket::GatherAck { msg, .. }
            | FmmbPacket::Spread { msg, .. } => Some(*msg),
            _ => None,
        }
    }

    /// The sender recorded in the packet.
    pub fn from(&self) -> NodeId {
        match self {
            FmmbPacket::Elect { from, .. }
            | FmmbPacket::MisAnnounce { from }
            | FmmbPacket::GatherActive { from }
            | FmmbPacket::GatherMsg { from, .. }
            | FmmbPacket::GatherAck { from, .. }
            | FmmbPacket::Spread { from, .. } => *from,
        }
    }
}

impl MacMessage for FmmbPacket {
    /// A semantic key mixing the variant, sender, and payload; used only by
    /// adversarial schedulers to recognise repeats.
    fn key(&self) -> MessageKey {
        let (tag, from, payload): (u64, u64, u64) = match self {
            FmmbPacket::Elect { bits, from } => (1, from.index() as u64, *bits as u64),
            FmmbPacket::MisAnnounce { from } => (2, from.index() as u64, 0),
            FmmbPacket::GatherActive { from } => (3, from.index() as u64, 0),
            FmmbPacket::GatherMsg { msg, from } => (4, from.index() as u64, msg.id.0),
            FmmbPacket::GatherAck { msg, from } => (5, from.index() as u64, msg.id.0),
            FmmbPacket::Spread { msg, from } => (6, from.index() as u64, msg.id.0),
        };
        // Simple mix; collisions only blunt adversary heuristics.
        let mut h = tag
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(from.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        h ^= payload.wrapping_mul(0x94D0_49BB_1331_11EB);
        MessageKey(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmb::MessageId;

    fn msg(i: u64) -> MmbMessage {
        MmbMessage {
            id: MessageId(i),
            origin: NodeId::new(0),
        }
    }

    #[test]
    fn embedded_message_extraction() {
        assert_eq!(
            FmmbPacket::Spread {
                msg: msg(3),
                from: NodeId::new(1)
            }
            .mmb_message(),
            Some(msg(3))
        );
        assert_eq!(
            FmmbPacket::GatherMsg {
                msg: msg(4),
                from: NodeId::new(1)
            }
            .mmb_message(),
            Some(msg(4))
        );
        assert_eq!(
            FmmbPacket::Elect {
                bits: 5,
                from: NodeId::new(1)
            }
            .mmb_message(),
            None
        );
        assert_eq!(
            FmmbPacket::MisAnnounce {
                from: NodeId::new(2)
            }
            .mmb_message(),
            None
        );
    }

    #[test]
    fn from_accessor_covers_variants() {
        let v = NodeId::new(7);
        for p in [
            FmmbPacket::Elect { bits: 0, from: v },
            FmmbPacket::MisAnnounce { from: v },
            FmmbPacket::GatherActive { from: v },
            FmmbPacket::GatherMsg {
                msg: msg(1),
                from: v,
            },
            FmmbPacket::GatherAck {
                msg: msg(1),
                from: v,
            },
            FmmbPacket::Spread {
                msg: msg(1),
                from: v,
            },
        ] {
            assert_eq!(p.from(), v);
        }
    }

    #[test]
    fn keys_distinguish_variants_and_payloads() {
        let a = FmmbPacket::GatherMsg {
            msg: msg(1),
            from: NodeId::new(0),
        }
        .key();
        let b = FmmbPacket::GatherAck {
            msg: msg(1),
            from: NodeId::new(0),
        }
        .key();
        let c = FmmbPacket::GatherMsg {
            msg: msg(2),
            from: NodeId::new(0),
        }
        .key();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Same content, same key (so duplicates are recognisable).
        let a2 = FmmbPacket::GatherMsg {
            msg: msg(1),
            from: NodeId::new(0),
        }
        .key();
        assert_eq!(a, a2);
    }
}
