//! FMMB execution harness: builds the per-node automata, runs the
//! schedule, and reports completion plus MIS diagnostics.

use super::node::{Fmmb, MisStatus};
use super::params::FmmbParams;
use crate::harness::RunOptions;
use crate::mmb::{Assignment, CompletionTracker, Delivered};
use amac_graph::{algo, DualGraph, NodeId, NodeSet};
use amac_mac::trace::Trace;
use amac_mac::{
    MacConfig, OnlineStats, OnlineValidator, Policy, RunOutcome, Runtime, TraceObserver,
    ValidationReport,
};
use amac_sim::stats::Counters;
use amac_sim::{SimRng, Time};
use std::fmt;

/// Result of one FMMB run.
#[derive(Clone, Debug)]
pub struct FmmbReport {
    /// Time of the last required delivery, if the problem was solved.
    pub completion: Option<Time>,
    /// Simulated time when the run stopped.
    pub end_time: Time,
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// Required deliveries still missing.
    pub missing: usize,
    /// The MIS computed by the subroutine.
    pub mis: NodeSet,
    /// `true` if the MIS is a maximal independent set of `G` (Lemma 4.5's
    /// w.h.p. guarantee; can be `false` on unlucky seeds).
    pub mis_valid: bool,
    /// Message instances broadcast over the MAC layer.
    pub instances: usize,
    /// MAC-level event counters.
    pub counters: Counters,
    /// Validation report from the streaming validator, when requested.
    pub validation: Option<ValidationReport>,
    /// Peak-memory statistics of the streaming validator, when validation
    /// ran.
    pub validator_stats: Option<OnlineStats>,
    /// The recorded execution trace, when [`RunOptions::keep_trace`] was
    /// set.
    pub trace: Option<Trace>,
    /// Total rounds in the schedule (for round-based accounting).
    pub schedule_rounds: u64,
    /// Per-shard execution statistics when the run was sharded
    /// ([`RunOptions::shards`] ≥ 1), `None` for sequential runs.
    pub shard_stats: Option<amac_sim::ShardStats>,
    /// Deterministic sim-time metrics when [`RunOptions::metrics`] was
    /// set (with the shard diagnostics side channel attached on sharded
    /// runs).
    pub metrics: Option<amac_obs::MetricsReport>,
}

impl FmmbReport {
    /// `true` when the problem was solved, the MIS was valid, and (if
    /// validated) the execution conformed to the model.
    pub fn solved_and_valid(&self) -> bool {
        self.completion.is_some()
            && self.mis_valid
            && self
                .validation
                .as_ref()
                .map_or(true, amac_mac::ValidationReport::is_ok)
    }

    /// Completion time in ticks.
    ///
    /// # Panics
    ///
    /// Panics if the run did not complete.
    pub fn completion_ticks(&self) -> u64 {
        self.completion.expect("FMMB run did not complete").ticks()
    }

    /// Completion time converted to lock-step rounds of `F_prog + 2` ticks.
    pub fn completion_rounds(&self, config: &MacConfig) -> u64 {
        self.completion_ticks() / (config.f_prog().ticks() + 2)
    }
}

impl fmt::Display for FmmbReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.completion {
            Some(t) => write!(f, "solved at t={t}")?,
            None => write!(f, "unsolved ({} deliveries missing)", self.missing)?,
        }
        write!(
            f,
            "; MIS size {} ({}), {} instances",
            self.mis.len(),
            if self.mis_valid { "valid" } else { "INVALID" },
            self.instances
        )
    }
}

/// Runs FMMB over `dual` under the enhanced MAC layer.
///
/// `seed` derives each node's private random stream (`seed.split(node)`),
/// mirroring the paper's up-front randomness model.
///
/// # Panics
///
/// Panics if `config` is not the enhanced variant — FMMB requires timers,
/// abort, and knowledge of `F_prog`.
///
/// # Examples
///
/// ```no_run
/// use amac_core::{run_fmmb, Assignment, FmmbParams, RunOptions};
/// use amac_graph::{generators, NodeId};
/// use amac_mac::{policies::LazyPolicy, MacConfig};
/// use amac_sim::SimRng;
///
/// let mut rng = SimRng::seed(5);
/// let net = generators::connected_grey_zone_network(
///     &generators::GreyZoneConfig::new(40, 4.0),
///     100,
///     &mut rng,
/// )?;
/// let config = MacConfig::from_ticks(2, 50).enhanced();
/// let assignment = Assignment::random(40, 3, &mut rng);
/// let params = FmmbParams::new(3, net.dual.diameter());
/// let report = run_fmmb(
///     &net.dual, config, &assignment, &params, 7,
///     LazyPolicy::new(), &RunOptions::default(),
/// );
/// assert!(report.solved_and_valid());
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
pub fn run_fmmb<P: Policy>(
    dual: &DualGraph,
    config: MacConfig,
    assignment: &Assignment,
    params: &FmmbParams,
    seed: u64,
    policy: P,
    options: &RunOptions,
) -> FmmbReport {
    assert!(
        config.is_enhanced(),
        "FMMB requires the enhanced abstract MAC layer (use MacConfig::enhanced)"
    );
    let n = dual.len();
    let schedule = params.schedule(n);
    let root = SimRng::seed(seed);
    let nodes: Vec<Fmmb> = (0..n)
        .map(|i| {
            let node = Fmmb::new(
                schedule.clone(),
                params.activation_probability,
                root.split(i as u64),
            );
            if params.use_abort {
                node
            } else {
                node.without_abort()
            }
        })
        .collect();

    let mut rt = Runtime::new(dual.clone(), config, nodes, policy);
    if options.shards > 0 {
        rt = rt.with_shards(options.shards);
        if options.shard_threads > 0 {
            rt = rt.with_shard_threads(options.shard_threads);
        }
    }
    let validator = options
        .validate
        .then(|| rt.attach(OnlineValidator::new(dual.clone(), config)));
    let tracer = options.keep_trace.then(|| rt.attach(TraceObserver::new()));
    let recorder =
        crate::harness::attach_recorder(options, dual, config, None).map(|store| rt.attach(store));
    let metrics = crate::harness::make_metrics(options, config).map(|m| rt.attach(m));
    let spans = crate::harness::make_spans(options, dual).map(|s| rt.attach(s));
    if options.metrics {
        rt.enable_shard_profiling();
    }
    for (node, msg) in assignment.arrivals() {
        rt.inject(*node, *msg);
    }

    let mut tracker = CompletionTracker::new(dual, assignment);
    let outcome = loop {
        if options.stop_on_completion && tracker.is_complete() {
            break RunOutcome::Stopped;
        }
        let step_outcome = rt.run_until_next(options.horizon);
        for rec in rt.drain_outputs() {
            let Delivered(id) = rec.out;
            tracker.record(rec.time, rec.node, id);
        }
        if let Some(o) = step_outcome {
            break o;
        }
    };

    let mut mis = NodeSet::new(n);
    for i in 0..n {
        if rt.node(NodeId::new(i)).mis_status() == MisStatus::InMis {
            mis.insert(NodeId::new(i));
        }
    }
    let mis_valid = algo::is_maximal_independent(dual.g(), &mis);

    let mut validator_stats = None;
    let validation = validator.map(|handle| {
        let validator = rt.detach(handle);
        validator_stats = Some(validator.stats());
        validator.into_report(outcome == RunOutcome::Idle)
    });
    let trace = tracer.map(|handle| rt.detach(handle).into_trace());
    if let Some(handle) = recorder {
        crate::harness::finish_recorder(rt.detach(handle), outcome == RunOutcome::Idle);
    }
    let metrics = metrics.map(|handle| {
        rt.detach(handle)
            .into_report()
            .with_shard_diagnostics(rt.shard_stats(), rt.shard_profile())
    });
    if let (Some(handle), Some(path)) = (spans, options.chrome_trace.as_deref()) {
        crate::harness::finish_spans(&rt.detach(handle), path);
    }

    FmmbReport {
        completion: tracker.completed_at(),
        end_time: rt.now(),
        outcome,
        missing: tracker.remaining(),
        mis,
        mis_valid,
        instances: rt.instances_started(),
        counters: rt.counters(),
        validation,
        validator_stats,
        trace,
        schedule_rounds: schedule.total_rounds(),
        shard_stats: rt.shard_stats(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_graph::generators;
    use amac_mac::policies::{EagerPolicy, LazyPolicy};

    fn grey_net(n: usize, side: f64, seed: u64) -> amac_graph::generators::GreyZoneNetwork {
        let mut rng = SimRng::seed(seed);
        generators::connected_grey_zone_network(
            &generators::GreyZoneConfig::new(n, side),
            200,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn fmmb_solves_small_grey_zone_network() {
        let net = grey_net(24, 3.0, 11);
        let config = MacConfig::from_ticks(2, 40).enhanced();
        let mut rng = SimRng::seed(21);
        let assignment = Assignment::random(24, 2, &mut rng);
        let params = FmmbParams::new(2, net.dual.diameter());
        let report = run_fmmb(
            &net.dual,
            config,
            &assignment,
            &params,
            3,
            LazyPolicy::new(),
            &RunOptions::default().stopping_on_completion(),
        );
        assert!(report.mis_valid, "MIS invalid: {report}");
        assert!(report.completion.is_some(), "unsolved: {report}");
    }

    #[test]
    fn fmmb_mis_is_maximal_independent_across_seeds() {
        let net = grey_net(30, 3.5, 4);
        let config = MacConfig::from_ticks(2, 30).enhanced();
        let assignment = Assignment::all_at(NodeId::new(0), 1);
        let params = FmmbParams::new(1, net.dual.diameter());
        let mut ok = 0;
        for seed in 0..5 {
            let report = run_fmmb(
                &net.dual,
                config,
                &assignment,
                &params,
                seed,
                EagerPolicy::new(),
                &RunOptions::fast().stopping_on_completion(),
            );
            if report.mis_valid {
                ok += 1;
            }
        }
        assert!(ok >= 4, "MIS should be valid w.h.p., got {ok}/5");
    }

    #[test]
    #[should_panic(expected = "enhanced abstract MAC layer")]
    fn standard_config_rejected() {
        let net = grey_net(10, 2.0, 1);
        let config = MacConfig::from_ticks(2, 20); // standard!
        let assignment = Assignment::all_at(NodeId::new(0), 1);
        let params = FmmbParams::new(1, net.dual.diameter());
        run_fmmb(
            &net.dual,
            config,
            &assignment,
            &params,
            0,
            EagerPolicy::new(),
            &RunOptions::fast(),
        );
    }
}
