//! # amac-core — multi-message broadcast algorithms
//!
//! The algorithmic heart of the PODC 2014 reproduction: the
//! **multi-message broadcast (MMB)** problem and the paper's two
//! algorithms, running over the abstract MAC layer of [`amac_mac`].
//!
//! * [`Bmmb`] — Basic Multi-Message Broadcast (Section 3): FIFO flooding
//!   with duplicate suppression, for the *standard* MAC layer. Analyzed
//!   bounds: `O((D+k)·F_ack)` for arbitrary `G′` (Theorem 3.1),
//!   `O(D·F_prog + r·k·F_ack)` for `r`-restricted `G′` (Theorem 3.2), and
//!   the exact Theorem 3.16 deadline in [`bounds`].
//! * [`Fmmb`] — Fast Multi-Message Broadcast (Section 4): MIS + gather +
//!   overlay spread in the *enhanced* MAC layer with grey-zone `G′`,
//!   achieving `O((D log n + k log n + log³ n)·F_prog)` w.h.p.
//! * [`Assignment`] / [`CompletionTracker`] — problem definition:
//!   assignments, delivery tracking, per-component completion.
//! * [`bounds`] — closed-form formulas for every Figure 1 cell.
//! * [`run_bmmb`] / [`run_fmmb`] — one-call experiment harnesses with
//!   model-conformance validation.
//!
//! ## Quick start
//!
//! ```
//! use amac_core::{run_bmmb, Assignment, RunOptions};
//! use amac_graph::{generators, DualGraph, NodeId};
//! use amac_mac::{policies::LazyPolicy, MacConfig};
//!
//! // Flood 3 messages from node 0 down a 12-node line under the
//! // worst-case scheduler; the run is checked against the MAC model.
//! let dual = DualGraph::reliable(generators::line(12)?);
//! let report = run_bmmb(
//!     &dual,
//!     MacConfig::from_ticks(2, 40),
//!     &Assignment::all_at(NodeId::new(0), 3),
//!     LazyPolicy::new().prefer_duplicates(),
//!     &RunOptions::default(),
//! );
//! assert!(report.solved_and_valid());
//! println!("completed at t = {}", report.completion_ticks());
//! # Ok::<(), amac_graph::GraphError>(())
//! ```

mod bmmb;
pub mod bounds;
mod fmmb;
mod harness;
mod mmb;

pub use bmmb::Bmmb;
pub use fmmb::{run_fmmb, Fmmb, FmmbPacket, FmmbParams, FmmbReport, MisStatus, Schedule, Segment};
pub use harness::{
    attach_recorder, finish_recorder, finish_spans, make_metrics, make_spans, run_bmmb, run_mmb,
    MmbReport, RunOptions,
};
pub use mmb::{Assignment, CompletionTracker, Delivered, MessageId, MmbMessage};
