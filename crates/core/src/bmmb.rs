//! The Basic Multi-Message Broadcast (BMMB) protocol (paper Section 3).
//!
//! Every process keeps a FIFO queue `bcastq` and a set `rcvd`. On first
//! learning a message (environment `arrive` or MAC `rcv`), it delivers the
//! message locally and appends it to `bcastq`; duplicates are discarded.
//! Whenever it is not waiting for an acknowledgment and `bcastq` is
//! non-empty, it immediately broadcasts the head and waits for the ack.
//!
//! BMMB runs in the **standard** abstract MAC layer: it is purely event
//! driven, uses no clocks, no aborts, and no knowledge of the timing
//! constants. Its guarantees (all proved in the paper, reproduced by the
//! experiments in `amac-bench`):
//!
//! * arbitrary `G′`: `O((D + k) · F_ack)` (Theorem 3.1);
//! * `r`-restricted `G′`: `O(D·F_prog + r·k·F_ack)`, concretely
//!   `t₁ = (D + (r+1)k − 2)·F_prog + r(k−1)·F_ack` (Theorem 3.16);
//! * `G′ = G`: `O(D·F_prog + k·F_ack)` (prior work, subsumed by `r = 1`).

use crate::mmb::{Delivered, MessageId, MmbMessage};
use amac_mac::{Automaton, Ctx};
use amac_sim::FastHashSet;
use std::collections::VecDeque;

/// One BMMB process (node automaton).
///
/// # Examples
///
/// ```
/// use amac_core::{Assignment, Bmmb};
/// use amac_graph::{generators, DualGraph, NodeId};
/// use amac_mac::{policies::LazyPolicy, MacConfig, Runtime};
///
/// let dual = DualGraph::reliable(generators::line(6)?);
/// let cfg = MacConfig::from_ticks(2, 24);
/// let nodes = (0..6).map(|_| Bmmb::new()).collect();
/// let mut rt = Runtime::new(dual, cfg, nodes, LazyPolicy::new());
/// for (node, msg) in Assignment::all_at(NodeId::new(0), 2).arrivals() {
///     rt.inject(*node, *msg);
/// }
/// rt.run();
/// assert_eq!(rt.outputs().len(), 2 * 6, "2 messages delivered at 6 nodes");
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
#[derive(Debug, Default)]
pub struct Bmmb {
    bcastq: VecDeque<MmbMessage>,
    rcvd: FastHashSet<MessageId>,
    sent: FastHashSet<MessageId>,
}

impl Bmmb {
    /// Creates a BMMB process with empty queue and received set.
    pub fn new() -> Bmmb {
        Bmmb::default()
    }

    /// `true` if this process has learned message `id` (the `rcvd` set).
    pub fn has_received(&self, id: MessageId) -> bool {
        self.rcvd.contains(&id)
    }

    /// `true` if this process has broadcast and been acked for `id` (the
    /// *sent set* used in the proof of Theorem 3.1).
    pub fn has_sent(&self, id: MessageId) -> bool {
        self.sent.contains(&id)
    }

    /// Number of messages learned so far (`|R_i(t)|` in the paper).
    pub fn received_count(&self) -> usize {
        self.rcvd.len()
    }

    /// Number of messages completed so far (`|C_i(t)|` in the paper).
    pub fn sent_count(&self) -> usize {
        self.sent.len()
    }

    /// Current queue length (`R_i − C_i` by Lemma 3.6).
    pub fn queue_len(&self) -> usize {
        self.bcastq.len()
    }

    /// Learns a message: deliver it, enqueue it, and broadcast if idle.
    fn learn(&mut self, msg: MmbMessage, ctx: &mut Ctx<'_, MmbMessage, Delivered>) {
        if !self.rcvd.insert(msg.id) {
            return; // duplicate: discard
        }
        ctx.output(Delivered(msg.id));
        self.bcastq.push_back(msg);
        self.pump(ctx);
    }

    /// Broadcasts the queue head when no broadcast is in flight.
    fn pump(&mut self, ctx: &mut Ctx<'_, MmbMessage, Delivered>) {
        if !ctx.has_broadcast_in_flight() {
            if let Some(&head) = self.bcastq.front() {
                ctx.bcast(head);
            }
        }
    }
}

impl Automaton for Bmmb {
    type Msg = MmbMessage;
    type Env = MmbMessage;
    type Out = Delivered;

    fn on_env(&mut self, input: MmbMessage, ctx: &mut Ctx<'_, MmbMessage, Delivered>) {
        self.learn(input, ctx);
    }

    fn on_receive(&mut self, msg: &MmbMessage, ctx: &mut Ctx<'_, MmbMessage, Delivered>) {
        self.learn(*msg, ctx);
    }

    fn on_ack(&mut self, msg: &MmbMessage, ctx: &mut Ctx<'_, MmbMessage, Delivered>) {
        let head = self
            .bcastq
            .pop_front()
            .expect("ack with empty bcastq is impossible for BMMB");
        debug_assert_eq!(head.id, msg.id, "acks follow queue order");
        self.sent.insert(head.id);
        self.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmb::Assignment;
    use amac_graph::{generators, DualGraph, NodeId};
    use amac_mac::{policies, validate, MacConfig, Runtime};

    fn run_line(
        n: usize,
        assignment: &Assignment,
        policy: impl amac_mac::Policy,
    ) -> Runtime<Bmmb, impl amac_mac::Policy> {
        let dual = DualGraph::reliable(generators::line(n).unwrap());
        let cfg = MacConfig::from_ticks(2, 24);
        let nodes = (0..n).map(|_| Bmmb::new()).collect();
        let mut rt = Runtime::new(dual, cfg, nodes, policy).tracing();
        for (node, msg) in assignment.arrivals() {
            rt.inject(*node, *msg);
        }
        rt.run();
        rt
    }

    #[test]
    fn single_message_floods_line() {
        let a = Assignment::all_at(NodeId::new(0), 1);
        let rt = run_line(8, &a, policies::EagerPolicy::new());
        for i in 0..8 {
            assert!(rt.node(NodeId::new(i)).has_received(MessageId(0)));
            assert!(rt.node(NodeId::new(i)).has_sent(MessageId(0)));
            assert_eq!(rt.node(NodeId::new(i)).queue_len(), 0);
        }
        assert_eq!(rt.outputs().len(), 8);
    }

    #[test]
    fn duplicates_are_discarded() {
        let a = Assignment::all_at(NodeId::new(0), 1);
        let rt = run_line(4, &a, policies::EagerPolicy::new());
        // Exactly one deliver output per node despite multiple receptions.
        assert_eq!(rt.outputs().len(), 4);
        assert_eq!(rt.node(NodeId::new(1)).received_count(), 1);
    }

    #[test]
    fn multiple_messages_complete_under_lazy_scheduler() {
        let a = Assignment::all_at(NodeId::new(0), 3);
        let rt = run_line(5, &a, policies::LazyPolicy::new().prefer_duplicates());
        assert_eq!(rt.outputs().len(), 15);
        let trace = rt.trace().unwrap();
        let report = validate(trace, rt.dual(), rt.config(), true);
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn fifo_queue_order_is_respected() {
        // All messages at node 0; acks must pop in FIFO order (checked by
        // the debug_assert in on_ack) and the sent set must fill up.
        let a = Assignment::all_at(NodeId::new(0), 5);
        let rt = run_line(3, &a, policies::RandomPolicy::new(7));
        let n0 = rt.node(NodeId::new(0));
        assert_eq!(n0.sent_count(), 5);
        assert_eq!(n0.queue_len(), 0);
    }

    #[test]
    fn works_on_disconnected_topology() {
        let g = amac_graph::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let dual = DualGraph::reliable(g);
        let cfg = MacConfig::from_ticks(2, 24);
        let nodes = (0..4).map(|_| Bmmb::new()).collect();
        let mut rt = Runtime::new(dual, cfg, nodes, policies::EagerPolicy::new());
        rt.inject(
            NodeId::new(0),
            MmbMessage {
                id: MessageId(0),
                origin: NodeId::new(0),
            },
        );
        rt.run();
        assert!(rt.node(NodeId::new(1)).has_received(MessageId(0)));
        assert!(!rt.node(NodeId::new(2)).has_received(MessageId(0)));
    }

    #[test]
    fn unreliable_shortcuts_may_speed_up_but_never_break() {
        let g = generators::line(10).unwrap();
        let dual = generators::long_range_augment(g, 3).unwrap();
        let cfg = MacConfig::from_ticks(2, 24);
        let nodes = (0..10).map(|_| Bmmb::new()).collect();
        let mut rt = Runtime::new(
            dual.clone(),
            cfg,
            nodes,
            policies::EagerPolicy::new().with_unreliable(1.0, 5),
        )
        .tracing();
        rt.inject(
            NodeId::new(0),
            MmbMessage {
                id: MessageId(0),
                origin: NodeId::new(0),
            },
        );
        rt.run();
        assert_eq!(rt.outputs().len(), 10);
        let report = validate(rt.trace().unwrap(), &dual, rt.config(), true);
        assert!(report.is_ok(), "{report}");
    }
}
