//! The multi-message broadcast (MMB) problem: messages, arrival
//! assignments, and completion tracking (paper Section 2).

use amac_graph::{algo, DualGraph, NodeId, NodeSet};
use amac_mac::{MacMessage, MessageKey};
use amac_sim::{FastHashMap, SimRng, Time};
use std::fmt;

/// Identity of one of the `k` MMB messages.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

impl fmt::Debug for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An MMB message: an opaque black box with an identity and an origin.
///
/// The paper treats messages as uncombinable black boxes (no network
/// coding) of which only a constant number fit in one local broadcast; our
/// algorithms broadcast exactly one per packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MmbMessage {
    /// Unique message identity.
    pub id: MessageId,
    /// The node the environment injected this message at.
    pub origin: NodeId,
}

impl MacMessage for MmbMessage {
    fn key(&self) -> MessageKey {
        MessageKey(self.id.0)
    }
}

/// Problem-level output: a node completed a `deliver(m)` event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivered(pub MessageId);

/// The environment's plan: which node receives which message at time 0.
///
/// # Examples
///
/// ```
/// use amac_core::Assignment;
/// use amac_graph::NodeId;
///
/// // Three messages all starting at node 0.
/// let a = Assignment::all_at(NodeId::new(0), 3);
/// assert_eq!(a.k(), 3);
/// assert_eq!(a.arrivals()[2].0, NodeId::new(0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    arrivals: Vec<(NodeId, MmbMessage)>,
}

impl Assignment {
    /// Builds an assignment from explicit `(node, message id)` pairs; the
    /// message origin is set to the assigned node.
    pub fn new<I: IntoIterator<Item = (NodeId, MessageId)>>(items: I) -> Assignment {
        Assignment {
            arrivals: items
                .into_iter()
                .map(|(node, id)| (node, MmbMessage { id, origin: node }))
                .collect(),
        }
    }

    /// All `k` messages start at a single node.
    pub fn all_at(node: NodeId, k: usize) -> Assignment {
        Assignment::new((0..k as u64).map(|i| (node, MessageId(i))))
    }

    /// One message per listed node, ids in list order — the paper's
    /// *singleton assignment* (no node starts with more than one message).
    pub fn singleton<I: IntoIterator<Item = NodeId>>(nodes: I) -> Assignment {
        Assignment::new(
            nodes
                .into_iter()
                .enumerate()
                .map(|(i, node)| (node, MessageId(i as u64))),
        )
    }

    /// `k` messages at uniformly random nodes of an `n`-node network.
    pub fn random(n: usize, k: usize, rng: &mut SimRng) -> Assignment {
        Assignment::new(
            (0..k as u64).map(|i| (NodeId::new(rng.below(n as u64) as usize), MessageId(i))),
        )
    }

    /// The number of messages `k`.
    pub fn k(&self) -> usize {
        self.arrivals.len()
    }

    /// The planned arrivals.
    pub fn arrivals(&self) -> &[(NodeId, MmbMessage)] {
        &self.arrivals
    }

    /// Iterates over the distinct message ids in the assignment.
    pub fn message_ids(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.arrivals.iter().map(|(_, m)| m.id)
    }
}

/// Tracks MMB completion: the problem is solved once every message `m`
/// starting at node `u` has been delivered at every node of `u`'s
/// `G`-component (the paper does **not** assume `G` connected).
///
/// Feed it `(time, node, message)` delivery events (in any order within a
/// run; times must be non-decreasing for the completion timestamp to be
/// exact) and query [`is_complete`](CompletionTracker::is_complete).
#[derive(Clone, Debug)]
pub struct CompletionTracker {
    /// Per message: the set of nodes that still must deliver it.
    outstanding: FastHashMap<MessageId, NodeSet>,
    remaining_total: usize,
    completed_at: Option<Time>,
    duplicates: usize,
}

impl CompletionTracker {
    /// Builds the obligation sets for `assignment` over `dual`'s reliable
    /// layer.
    pub fn new(dual: &DualGraph, assignment: &Assignment) -> CompletionTracker {
        let mut outstanding = FastHashMap::default();
        let mut remaining_total = 0;
        for (node, msg) in assignment.arrivals() {
            let comp = algo::component_of(dual.g(), *node);
            remaining_total += comp.len();
            outstanding.insert(msg.id, comp);
        }
        CompletionTracker {
            outstanding,
            remaining_total,
            completed_at: None,
            duplicates: 0,
        }
    }

    /// Records a delivery. Returns `true` if this was a required, novel
    /// delivery.
    pub fn record(&mut self, time: Time, node: NodeId, id: MessageId) -> bool {
        let Some(set) = self.outstanding.get_mut(&id) else {
            self.duplicates += 1;
            return false;
        };
        if node.index() < set.capacity() && set.remove(node) {
            self.remaining_total -= 1;
            if self.remaining_total == 0 {
                self.completed_at = Some(time);
            }
            true
        } else {
            self.duplicates += 1;
            false
        }
    }

    /// `true` once every required delivery happened.
    pub fn is_complete(&self) -> bool {
        self.remaining_total == 0
    }

    /// The time of the last required delivery, if complete.
    pub fn completed_at(&self) -> Option<Time> {
        self.completed_at
    }

    /// Number of required deliveries still missing.
    pub fn remaining(&self) -> usize {
        self.remaining_total
    }

    /// Deliveries that were not required (repeats or off-component).
    pub fn duplicates(&self) -> usize {
        self.duplicates
    }

    /// The nodes still missing message `id` (`None` if `id` is unknown).
    pub fn missing_for(&self, id: MessageId) -> Option<&NodeSet> {
        self.outstanding.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_graph::generators;

    fn line_dual(n: usize) -> DualGraph {
        DualGraph::reliable(generators::line(n).unwrap())
    }

    #[test]
    fn assignment_constructors() {
        let a = Assignment::all_at(NodeId::new(2), 4);
        assert_eq!(a.k(), 4);
        assert!(a.arrivals().iter().all(|(n, _)| *n == NodeId::new(2)));

        let s = Assignment::singleton([NodeId::new(0), NodeId::new(3)]);
        assert_eq!(s.k(), 2);
        assert_eq!(
            s.arrivals()[1],
            (
                NodeId::new(3),
                MmbMessage {
                    id: MessageId(1),
                    origin: NodeId::new(3),
                }
            )
        );

        let mut rng = SimRng::seed(1);
        let r = Assignment::random(10, 5, &mut rng);
        assert_eq!(r.k(), 5);
        assert!(r.arrivals().iter().all(|(n, _)| n.index() < 10));
    }

    #[test]
    fn message_key_is_id() {
        let m = MmbMessage {
            id: MessageId(9),
            origin: NodeId::new(0),
        };
        assert_eq!(m.key(), MessageKey(9));
    }

    #[test]
    fn tracker_completes_when_component_covered() {
        let dual = line_dual(3);
        let a = Assignment::all_at(NodeId::new(0), 1);
        let mut t = CompletionTracker::new(&dual, &a);
        assert_eq!(t.remaining(), 3);
        assert!(!t.is_complete());
        assert!(t.record(Time::from_ticks(1), NodeId::new(0), MessageId(0)));
        assert!(t.record(Time::from_ticks(2), NodeId::new(1), MessageId(0)));
        assert!(!t.is_complete());
        assert!(t.record(Time::from_ticks(5), NodeId::new(2), MessageId(0)));
        assert!(t.is_complete());
        assert_eq!(t.completed_at(), Some(Time::from_ticks(5)));
    }

    #[test]
    fn tracker_counts_duplicates() {
        let dual = line_dual(2);
        let a = Assignment::all_at(NodeId::new(0), 1);
        let mut t = CompletionTracker::new(&dual, &a);
        t.record(Time::ZERO, NodeId::new(0), MessageId(0));
        t.record(Time::ZERO, NodeId::new(0), MessageId(0));
        t.record(Time::ZERO, NodeId::new(1), MessageId(99));
        assert_eq!(t.duplicates(), 2);
    }

    #[test]
    fn tracker_scopes_to_origin_component() {
        // Disconnected G: nodes {0,1} and {2,3}; message starts at 0.
        let g = amac_graph::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let dual = DualGraph::reliable(g);
        let a = Assignment::all_at(NodeId::new(0), 1);
        let mut t = CompletionTracker::new(&dual, &a);
        assert_eq!(t.remaining(), 2, "only the origin component is required");
        t.record(Time::ZERO, NodeId::new(0), MessageId(0));
        // Delivery at an off-component node is not required.
        assert!(!t.record(Time::ZERO, NodeId::new(3), MessageId(0)));
        t.record(Time::from_ticks(1), NodeId::new(1), MessageId(0));
        assert!(t.is_complete());
        assert!(t.missing_for(MessageId(0)).unwrap().is_empty());
    }
}
