//! Closed-form bound calculators for every cell of the paper's Figure 1.
//!
//! These are the formulas the experiment harness fits measured completion
//! times against. Upper bounds omit the big-O constant (the experiments
//! report the measured constant); the `r`-restricted case additionally has
//! the paper's *exact* Theorem 3.16 expression.

use amac_mac::MacConfig;
use amac_sim::Duration;

/// `D·F_prog + k·F_ack` — BMMB with `G′ = G` (Figure 1, standard/`G′=G`,
/// from prior work \[KLN11\]).
pub fn bmmb_reliable(d: usize, k: usize, config: &MacConfig) -> Duration {
    config.f_prog() * d as u64 + config.f_ack() * k as u64
}

/// `(D + k)·F_ack` — BMMB with arbitrary (or grey zone) `G′`
/// (Theorem 3.1); also the matching lower bound of Theorem 3.17.
pub fn bmmb_arbitrary(d: usize, k: usize, config: &MacConfig) -> Duration {
    config.f_ack() * (d + k) as u64
}

/// `D·F_prog + r·k·F_ack` — BMMB with an `r`-restricted `G′`
/// (Theorem 3.2, asymptotic form).
pub fn bmmb_r_restricted(d: usize, k: usize, r: usize, config: &MacConfig) -> Duration {
    config.f_prog() * d as u64 + config.f_ack() * (r * k) as u64
}

/// The exact Theorem 3.16 deadline
/// `t₁ = (D + (r+1)·k − 2)·F_prog + r·(k−1)·F_ack`: all `k ≤ |K|` messages
/// are received everywhere by `t₁`.
pub fn bmmb_r_restricted_exact(d: usize, k: usize, r: usize, config: &MacConfig) -> Duration {
    let prog_steps = (d + (r + 1) * k).saturating_sub(2) as u64;
    let ack_steps = (r * k.saturating_sub(1)) as u64;
    config.f_prog() * prog_steps + config.f_ack() * ack_steps
}

/// `(D·log n + k·log n + log³ n)·F_prog` — FMMB in the enhanced model with
/// grey zone `G′` (Theorem 4.1), no `F_ack` term.
pub fn fmmb_enhanced(n: usize, d: usize, k: usize, config: &MacConfig) -> Duration {
    let lg = log2_ceil(n).max(1);
    let rounds = (d as u64) * lg + (k as u64) * lg + lg * lg * lg;
    config.f_prog() * rounds
}

/// `Ω(k·F_ack)` choke-point lower bound (Lemma 3.18), reported as
/// `k·F_ack`.
pub fn lower_choke(k: usize, config: &MacConfig) -> Duration {
    config.f_ack() * k as u64
}

/// `Ω(D·F_ack)` grey-zone lower bound (Lemmas 3.19–3.20), reported as
/// `D·F_ack`.
pub fn lower_grey_zone(d: usize, config: &MacConfig) -> Duration {
    config.f_ack() * d as u64
}

/// `⌈log₂ n⌉`, with `log2_ceil(0) = 0` and `log2_ceil(1) = 0`.
pub fn log2_ceil(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MacConfig {
        MacConfig::from_ticks(2, 40)
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn reliable_bound_formula() {
        // 10*2 + 3*40 = 140
        assert_eq!(bmmb_reliable(10, 3, &cfg()).ticks(), 140);
    }

    #[test]
    fn arbitrary_bound_formula() {
        assert_eq!(bmmb_arbitrary(10, 3, &cfg()).ticks(), 13 * 40);
    }

    #[test]
    fn r_restricted_bounds() {
        // asymptotic: 10*2 + 2*3*40 = 260
        assert_eq!(bmmb_r_restricted(10, 3, 2, &cfg()).ticks(), 260);
        // exact: (10 + 3*3 - 2)*2 + 2*2*40 = 34 + 160 = 194
        assert_eq!(bmmb_r_restricted_exact(10, 3, 2, &cfg()).ticks(), 194);
        // k = 0 edge: no ack term, saturating prog term
        assert_eq!(bmmb_r_restricted_exact(1, 0, 2, &cfg()).ticks(), 0);
    }

    #[test]
    fn r_one_exact_matches_reliable_shape() {
        // r = 1: t1 = (D + 2k - 2) Fprog + (k-1) Fack — same asymptotic
        // shape as the G' = G bound.
        let t = bmmb_r_restricted_exact(10, 3, 1, &cfg());
        assert_eq!(t.ticks(), (10 + 6 - 2) * 2 + 2 * 40);
    }

    #[test]
    fn fmmb_bound_has_no_ack_term() {
        let a = fmmb_enhanced(64, 10, 5, &MacConfig::from_ticks(2, 40));
        let b = fmmb_enhanced(64, 10, 5, &MacConfig::from_ticks(2, 4000));
        assert_eq!(a, b, "F_ack must not appear in the FMMB bound");
        // (10*6 + 5*6 + 216) * 2 = (60 + 30 + 216) * 2
        assert_eq!(a.ticks(), 306 * 2);
    }

    #[test]
    fn lower_bound_formulas() {
        assert_eq!(lower_choke(5, &cfg()).ticks(), 200);
        assert_eq!(lower_grey_zone(7, &cfg()).ticks(), 280);
    }
}
