//! End-to-end MMB execution harness: wires an algorithm, a topology, an
//! assignment, and a scheduler policy into one run and reports completion
//! metrics.

use crate::bmmb::Bmmb;
use crate::mmb::{Assignment, CompletionTracker, Delivered};
use amac_graph::{DualGraph, NodeId};
use amac_mac::trace::Trace;
use amac_mac::{
    Automaton, MacConfig, OnlineStats, OnlineValidator, Policy, RunOutcome, Runtime, TraceObserver,
    ValidationReport,
};
use amac_sim::stats::Counters;
use amac_sim::Time;
use std::fmt;
use std::path::{Path, PathBuf};

/// Options controlling a harness run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Check the execution against the MAC model by attaching a streaming
    /// [`OnlineValidator`] — O(in-flight) memory, no trace retention, so
    /// it is cheap enough to leave on for large sweeps.
    pub validate: bool,
    /// Attach a [`TraceObserver`] and return the recorded [`Trace`] in the
    /// report (for post-mortem inspection of outlier executions). This is
    /// the only option that retains O(events) state.
    pub keep_trace: bool,
    /// Stop as soon as the MMB problem is solved (all required deliveries
    /// happened) instead of running the algorithm to quiescence.
    pub stop_on_completion: bool,
    /// Hard time horizon; the run stops when the next event would exceed
    /// it.
    pub horizon: Time,
    /// Record the execution to this trace file by attaching a streaming
    /// [`amac_store::StoreObserver`] — O(1) memory, every MAC event and
    /// fault goes to disk in emission order, replayable with
    /// `repro replay` (see `docs/TRACE_FORMAT.md`).
    pub record: Option<PathBuf>,
    /// Seed stamped into a recorded trace's header (purely metadata: it
    /// identifies which seeded execution the file holds). Ignored without
    /// [`record`](RunOptions::record).
    pub record_seed: u64,
    /// Number of event-queue shards: `0` (the default) runs the classic
    /// sequential runtime; `k ≥ 1` runs the sharded runtime
    /// ([`Runtime::with_shards`]) with `k` conservative time-windowed
    /// shards. The execution is byte-identical either way — sharding
    /// changes how events are queued, never what happens.
    pub shards: usize,
    /// Worker threads for the sharded queue's window barrier
    /// ([`Runtime::with_shard_threads`]): `0` (the default) keeps the
    /// fused single-core drain; `t ≥ 1` integrates and extracts the K
    /// shards' windows on up to `t` scoped threads (clamped to the shard
    /// count) with adaptive window widths. Like
    /// [`shards`](RunOptions::shards), this never changes a delivered
    /// byte — byte-identity holds for every `(shards, shard_threads)`.
    /// Ignored when `shards == 0`.
    pub shard_threads: usize,
    /// Attach a streaming [`amac_obs::MetricsObserver`] and return its
    /// [`amac_obs::MetricsReport`] in the report: sim-time latency/slack
    /// histograms,
    /// per-node counters, and the in-flight depth series. On sharded runs
    /// this also enables the queue's wall-clock self-profiling, delivered
    /// in the report's nondeterministic side channel.
    pub metrics: bool,
    /// Attach an [`amac_obs::SpanObserver`] and export the execution's
    /// span timeline as Chrome trace-event JSON (Perfetto-loadable) to
    /// this file when the run finishes.
    pub chrome_trace: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            validate: true,
            keep_trace: false,
            stop_on_completion: false,
            horizon: Time::MAX,
            record: None,
            record_seed: 0,
            shards: 0,
            shard_threads: 0,
            metrics: false,
            chrome_trace: None,
        }
    }
}

impl RunOptions {
    /// Default options but without post-hoc validation (for large sweeps).
    pub fn fast() -> RunOptions {
        RunOptions {
            validate: false,
            ..RunOptions::default()
        }
    }

    /// Keeps the recorded trace in the report **and** validates the
    /// execution — the post-mortem bundle the experiment engine captures
    /// for outlier trials (the trace to inspect, the validation verdict
    /// alongside).
    pub fn capturing_trace(mut self) -> RunOptions {
        self.keep_trace = true;
        self.validate = true;
        self
    }

    /// Stops the simulation at the moment of MMB completion.
    pub fn stopping_on_completion(mut self) -> RunOptions {
        self.stop_on_completion = true;
        self
    }

    /// Sets the time horizon.
    pub fn with_horizon(mut self, horizon: Time) -> RunOptions {
        self.horizon = horizon;
        self
    }

    /// Records the execution to the trace file at `path`, stamping `seed`
    /// into its header (see [`RunOptions::record`]).
    pub fn recording(mut self, path: impl AsRef<Path>, seed: u64) -> RunOptions {
        self.record = Some(path.as_ref().to_path_buf());
        self.record_seed = seed;
        self
    }

    /// Runs on `shards` event-queue shards (see [`RunOptions::shards`]);
    /// `0` restores the sequential runtime.
    pub fn with_shards(mut self, shards: usize) -> RunOptions {
        self.shards = shards;
        self
    }

    /// Drains the sharded queue's windows on up to `threads` scoped
    /// worker threads (see [`RunOptions::shard_threads`]); `0` restores
    /// the fused single-core drain. No effect unless
    /// [`with_shards`](RunOptions::with_shards) is also set.
    pub fn with_shard_threads(mut self, threads: usize) -> RunOptions {
        self.shard_threads = threads;
        self
    }

    /// Collects deterministic sim-time metrics (see
    /// [`RunOptions::metrics`]).
    pub fn with_metrics(mut self) -> RunOptions {
        self.metrics = true;
        self
    }

    /// Exports the span timeline as Chrome trace-event JSON to `path`
    /// when the run finishes (see [`RunOptions::chrome_trace`]).
    pub fn with_chrome_trace(mut self, path: impl AsRef<Path>) -> RunOptions {
        self.chrome_trace = Some(path.as_ref().to_path_buf());
        self
    }
}

/// Attaches a [`StoreObserver`](amac_store::StoreObserver) per
/// `options.record` to a freshly built runtime; shared by every harness
/// (MMB here, FMMB, and the `amac-proto` services).
///
/// # Panics
///
/// Panics when the trace file cannot be created — recording was
/// explicitly requested, so a silently-skipped recording would be worse
/// than stopping.
#[doc(hidden)]
pub fn attach_recorder(
    options: &RunOptions,
    dual: &amac_graph::DualGraph,
    config: MacConfig,
    faults: Option<&amac_mac::FaultPlan>,
) -> Option<amac_store::StoreObserver> {
    options.record.as_deref().map(|path| {
        amac_store::StoreObserver::create(path, dual, config, options.record_seed, faults)
            .unwrap_or_else(|e| panic!("cannot record trace to {}: {e}", path.display()))
    })
}

/// Finalizes a recording detached from the runtime (writes the End
/// record, flushes).
///
/// # Panics
///
/// Panics when the file cannot be sealed — an unfinished recording is an
/// unreadable file.
#[doc(hidden)]
pub fn finish_recorder(store: amac_store::StoreObserver, quiescent: bool) {
    if let Err(e) = store.finish(quiescent) {
        panic!("cannot finalize trace recording: {e}");
    }
}

/// Builds a [`MetricsObserver`](amac_obs::MetricsObserver) per
/// `options.metrics`; shared by every harness.
#[doc(hidden)]
pub fn make_metrics(options: &RunOptions, config: MacConfig) -> Option<amac_obs::MetricsObserver> {
    options
        .metrics
        .then(|| amac_obs::MetricsObserver::new(config))
}

/// Builds a [`SpanObserver`](amac_obs::SpanObserver) per
/// `options.chrome_trace`. On sharded runs the observer gets the same
/// contiguous node partition [`Runtime::with_shards`] uses, so spans
/// render one Perfetto track per shard.
#[doc(hidden)]
pub fn make_spans(
    options: &RunOptions,
    dual: &amac_graph::DualGraph,
) -> Option<amac_obs::SpanObserver> {
    options.chrome_trace.as_ref().map(|_| {
        let mut spans = amac_obs::SpanObserver::new();
        if options.shards > 0 {
            let k = options.shards.min(amac_sim::MAX_SHARDS);
            let part = amac_graph::partition::contiguous(dual, k);
            let tracks = (0..dual.len())
                .map(|i| part.shard_of(NodeId::new(i)) as u32)
                .collect();
            spans = spans.with_tracks(tracks);
        }
        spans
    })
}

/// Writes a detached [`SpanObserver`](amac_obs::SpanObserver)'s Chrome
/// trace-event export to the file requested by
/// [`RunOptions::chrome_trace`].
///
/// # Panics
///
/// Panics when the file cannot be written — the export was explicitly
/// requested.
#[doc(hidden)]
pub fn finish_spans(spans: &amac_obs::SpanObserver, path: &Path) {
    if let Err(e) = std::fs::write(path, spans.to_chrome_json()) {
        panic!("cannot write chrome trace to {}: {e}", path.display());
    }
}

/// Result of one MMB run.
#[derive(Clone, Debug)]
pub struct MmbReport {
    /// Time of the last *required* delivery (MMB solved), if reached.
    pub completion: Option<Time>,
    /// Simulated time when the run stopped.
    pub end_time: Time,
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// Required deliveries still missing (0 when solved).
    pub missing: usize,
    /// Total deliver outputs observed.
    pub deliveries: usize,
    /// Message instances broadcast over the MAC layer.
    pub instances: usize,
    /// MAC-level event counters.
    pub counters: Counters,
    /// Validation report from the streaming validator, when requested.
    pub validation: Option<ValidationReport>,
    /// Peak-memory statistics of the streaming validator (evidence that
    /// validation state stayed bounded by the in-flight instances), when
    /// validation ran.
    pub validator_stats: Option<OnlineStats>,
    /// The recorded execution trace, when [`RunOptions::keep_trace`] was
    /// set.
    pub trace: Option<Trace>,
    /// Per-shard execution statistics when the run was sharded
    /// ([`RunOptions::shards`] ≥ 1), `None` for sequential runs.
    pub shard_stats: Option<amac_sim::ShardStats>,
    /// Deterministic sim-time metrics when [`RunOptions::metrics`] was
    /// set (with the shard diagnostics side channel attached on sharded
    /// runs).
    pub metrics: Option<amac_obs::MetricsReport>,
}

impl MmbReport {
    /// `true` when the problem was solved and (if validated) the execution
    /// conformed to the model.
    pub fn solved_and_valid(&self) -> bool {
        self.completion.is_some()
            && self
                .validation
                .as_ref()
                .map_or(true, amac_mac::ValidationReport::is_ok)
    }

    /// Completion time in ticks.
    ///
    /// # Panics
    ///
    /// Panics if the run did not complete.
    pub fn completion_ticks(&self) -> u64 {
        self.completion.expect("MMB run did not complete").ticks()
    }
}

impl fmt::Display for MmbReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.completion {
            Some(t) => write!(f, "solved at t={t}")?,
            None => write!(f, "unsolved ({} deliveries missing)", self.missing)?,
        }
        write!(
            f,
            "; stopped at t={} ({:?}), {} instances, {} deliveries",
            self.end_time, self.outcome, self.instances, self.deliveries
        )
    }
}

/// Runs an arbitrary MMB automaton (anything consuming [`crate::MmbMessage`]
/// env events and emitting [`Delivered`] outputs) and tracks completion.
pub fn run_mmb<A, P, F>(
    dual: &DualGraph,
    config: MacConfig,
    assignment: &Assignment,
    make_node: F,
    policy: P,
    options: &RunOptions,
) -> MmbReport
where
    A: Automaton<Env = crate::MmbMessage, Out = Delivered>,
    P: Policy,
    F: FnMut(NodeId) -> A,
{
    let mut make_node = make_node;
    let nodes = (0..dual.len()).map(|i| make_node(NodeId::new(i))).collect();
    let mut rt = Runtime::new(dual.clone(), config, nodes, policy);
    if options.shards > 0 {
        rt = rt.with_shards(options.shards);
        if options.shard_threads > 0 {
            rt = rt.with_shard_threads(options.shard_threads);
        }
    }
    let validator = options
        .validate
        .then(|| rt.attach(OnlineValidator::new(dual.clone(), config)));
    let tracer = options.keep_trace.then(|| rt.attach(TraceObserver::new()));
    let recorder = attach_recorder(options, dual, config, None).map(|store| rt.attach(store));
    let metrics = make_metrics(options, config).map(|m| rt.attach(m));
    let spans = make_spans(options, dual).map(|s| rt.attach(s));
    if options.metrics {
        rt.enable_shard_profiling();
    }
    for (node, msg) in assignment.arrivals() {
        rt.inject(*node, *msg);
    }

    let mut tracker = CompletionTracker::new(dual, assignment);
    let mut deliveries = 0usize;
    let outcome = loop {
        if options.stop_on_completion && tracker.is_complete() {
            break RunOutcome::Stopped;
        }
        let step_outcome = rt.run_until_next(options.horizon);
        for rec in rt.drain_outputs() {
            deliveries += 1;
            let Delivered(id) = rec.out;
            tracker.record(rec.time, rec.node, id);
        }
        if let Some(o) = step_outcome {
            break o;
        }
    };

    let mut validator_stats = None;
    let validation = validator.map(|handle| {
        let validator = rt.detach(handle);
        validator_stats = Some(validator.stats());
        validator.into_report(outcome == RunOutcome::Idle)
    });
    let trace = tracer.map(|handle| rt.detach(handle).into_trace());
    if let Some(handle) = recorder {
        finish_recorder(rt.detach(handle), outcome == RunOutcome::Idle);
    }
    let metrics = metrics.map(|handle| {
        rt.detach(handle)
            .into_report()
            .with_shard_diagnostics(rt.shard_stats(), rt.shard_profile())
    });
    if let (Some(handle), Some(path)) = (spans, options.chrome_trace.as_deref()) {
        finish_spans(&rt.detach(handle), path);
    }

    MmbReport {
        completion: tracker.completed_at(),
        end_time: rt.now(),
        outcome,
        missing: tracker.remaining(),
        deliveries,
        instances: rt.instances_started(),
        counters: rt.counters(),
        validation,
        validator_stats,
        trace,
        shard_stats: rt.shard_stats(),
        metrics,
    }
}

/// Runs the BMMB protocol over `dual` (convenience wrapper around
/// [`run_mmb`]).
///
/// # Examples
///
/// ```
/// use amac_core::{run_bmmb, Assignment, RunOptions};
/// use amac_graph::{generators, DualGraph, NodeId};
/// use amac_mac::{policies::LazyPolicy, MacConfig};
///
/// let dual = DualGraph::reliable(generators::line(10)?);
/// let report = run_bmmb(
///     &dual,
///     MacConfig::from_ticks(2, 30),
///     &Assignment::all_at(NodeId::new(0), 2),
///     LazyPolicy::new().prefer_duplicates(),
///     &RunOptions::default(),
/// );
/// assert!(report.solved_and_valid());
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
pub fn run_bmmb<P: Policy>(
    dual: &DualGraph,
    config: MacConfig,
    assignment: &Assignment,
    policy: P,
    options: &RunOptions,
) -> MmbReport {
    run_mmb(dual, config, assignment, |_| Bmmb::new(), policy, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use amac_graph::generators;
    use amac_mac::policies::{EagerPolicy, LazyPolicy, RandomPolicy};
    use amac_sim::SimRng;

    fn line_dual(n: usize) -> DualGraph {
        DualGraph::reliable(generators::line(n).unwrap())
    }

    #[test]
    fn bmmb_completes_and_validates_on_line() {
        let dual = line_dual(12);
        let cfg = MacConfig::from_ticks(2, 30);
        let a = Assignment::all_at(NodeId::new(0), 3);
        let report = run_bmmb(&dual, cfg, &a, LazyPolicy::new(), &RunOptions::default());
        assert!(report.solved_and_valid(), "{report}");
        assert_eq!(report.missing, 0);
        assert_eq!(report.deliveries, 3 * 12);
    }

    #[test]
    fn completion_time_within_reliable_bound() {
        // G' = G: completion must be within a small constant of
        // D*Fprog + k*Fack even under the duplicate-feeding lazy adversary.
        let dual = line_dual(16);
        let cfg = MacConfig::from_ticks(2, 40);
        let k = 4;
        let a = Assignment::all_at(NodeId::new(0), k);
        let report = run_bmmb(
            &dual,
            cfg,
            &a,
            LazyPolicy::new().prefer_duplicates(),
            &RunOptions::default(),
        );
        let bound = bounds::bmmb_reliable(dual.diameter(), k, &cfg).ticks();
        let measured = report.completion_ticks();
        assert!(
            measured <= 3 * bound,
            "measured {measured} should be O(bound {bound})"
        );
    }

    #[test]
    fn stop_on_completion_halts_early() {
        let dual = line_dual(10);
        let cfg = MacConfig::from_ticks(2, 100);
        let a = Assignment::all_at(NodeId::new(0), 1);
        let stopped = run_bmmb(
            &dual,
            cfg,
            &a,
            LazyPolicy::new(),
            &RunOptions::fast().stopping_on_completion(),
        );
        let full = run_bmmb(&dual, cfg, &a, LazyPolicy::new(), &RunOptions::fast());
        assert!(stopped.completion.is_some());
        assert!(stopped.end_time <= full.end_time);
    }

    #[test]
    fn horizon_truncates_unsolved_runs() {
        let dual = line_dual(40);
        let cfg = MacConfig::from_ticks(2, 100);
        let a = Assignment::all_at(NodeId::new(0), 5);
        let report = run_bmmb(
            &dual,
            cfg,
            &a,
            LazyPolicy::new(),
            &RunOptions::default().with_horizon(Time::from_ticks(10)),
        );
        assert_eq!(report.outcome, RunOutcome::TimeLimit);
        assert!(report.completion.is_none());
        assert!(report.missing > 0);
        // Truncated traces still validate (progress windows open at the
        // horizon are skipped).
        assert!(report.validation.unwrap().is_ok());
    }

    #[test]
    fn capturing_trace_returns_trace_and_validation() {
        let dual = line_dual(8);
        let cfg = MacConfig::from_ticks(2, 20);
        let a = Assignment::all_at(NodeId::new(0), 2);
        let fast = run_bmmb(&dual, cfg, &a, LazyPolicy::new(), &RunOptions::fast());
        assert!(fast.trace.is_none(), "fast runs keep no trace");
        let captured = run_bmmb(
            &dual,
            cfg,
            &a,
            LazyPolicy::new(),
            &RunOptions::fast().capturing_trace(),
        );
        let trace = captured.trace.as_ref().expect("trace kept");
        assert!(!trace.is_empty());
        assert!(captured.validation.expect("validated").is_ok());
        // Keeping the trace must not disturb the execution itself.
        assert_eq!(captured.completion, fast.completion);
        assert_eq!(captured.deliveries, fast.deliveries);
    }

    #[test]
    fn recording_round_trips_through_replay() {
        let dir = std::env::temp_dir().join("amac-core-harness-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bmmb_line.amactrace");
        let dual = line_dual(10);
        let cfg = MacConfig::from_ticks(2, 30);
        let a = Assignment::all_at(NodeId::new(0), 2);
        let report = run_bmmb(
            &dual,
            cfg,
            &a,
            LazyPolicy::new(),
            &RunOptions::default().recording(&path, 5),
        );
        let summary =
            amac_store::replay_validate(amac_store::TraceReader::open(&path).unwrap()).unwrap();
        assert_eq!(summary.header.seed, 5);
        assert_eq!(summary.quiescent, report.outcome == RunOutcome::Idle);
        assert_eq!(Some(summary.validation), report.validation);
        assert_eq!(Some(summary.stats), report.validator_stats);
        // Recording must not disturb the execution.
        let bare = run_bmmb(&dual, cfg, &a, LazyPolicy::new(), &RunOptions::default());
        assert_eq!(bare.completion, report.completion);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn random_scheduler_random_assignment_solves() {
        let g = generators::grid(4, 5).unwrap();
        let mut rng = SimRng::seed(3);
        let dual = generators::r_restricted_augment(g, 2, 0.3, &mut rng).unwrap();
        let cfg = MacConfig::from_ticks(2, 20);
        let a = Assignment::random(20, 4, &mut rng);
        let report = run_bmmb(&dual, cfg, &a, RandomPolicy::new(5), &RunOptions::default());
        assert!(report.solved_and_valid(), "{report}");
    }

    #[test]
    fn eager_policy_is_fastest() {
        let dual = line_dual(20);
        let cfg = MacConfig::from_ticks(2, 60);
        let a = Assignment::all_at(NodeId::new(0), 3);
        let eager = run_bmmb(&dual, cfg, &a, EagerPolicy::new(), &RunOptions::fast());
        let lazy = run_bmmb(&dual, cfg, &a, LazyPolicy::new(), &RunOptions::fast());
        assert!(eager.completion_ticks() <= lazy.completion_ticks());
    }
}
