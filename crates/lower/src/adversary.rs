//! The grey-zone adversary: the scheduler strategy behind the paper's
//! `Ω(D·F_ack)` lower bound (Lemmas 3.19–3.20), specialised to the
//! Figure 2 dual-line network `C`.
//!
//! The strategy mirrors the paper's staged schedule:
//!
//! * every acknowledgment is held for the full `F_ack`;
//! * each line's *frontier message* (`m₀` travelling down line `A`, `m₁`
//!   down line `B`) is delivered early over the **forward cross edge** to
//!   the *other* line (`a_i → b_{i+1}`, `b_i → a_{i+1}`), seeding the next
//!   frontier node with the wrong message — which BMMB's FIFO queue then
//!   flushes for a full `F_ack` before the right message can move;
//! * forced progress deliveries are satisfied with the most useless
//!   message available: duplicates first, then the other line's message,
//!   so the frontier message itself advances only when the model leaves no
//!   alternative.
//!
//! Echo broadcasts (nodes re-flooding a message that crossed over) deliver
//! to `G`-neighbors only — the paper's "deliver to all and only `G`
//! neighbors" rule for non-frontier broadcasts — preventing the frontier
//! messages from racing ahead over cross edges.

use amac_graph::NodeId;
use amac_mac::{BcastInfo, BcastPlan, ForcedCandidate, MessageKey, Policy, PolicyCtx};

/// The Section 3.3 scheduler strategy for the dual-line network (see
/// module docs).
#[derive(Debug)]
pub struct GreyZoneAdversary {
    /// Line length `D` (nodes `0..d` are `a_1..a_D`, `d..2d` are
    /// `b_1..b_D`).
    d: usize,
    /// Key of the message originating on line `A` (`m₀`).
    key_a: MessageKey,
    /// Key of the message originating on line `B` (`m₁`).
    key_b: MessageKey,
}

impl GreyZoneAdversary {
    /// Creates the adversary for a dual-line network of line length `d`
    /// where the message with `key_a` starts at `a₁` and `key_b` at `b₁`.
    pub fn new(d: usize, key_a: MessageKey, key_b: MessageKey) -> GreyZoneAdversary {
        GreyZoneAdversary { d, key_a, key_b }
    }

    fn on_line_a(&self, v: NodeId) -> bool {
        v.index() < self.d
    }

    /// The message the given node's line is waiting for.
    fn frontier_key(&self, v: NodeId) -> MessageKey {
        if self.on_line_a(v) {
            self.key_a
        } else {
            self.key_b
        }
    }

    /// The forward cross neighbor (`a_i → b_{i+1}` or `b_i → a_{i+1}`),
    /// if the sender is not the last node of its line.
    fn forward_cross(&self, sender: NodeId) -> Option<NodeId> {
        let i = sender.index();
        if self.on_line_a(sender) {
            (i + 1 < self.d).then(|| NodeId::new(self.d + i + 1))
        } else {
            let line_pos = i - self.d;
            (line_pos + 1 < self.d).then(|| NodeId::new(line_pos + 1))
        }
    }
}

impl Policy for GreyZoneAdversary {
    fn plan_bcast(&mut self, ctx: &PolicyCtx<'_>, info: &BcastInfo) -> BcastPlan {
        // Reliable neighbors wait until the ack deadline (flushed then).
        // Only a *frontier* broadcast — a node sending its own line's
        // message — crosses over, and only forward.
        let mut unreliable = Vec::new();
        if info.key == self.frontier_key(info.sender) {
            if let Some(target) = self.forward_cross(info.sender) {
                if ctx.dual.unreliable_neighbors(info.sender).contains(&target) {
                    unreliable.push((target, ctx.config.f_prog()));
                }
            }
        }
        BcastPlan {
            reliable_default: None,
            ack_delay: ctx.config.f_ack(),
            reliable: Vec::new(),
            unreliable,
        }
    }

    fn pick_forced(
        &mut self,
        _ctx: &PolicyCtx<'_>,
        receiver: NodeId,
        candidates: &[ForcedCandidate],
    ) -> usize {
        // Most useless first: duplicates, then the other line's message,
        // then cross-edge traffic, then the youngest instance. Only when
        // every alternative is exhausted does the receiver's own frontier
        // message get through.
        let waiting_for = self.frontier_key(receiver);
        let score = |c: &ForcedCandidate| {
            (
                u8::from(!c.duplicate_for_receiver),
                u8::from(c.key == waiting_for),
                u8::from(c.reliable_link),
                std::cmp::Reverse(c.start),
                c.instance,
            )
        };
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| score(c))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// A scheduler that staggers each broadcast's deliveries one receiver per
/// tick (rank `r` in the sender's reliable-neighbor list receives at tick
/// `r + 1`) and holds the ack to the full `F_ack`.
///
/// This is the delivery order that makes a mid-broadcast crash *split* an
/// audience: crash the sender at tick `c` and exactly the first `c − 1`
/// neighbors have heard it — the partial-delivery adversary behind the
/// [crash-star consensus scenario](crate::scenarios::run_crash_star).
/// (Use it with `F_prog` larger than the neighbor count, or the progress
/// bound forces deliveries ahead of the stagger.)
#[derive(Debug, Default)]
pub struct StaggeredPolicy;

impl StaggeredPolicy {
    /// Creates the staggered scheduler.
    pub fn new() -> StaggeredPolicy {
        StaggeredPolicy
    }
}

impl Policy for StaggeredPolicy {
    fn plan_bcast(&mut self, ctx: &PolicyCtx<'_>, info: &BcastInfo) -> BcastPlan {
        let reliable = ctx
            .dual
            .reliable_neighbors(info.sender)
            .iter()
            .enumerate()
            .map(|(r, &j)| (j, amac_sim::Duration::from_ticks(r as u64 + 1)))
            .collect();
        BcastPlan {
            reliable_default: None,
            ack_delay: ctx.config.f_ack(),
            reliable,
            unreliable: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_graph::generators;
    use amac_mac::{InstanceId, MacConfig};
    use amac_sim::{Duration, Time};

    fn fixture() -> (amac_graph::DualGraph, MacConfig) {
        let net = generators::dual_line(4).unwrap();
        (net.dual, MacConfig::from_ticks(2, 20))
    }

    fn adversary() -> GreyZoneAdversary {
        GreyZoneAdversary::new(4, MessageKey(0), MessageKey(1))
    }

    fn cand(i: u64, key: u64, dup: bool, reliable: bool, start: u64) -> ForcedCandidate {
        ForcedCandidate {
            instance: InstanceId::new(i),
            sender: NodeId::new(0),
            key: MessageKey(key),
            start: Time::from_ticks(start),
            duplicate_for_receiver: dup,
            reliable_link: reliable,
        }
    }

    #[test]
    fn frontier_broadcast_crosses_forward_only() {
        let (dual, config) = fixture();
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let mut adv = adversary();
        // a_1 (index 0) broadcasting m0: crosses to b_2 (index 5).
        let plan = adv.plan_bcast(
            &ctx,
            &BcastInfo {
                instance: InstanceId::new(0),
                sender: NodeId::new(0),
                key: MessageKey(0),
            },
        );
        assert_eq!(plan.ack_delay, config.f_ack());
        assert_eq!(
            plan.unreliable,
            vec![(NodeId::new(5), Duration::from_ticks(2))]
        );
        // a_2 (index 1) broadcasting m1 (an echo): no cross deliveries.
        let plan = adv.plan_bcast(
            &ctx,
            &BcastInfo {
                instance: InstanceId::new(1),
                sender: NodeId::new(1),
                key: MessageKey(1),
            },
        );
        assert!(plan.unreliable.is_empty());
        // b_2 (index 5) broadcasting m1: crosses to a_3 (index 2).
        let plan = adv.plan_bcast(
            &ctx,
            &BcastInfo {
                instance: InstanceId::new(2),
                sender: NodeId::new(5),
                key: MessageKey(1),
            },
        );
        assert_eq!(
            plan.unreliable,
            vec![(NodeId::new(2), Duration::from_ticks(2))]
        );
    }

    #[test]
    fn last_line_node_has_no_forward_cross() {
        let adv = adversary();
        assert_eq!(adv.forward_cross(NodeId::new(3)), None); // a_4
        assert_eq!(adv.forward_cross(NodeId::new(7)), None); // b_4
        assert_eq!(adv.forward_cross(NodeId::new(2)), Some(NodeId::new(7)));
        assert_eq!(adv.forward_cross(NodeId::new(6)), Some(NodeId::new(3)));
    }

    #[test]
    fn forced_pick_prefers_duplicates_then_other_line() {
        let (dual, config) = fixture();
        let ctx = PolicyCtx {
            dual: &dual,
            config: &config,
            now: Time::ZERO,
        };
        let mut adv = adversary();
        // Receiver a_3 (line A) waits for m0 (key 0).
        let receiver = NodeId::new(2);
        // Duplicate beats everything.
        let cands = vec![cand(0, 1, false, false, 0), cand(1, 0, true, true, 0)];
        assert_eq!(adv.pick_forced(&ctx, receiver, &cands), 1);
        // No duplicates: the other line's message (key 1) beats m0.
        let cands = vec![cand(0, 0, false, true, 0), cand(1, 1, false, true, 0)];
        assert_eq!(adv.pick_forced(&ctx, receiver, &cands), 1);
        // Same key class: cross edge beats reliable.
        let cands = vec![cand(0, 1, false, true, 0), cand(1, 1, false, false, 0)];
        assert_eq!(adv.pick_forced(&ctx, receiver, &cands), 1);
    }
}
