//! Executable lower-bound scenarios: run an MMB algorithm against the
//! paper's adversarial constructions and report how the measured time
//! compares to the claimed bound.

use crate::adversary::{GreyZoneAdversary, StaggeredPolicy};
use amac_core::{bounds, run_bmmb, Assignment, MessageId, MmbReport, RunOptions};
use amac_graph::{generators, DualGraph, NodeId};
use amac_mac::policies::LazyPolicy;
use amac_mac::{FaultPlan, MacConfig, MessageKey};
use amac_proto::consensus::{run_consensus, ConsensusParams, ConsensusReport};
use amac_sim::Time;
use std::fmt;

/// Outcome of a lower-bound scenario: the measured completion time versus
/// the bound the construction is supposed to force.
#[derive(Clone, Debug)]
pub struct LowerBoundReport {
    /// Scenario label (for tables).
    pub label: &'static str,
    /// The driving parameter (`k` for the choke star, `D` for the dual
    /// line).
    pub parameter: usize,
    /// Measured completion time in ticks.
    pub completion_ticks: u64,
    /// The Ω-bound in ticks (`k·F_ack` or `D·F_ack`).
    pub bound_ticks: u64,
    /// `completion / bound`; the lower bound holds empirically when this
    /// stays above a positive constant as the parameter grows.
    pub ratio: f64,
    /// The underlying run report.
    pub run: MmbReport,
}

impl fmt::Display for LowerBoundReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: param={} measured={} bound={} ratio={:.2}",
            self.label, self.parameter, self.completion_ticks, self.bound_ticks, self.ratio
        )
    }
}

/// Builds the Lemma 3.18 choke-star instance: `G′ = G`, `k` leaves-plus-hub
/// messages (a *singleton assignment*), and the single receiver behind the
/// hub.
///
/// Returns the dual graph and the assignment.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn choke_star_instance(k: usize) -> (DualGraph, Assignment) {
    let (g, _hub, _receiver) = generators::choke_star(k).expect("k >= 1");
    let dual = DualGraph::reliable(g);
    // Nodes 0..k-1 are u_1..u_k (index k-1 is the hub u_k); each starts
    // with one unique message. The receiver v (index k) starts with none.
    let assignment =
        Assignment::new((0..k as u64).map(|i| (NodeId::new(i as usize), MessageId(i))));
    (dual, assignment)
}

/// Runs BMMB on the choke star under the lazy duplicate-feeding scheduler
/// and reports the measured time against the `Ω(k·F_ack)` bound
/// (Lemma 3.18).
pub fn run_choke_star(k: usize, config: MacConfig, options: &RunOptions) -> LowerBoundReport {
    let (dual, assignment) = choke_star_instance(k);
    let run = run_bmmb(
        &dual,
        config,
        &assignment,
        LazyPolicy::new().prefer_duplicates(),
        options,
    );
    let completion_ticks = run
        .completion
        .map(amac_sim::Time::ticks)
        .unwrap_or(run.end_time.ticks());
    let bound_ticks = bounds::lower_choke(k, &config).ticks();
    LowerBoundReport {
        label: "choke-star (Lemma 3.18)",
        parameter: k,
        completion_ticks,
        bound_ticks,
        ratio: completion_ticks as f64 / bound_ticks as f64,
        run,
    }
}

/// Builds the Figure 2 dual-line instance: message `m₀` at `a₁`, message
/// `m₁` at `b₁` (`k = 2`).
pub fn dual_line_instance(d: usize) -> (DualGraph, Assignment) {
    let net = generators::dual_line(d).expect("d >= 2");
    let assignment = Assignment::new([(net.a(1), MessageId(0)), (net.b(1), MessageId(1))]);
    (net.dual, assignment)
}

/// Runs BMMB on the Figure 2 network against the Section 3.3 grey-zone
/// adversary and reports the measured time against the `Ω(D·F_ack)` bound
/// (Lemmas 3.19–3.20).
pub fn run_dual_line(d: usize, config: MacConfig, options: &RunOptions) -> LowerBoundReport {
    let (dual, assignment) = dual_line_instance(d);
    let adversary = GreyZoneAdversary::new(d, MessageKey(0), MessageKey(1));
    let run = run_bmmb(&dual, config, &assignment, adversary, options);
    let completion_ticks = run
        .completion
        .map(amac_sim::Time::ticks)
        .unwrap_or(run.end_time.ticks());
    let bound_ticks = bounds::lower_grey_zone(d, &config).ticks();
    LowerBoundReport {
        label: "dual-line (Fig. 2, Lemmas 3.19-3.20)",
        parameter: d,
        completion_ticks,
        bound_ticks,
        ratio: completion_ticks as f64 / bound_ticks as f64,
        run,
    }
}

/// Outcome of the [crash-star consensus scenario](run_crash_star): how a
/// hub crash splits a flooding-consensus audience.
#[derive(Clone, Debug)]
pub struct CrashStarReport {
    /// Number of leaves (network size is `leaves + 1`).
    pub leaves: usize,
    /// Flooding phases the protocol ran.
    pub phases: u64,
    /// When the hub crashed (mid-stagger).
    pub crash_time: Time,
    /// Leaves that decided `false` (heard the hub's value before the
    /// crash).
    pub decided_false: usize,
    /// Leaves that decided `true` (never heard it).
    pub decided_true: usize,
    /// The underlying consensus run, including the violation list.
    pub run: ConsensusReport,
}

impl CrashStarReport {
    /// `true` when the crash split the leaves into disagreeing camps.
    pub fn disagreement(&self) -> bool {
        self.decided_false > 0 && self.decided_true > 0
    }
}

impl fmt::Display for CrashStarReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crash-star: {} leaves, {} phase(s), hub crashed at t={}: {} decided false, {} true ({})",
            self.leaves,
            self.phases,
            self.crash_time,
            self.decided_false,
            self.decided_true,
            if self.disagreement() {
                "agreement VIOLATED"
            } else {
                "agreement held"
            }
        )
    }
}

/// The crash-star consensus scenario: why flooding consensus needs more
/// than flooding.
///
/// A star of `leaves` nodes around a hub — the same single-bridge
/// fragility as the Lemma 3.18 choke star, pointed at consensus instead
/// of broadcast. The hub holds the only `false` input; every leaf holds
/// `true`. Under the [`StaggeredPolicy`] the hub's first broadcast
/// reaches one leaf per tick, and the hub **crashes mid-broadcast** at
/// tick `⌊leaves/2⌋ + 1`: exactly the leaves served before the crash
/// learn `false`. Because the hub was the star's only bridge, the two
/// camps can never reconcile — flooding consensus on this topology
/// *stalls* at disagreement no matter how many extra phases it is given
/// (run it with `phases > 1` to watch the extra rounds change nothing).
///
/// This is the fault-model counterpart of the choke-star lower bound: the
/// NR18-style consensus guarantee is conditioned on crashes not
/// disconnecting `G` (e.g. the single-hop/complete setting of
/// `amac_proto::consensus`), and this scenario is the witness that the
/// condition is necessary. The MAC layer itself stays blameless — the
/// returned run's trace still passes `amac_mac::validate` with the crash
/// event present.
pub fn run_crash_star(leaves: usize, phases: u64, options: &RunOptions) -> CrashStarReport {
    assert!(leaves >= 2, "need at least two leaves to split");
    let n = leaves + 1;
    // F_prog above the stagger span, or forced progress deliveries would
    // outrun the staggered schedule and defuse the partial delivery.
    let config = MacConfig::from_ticks(leaves as u64 + 2, 2 * leaves as u64 + 8).enhanced();
    let params = ConsensusParams {
        phases,
        phase_len: config.f_ack() + amac_sim::Duration::from_ticks(2),
    };
    let dual = DualGraph::reliable(generators::star(n).expect("n >= 2"));
    // Node 0 is the hub: the only false input.
    let initial: Vec<bool> = (0..n).map(|i| i != 0).collect();
    let crash_time = Time::from_ticks(leaves as u64 / 2 + 1);
    let faults = FaultPlan::new().crash_at(NodeId::new(0), crash_time);
    let run = run_consensus(
        &dual,
        config,
        &initial,
        &params,
        faults,
        StaggeredPolicy::new(),
        options,
    );
    let decided_false = run
        .decisions
        .iter()
        .filter(|d| matches!(d, Some((_, false))))
        .count();
    let decided_true = run
        .decisions
        .iter()
        .filter(|d| matches!(d, Some((_, true))))
        .count();
    CrashStarReport {
        leaves,
        phases,
        crash_time,
        decided_false,
        decided_true,
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MacConfig {
        MacConfig::from_ticks(2, 40)
    }

    #[test]
    fn choke_star_forces_k_fack() {
        // Ω(k·F_ack): the measured/bound ratio must stay above a positive
        // constant as k grows (the constant is (k-1)/k-ish: the hub relays
        // one message per F_ack).
        for k in [4, 8, 16] {
            let report = run_choke_star(k, cfg(), &RunOptions::default());
            assert!(report.run.solved_and_valid(), "{}", report.run);
            assert!(
                report.ratio >= 0.6,
                "k={k}: expected Ω(k*F_ack), got ratio {:.2}",
                report.ratio
            );
        }
    }

    #[test]
    fn choke_star_ratio_stays_constant_as_k_grows() {
        let r4 = run_choke_star(4, cfg(), &RunOptions::fast()).ratio;
        let r32 = run_choke_star(32, cfg(), &RunOptions::fast()).ratio;
        // The ratio must not vanish with k (that would mean o(k*F_ack)).
        assert!(
            r32 >= 0.8 * r4.min(1.0),
            "ratio collapsed: {r4:.2} -> {r32:.2}"
        );
    }

    #[test]
    fn dual_line_forces_d_fack() {
        // Ω(D·F_ack): the adversary makes the frontier advance one hop per
        // F_ack (constant ≈ (D-1)/D after queue-flush accounting).
        for d in [4, 8] {
            let report = run_dual_line(d, cfg(), &RunOptions::default());
            assert!(report.run.solved_and_valid(), "{}", report.run);
            assert!(
                report.ratio >= 0.5,
                "d={d}: expected Ω(D*F_ack), got ratio {:.2}",
                report.ratio
            );
        }
    }

    #[test]
    fn dual_line_scales_linearly_in_d() {
        let cfg = cfg();
        let t8 = run_dual_line(8, cfg, &RunOptions::fast()).completion_ticks;
        let t16 = run_dual_line(16, cfg, &RunOptions::fast()).completion_ticks;
        let growth = t16 as f64 / t8 as f64;
        assert!(
            (1.6..=2.6).contains(&growth),
            "doubling D should roughly double time, got x{growth:.2}"
        );
    }

    #[test]
    fn dual_line_time_tracks_f_ack_not_f_prog() {
        // The whole point of the lower bound: scaling F_ack up (with
        // F_prog fixed) must scale the completion time proportionally.
        let slow = MacConfig::from_ticks(2, 80);
        let fast = MacConfig::from_ticks(2, 20);
        let t_slow = run_dual_line(8, slow, &RunOptions::fast()).completion_ticks;
        let t_fast = run_dual_line(8, fast, &RunOptions::fast()).completion_ticks;
        let scale = t_slow as f64 / t_fast as f64;
        assert!(
            scale >= 2.5,
            "quadrupling F_ack should scale time ~4x, got x{scale:.2}"
        );
    }

    #[test]
    fn crash_star_splits_naive_flooding_consensus() {
        for leaves in [4, 6, 9] {
            let report = run_crash_star(leaves, 1, &RunOptions::default());
            assert!(report.disagreement(), "{report}");
            assert!(
                !report.run.check.is_ok(),
                "the consensus validator must flag the split"
            );
            // Both camps are non-trivial: the stagger split mid-audience.
            assert_eq!(report.decided_false, leaves / 2);
            assert_eq!(report.decided_true, leaves - leaves / 2);
            // The MAC layer is blameless: the trace (crash included) is
            // model-valid; only the protocol-level guarantee broke.
            assert!(
                report.run.validation.as_ref().unwrap().is_ok(),
                "MAC trace must stay valid"
            );
        }
    }

    #[test]
    fn extra_phases_do_not_heal_a_disconnected_star() {
        // The whole point: once the hub (the only bridge) is gone, no
        // amount of extra flooding rounds reconnects the camps — unlike
        // on a complete graph, where crashes+1 phases always suffice.
        let naive = run_crash_star(6, 1, &RunOptions::fast());
        let patient = run_crash_star(6, 4, &RunOptions::fast());
        assert!(naive.disagreement());
        assert!(patient.disagreement(), "{patient}");
        assert_eq!(
            (patient.decided_false, patient.decided_true),
            (naive.decided_false, naive.decided_true),
            "extra rounds changed nothing"
        );
    }

    #[test]
    fn without_the_crash_the_star_agrees() {
        let leaves = 6;
        let n = leaves + 1;
        let config = MacConfig::from_ticks(leaves as u64 + 2, 2 * leaves as u64 + 8).enhanced();
        let params = ConsensusParams {
            phases: 1,
            phase_len: config.f_ack() + amac_sim::Duration::from_ticks(2),
        };
        let dual = DualGraph::reliable(generators::star(n).unwrap());
        let initial: Vec<bool> = (0..n).map(|i| i != 0).collect();
        let report = run_consensus(
            &dual,
            config,
            &initial,
            &params,
            FaultPlan::new(),
            StaggeredPolicy::new(),
            &RunOptions::default(),
        );
        assert!(report.ok(), "{report}");
        assert_eq!(report.agreed_value(), Some(false));
    }

    #[test]
    fn instances_have_expected_shape() {
        let (dual, assignment) = choke_star_instance(5);
        assert_eq!(dual.len(), 6);
        assert_eq!(assignment.k(), 5);
        let (dual, assignment) = dual_line_instance(6);
        assert_eq!(dual.len(), 12);
        assert_eq!(assignment.k(), 2);
    }
}
