//! Executable lower-bound scenarios: run an MMB algorithm against the
//! paper's adversarial constructions and report how the measured time
//! compares to the claimed bound.

use crate::adversary::GreyZoneAdversary;
use amac_core::{bounds, run_bmmb, Assignment, MessageId, MmbReport, RunOptions};
use amac_graph::{generators, DualGraph, NodeId};
use amac_mac::policies::LazyPolicy;
use amac_mac::{MacConfig, MessageKey};
use std::fmt;

/// Outcome of a lower-bound scenario: the measured completion time versus
/// the bound the construction is supposed to force.
#[derive(Clone, Debug)]
pub struct LowerBoundReport {
    /// Scenario label (for tables).
    pub label: &'static str,
    /// The driving parameter (`k` for the choke star, `D` for the dual
    /// line).
    pub parameter: usize,
    /// Measured completion time in ticks.
    pub completion_ticks: u64,
    /// The Ω-bound in ticks (`k·F_ack` or `D·F_ack`).
    pub bound_ticks: u64,
    /// `completion / bound`; the lower bound holds empirically when this
    /// stays above a positive constant as the parameter grows.
    pub ratio: f64,
    /// The underlying run report.
    pub run: MmbReport,
}

impl fmt::Display for LowerBoundReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: param={} measured={} bound={} ratio={:.2}",
            self.label, self.parameter, self.completion_ticks, self.bound_ticks, self.ratio
        )
    }
}

/// Builds the Lemma 3.18 choke-star instance: `G′ = G`, `k` leaves-plus-hub
/// messages (a *singleton assignment*), and the single receiver behind the
/// hub.
///
/// Returns the dual graph and the assignment.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn choke_star_instance(k: usize) -> (DualGraph, Assignment) {
    let (g, _hub, _receiver) = generators::choke_star(k).expect("k >= 1");
    let dual = DualGraph::reliable(g);
    // Nodes 0..k-1 are u_1..u_k (index k-1 is the hub u_k); each starts
    // with one unique message. The receiver v (index k) starts with none.
    let assignment =
        Assignment::new((0..k as u64).map(|i| (NodeId::new(i as usize), MessageId(i))));
    (dual, assignment)
}

/// Runs BMMB on the choke star under the lazy duplicate-feeding scheduler
/// and reports the measured time against the `Ω(k·F_ack)` bound
/// (Lemma 3.18).
pub fn run_choke_star(k: usize, config: MacConfig, options: &RunOptions) -> LowerBoundReport {
    let (dual, assignment) = choke_star_instance(k);
    let run = run_bmmb(
        &dual,
        config,
        &assignment,
        LazyPolicy::new().prefer_duplicates(),
        options,
    );
    let completion_ticks = run
        .completion
        .map(|t| t.ticks())
        .unwrap_or(run.end_time.ticks());
    let bound_ticks = bounds::lower_choke(k, &config).ticks();
    LowerBoundReport {
        label: "choke-star (Lemma 3.18)",
        parameter: k,
        completion_ticks,
        bound_ticks,
        ratio: completion_ticks as f64 / bound_ticks as f64,
        run,
    }
}

/// Builds the Figure 2 dual-line instance: message `m₀` at `a₁`, message
/// `m₁` at `b₁` (`k = 2`).
pub fn dual_line_instance(d: usize) -> (DualGraph, Assignment) {
    let net = generators::dual_line(d).expect("d >= 2");
    let assignment = Assignment::new([(net.a(1), MessageId(0)), (net.b(1), MessageId(1))]);
    (net.dual, assignment)
}

/// Runs BMMB on the Figure 2 network against the Section 3.3 grey-zone
/// adversary and reports the measured time against the `Ω(D·F_ack)` bound
/// (Lemmas 3.19–3.20).
pub fn run_dual_line(d: usize, config: MacConfig, options: &RunOptions) -> LowerBoundReport {
    let (dual, assignment) = dual_line_instance(d);
    let adversary = GreyZoneAdversary::new(d, MessageKey(0), MessageKey(1));
    let run = run_bmmb(&dual, config, &assignment, adversary, options);
    let completion_ticks = run
        .completion
        .map(|t| t.ticks())
        .unwrap_or(run.end_time.ticks());
    let bound_ticks = bounds::lower_grey_zone(d, &config).ticks();
    LowerBoundReport {
        label: "dual-line (Fig. 2, Lemmas 3.19-3.20)",
        parameter: d,
        completion_ticks,
        bound_ticks,
        ratio: completion_ticks as f64 / bound_ticks as f64,
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MacConfig {
        MacConfig::from_ticks(2, 40)
    }

    #[test]
    fn choke_star_forces_k_fack() {
        // Ω(k·F_ack): the measured/bound ratio must stay above a positive
        // constant as k grows (the constant is (k-1)/k-ish: the hub relays
        // one message per F_ack).
        for k in [4, 8, 16] {
            let report = run_choke_star(k, cfg(), &RunOptions::default());
            assert!(report.run.solved_and_valid(), "{}", report.run);
            assert!(
                report.ratio >= 0.6,
                "k={k}: expected Ω(k*F_ack), got ratio {:.2}",
                report.ratio
            );
        }
    }

    #[test]
    fn choke_star_ratio_stays_constant_as_k_grows() {
        let r4 = run_choke_star(4, cfg(), &RunOptions::fast()).ratio;
        let r32 = run_choke_star(32, cfg(), &RunOptions::fast()).ratio;
        // The ratio must not vanish with k (that would mean o(k*F_ack)).
        assert!(
            r32 >= 0.8 * r4.min(1.0),
            "ratio collapsed: {r4:.2} -> {r32:.2}"
        );
    }

    #[test]
    fn dual_line_forces_d_fack() {
        // Ω(D·F_ack): the adversary makes the frontier advance one hop per
        // F_ack (constant ≈ (D-1)/D after queue-flush accounting).
        for d in [4, 8] {
            let report = run_dual_line(d, cfg(), &RunOptions::default());
            assert!(report.run.solved_and_valid(), "{}", report.run);
            assert!(
                report.ratio >= 0.5,
                "d={d}: expected Ω(D*F_ack), got ratio {:.2}",
                report.ratio
            );
        }
    }

    #[test]
    fn dual_line_scales_linearly_in_d() {
        let cfg = cfg();
        let t8 = run_dual_line(8, cfg, &RunOptions::fast()).completion_ticks;
        let t16 = run_dual_line(16, cfg, &RunOptions::fast()).completion_ticks;
        let growth = t16 as f64 / t8 as f64;
        assert!(
            (1.6..=2.6).contains(&growth),
            "doubling D should roughly double time, got x{growth:.2}"
        );
    }

    #[test]
    fn dual_line_time_tracks_f_ack_not_f_prog() {
        // The whole point of the lower bound: scaling F_ack up (with
        // F_prog fixed) must scale the completion time proportionally.
        let slow = MacConfig::from_ticks(2, 80);
        let fast = MacConfig::from_ticks(2, 20);
        let t_slow = run_dual_line(8, slow, &RunOptions::fast()).completion_ticks;
        let t_fast = run_dual_line(8, fast, &RunOptions::fast()).completion_ticks;
        let scale = t_slow as f64 / t_fast as f64;
        assert!(
            scale >= 2.5,
            "quadrupling F_ack should scale time ~4x, got x{scale:.2}"
        );
    }

    #[test]
    fn instances_have_expected_shape() {
        let (dual, assignment) = choke_star_instance(5);
        assert_eq!(dual.len(), 6);
        assert_eq!(assignment.k(), 5);
        let (dual, assignment) = dual_line_instance(6);
        assert_eq!(dual.len(), 12);
        assert_eq!(assignment.k(), 2);
    }
}
