//! # amac-lower — executable lower bounds
//!
//! The paper's Section 3.3 lower-bound constructions as runnable
//! adversarial scenarios:
//!
//! * **Lemma 3.18** — the [choke star](scenarios::run_choke_star): `k`
//!   singleton messages behind a single bridge node force `Ω(k·F_ack)` for
//!   any MMB algorithm (run here against BMMB under the lazy
//!   duplicate-feeding scheduler).
//! * **Lemmas 3.19–3.20 / Theorem 3.17** — the
//!   [dual-line network `C`](scenarios::run_dual_line) of Figure 2 with the
//!   [`GreyZoneAdversary`]: cross-line unreliable edges let two messages
//!   delay each other, forcing `Ω(D·F_ack)` even though the network is
//!   grey-zone restricted.
//!
//! Together these match BMMB's `O((D + k)·F_ack)` upper bound for
//! arbitrary (and grey zone) `G′` — the `Θ((D+k)·F_ack)` cell of the
//! paper's Figure 1.
//!
//! The fault model gets its own impossibility witness: the
//! [crash-star scenario](scenarios::run_crash_star) crashes a star's hub
//! mid-broadcast under the [`StaggeredPolicy`], splitting the leaves into
//! camps that heard different values and can never reconcile — the reason
//! the `amac-proto` consensus guarantees are conditioned on crashes not
//! disconnecting `G`.
//!
//! ```
//! use amac_lower::scenarios::run_choke_star;
//! use amac_core::RunOptions;
//! use amac_mac::MacConfig;
//!
//! let report = run_choke_star(8, MacConfig::from_ticks(2, 40), &RunOptions::fast());
//! // Ω(k·F_ack): the hub relays roughly one message per F_ack.
//! assert!(report.ratio >= 0.6, "completion took Omega(k * F_ack)");
//! ```

mod adversary;
pub mod scenarios;

pub use adversary::{GreyZoneAdversary, StaggeredPolicy};
pub use scenarios::{
    choke_star_instance, dual_line_instance, run_choke_star, run_crash_star, run_dual_line,
    CrashStarReport, LowerBoundReport,
};
