//! Dual graphs: the `(G, G′)` network model with reliable and unreliable
//! links (paper Section 2).

use crate::algo;
use crate::error::GraphError;
use crate::geometry::Embedding;
use crate::graph::Graph;
use crate::node::NodeId;
use std::fmt;
use std::sync::Arc;

/// A dual graph `(G, G′)` with the invariant `E ⊆ E′`.
///
/// Edges of `G` are **reliable**: the abstract MAC layer always delivers a
/// local broadcast to `G`-neighbors. Edges of `G′ \ G` are **unreliable**:
/// the message scheduler may or may not deliver to them, adversarially.
///
/// The paper assumes nodes can distinguish their `G`-neighbors from their
/// `G′ \ G` neighbors (link quality assessment); this type exposes both
/// neighborhoods accordingly.
///
/// `DualGraph` is cheaply cloneable (the layers are shared via [`Arc`]).
///
/// # Examples
///
/// ```
/// use amac_graph::{DualGraph, Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let gp = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)])?;
/// let dual = DualGraph::new(g, gp)?;
/// assert_eq!(dual.len(), 4);
/// assert_eq!(dual.diameter(), 3); // diameter of G, not G'
/// assert_eq!(
///     dual.unreliable_neighbors(NodeId::new(0)),
///     &[NodeId::new(2)]
/// );
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
#[derive(Clone)]
pub struct DualGraph {
    g: Arc<Graph>,
    g_prime: Arc<Graph>,
    /// `G′ \ G` adjacency, precomputed per node.
    extra: Arc<Vec<Vec<NodeId>>>,
    /// Cached diameter of `G`.
    diameter: usize,
}

impl DualGraph {
    /// Creates a dual graph after validating `E ⊆ E′` and matching node
    /// counts.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeCountMismatch`] if the layers have different sizes;
    /// [`GraphError::NotSupergraph`] if a reliable edge is absent from `G′`.
    pub fn new(g: Graph, g_prime: Graph) -> Result<DualGraph, GraphError> {
        let diameter = algo::diameter(&g);
        DualGraph::with_diameter(g, g_prime, diameter)
    }

    /// Creates a dual graph like [`DualGraph::new`] but trusting a
    /// caller-supplied diameter for `G`, skipping the all-pairs BFS.
    ///
    /// `DualGraph::new` costs `O(n · |E|)` to compute the diameter, which is
    /// prohibitive for the 10⁵–10⁶-node networks the sharded simulator
    /// targets. Generators whose topology has an analytically known diameter
    /// (e.g. [`crate::generators::grid_grey_zone_network`]) use this
    /// constructor instead. The supergraph invariant is still validated; the
    /// diameter is not (callers must supply the exact value, since the MMB
    /// bound checks depend on it).
    ///
    /// # Errors
    ///
    /// Same as [`DualGraph::new`].
    pub fn with_diameter(
        g: Graph,
        g_prime: Graph,
        diameter: usize,
    ) -> Result<DualGraph, GraphError> {
        if g.len() != g_prime.len() {
            return Err(GraphError::NodeCountMismatch {
                g: g.len(),
                g_prime: g_prime.len(),
            });
        }
        if let Some((u, v)) = g.edges().find(|&(u, v)| !g_prime.has_edge(u, v)) {
            return Err(GraphError::NotSupergraph {
                missing: (u.index(), v.index()),
            });
        }
        let extra: Vec<Vec<NodeId>> = (0..g.len())
            .map(|i| g_prime.extra_neighbors(&g, NodeId::new(i)))
            .collect();
        Ok(DualGraph {
            g: Arc::new(g),
            g_prime: Arc::new(g_prime),
            extra: Arc::new(extra),
            diameter,
        })
    }

    /// Creates the reliable-only dual graph `G′ = G` (the strong assumption
    /// of the prior work [KLN09/11]).
    pub fn reliable(g: Graph) -> DualGraph {
        let gp = g.clone();
        DualGraph::new(g, gp).expect("G is always a supergraph of itself")
    }

    /// The reliable layer `G`.
    pub fn g(&self) -> &Graph {
        &self.g
    }

    /// The full layer `G′` (reliable plus unreliable edges).
    pub fn g_prime(&self) -> &Graph {
        &self.g_prime
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.g.len()
    }

    /// Returns `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.g.is_empty()
    }

    /// Cached diameter `D` of the reliable layer `G`.
    pub fn diameter(&self) -> usize {
        self.diameter
    }

    /// Reliable (`G`) neighbors of `v`.
    pub fn reliable_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.g.neighbors(v)
    }

    /// Unreliable-only (`G′ \ G`) neighbors of `v`.
    pub fn unreliable_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.extra[v.index()]
    }

    /// All `G′` neighbors of `v` (reliable and unreliable).
    pub fn all_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.g_prime.neighbors(v)
    }

    /// Returns `true` if the dual graph has no unreliable edges (`G′ = G`).
    pub fn is_reliable_only(&self) -> bool {
        self.g.edge_count() == self.g_prime.edge_count()
    }

    /// Number of unreliable (`G′ \ G`) edges.
    pub fn unreliable_edge_count(&self) -> usize {
        self.g_prime.edge_count() - self.g.edge_count()
    }

    /// Checks the `r`-restriction (paper Section 2): every `G′` edge spans at
    /// most `r` hops in `G`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotRRestricted`] naming the first offending
    /// edge.
    pub fn check_r_restricted(&self, r: usize) -> Result<(), GraphError> {
        for i in 0..self.len() {
            let v = NodeId::new(i);
            if self.extra[i].is_empty() {
                continue;
            }
            let dist = algo::bfs_distances(&self.g, v);
            for &u in &self.extra[i] {
                if u < v {
                    continue; // each edge checked once
                }
                let d = dist[u.index()];
                if d > r {
                    return Err(GraphError::NotRRestricted {
                        r,
                        edge: (v.index(), u.index()),
                        distance: d,
                    });
                }
            }
        }
        Ok(())
    }

    /// The smallest `r` such that this dual graph is `r`-restricted, or
    /// `None` if some `G′` edge connects different `G`-components (no finite
    /// `r` exists).
    pub fn restriction_radius(&self) -> Option<usize> {
        let mut worst = 1usize; // r >= 1 by definition (G edges span 1 hop)
        for i in 0..self.len() {
            let v = NodeId::new(i);
            if self.extra[i].is_empty() {
                continue;
            }
            let dist = algo::bfs_distances(&self.g, v);
            for &u in &self.extra[i] {
                let d = dist[u.index()];
                if d == algo::UNREACHABLE {
                    return None;
                }
                worst = worst.max(d);
            }
        }
        Some(worst)
    }

    /// Checks the grey zone constraint against `embedding` with constant `c`.
    ///
    /// # Errors
    ///
    /// See [`Embedding::check_grey_zone`].
    pub fn check_grey_zone(&self, embedding: &Embedding, c: f64) -> Result<(), GraphError> {
        embedding.check_grey_zone(&self.g, &self.g_prime, c)
    }
}

impl fmt::Debug for DualGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DualGraph")
            .field("nodes", &self.len())
            .field("reliable_edges", &self.g.edge_count())
            .field("unreliable_edges", &self.unreliable_edge_count())
            .field("diameter", &self.diameter)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn reliable_dual_has_no_extra_edges() {
        let d = DualGraph::reliable(path(5));
        assert!(d.is_reliable_only());
        assert_eq!(d.unreliable_edge_count(), 0);
        for v in d.g().nodes() {
            assert!(d.unreliable_neighbors(v).is_empty());
        }
    }

    #[test]
    fn supergraph_invariant_enforced() {
        let g = path(4);
        let gp = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap(); // missing (2,3)
        let err = DualGraph::new(g, gp).unwrap_err();
        assert!(matches!(err, GraphError::NotSupergraph { missing: (2, 3) }));
    }

    #[test]
    fn node_count_mismatch_rejected() {
        let err = DualGraph::new(path(4), path(5)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeCountMismatch { g: 4, g_prime: 5 }
        ));
    }

    fn path_plus(n: usize, extra: &[(usize, usize)]) -> DualGraph {
        let g = path(n);
        let mut b = GraphBuilder::new(n);
        for (u, v) in g.edges() {
            b.add_edge(u, v);
        }
        for &(u, v) in extra {
            b.try_add_edge_idx(u, v).unwrap();
        }
        DualGraph::new(g, b.build()).unwrap()
    }

    #[test]
    fn unreliable_neighbors_are_g_prime_minus_g() {
        let d = path_plus(5, &[(0, 2), (0, 4)]);
        assert_eq!(d.unreliable_edge_count(), 2);
        assert_eq!(
            d.unreliable_neighbors(NodeId::new(0)),
            &[NodeId::new(2), NodeId::new(4)]
        );
        assert_eq!(d.reliable_neighbors(NodeId::new(0)), &[NodeId::new(1)]);
        assert_eq!(d.all_neighbors(NodeId::new(0)).len(), 3);
    }

    #[test]
    fn r_restriction_detection() {
        let d = path_plus(6, &[(0, 2), (1, 4)]);
        assert!(d.check_r_restricted(3).is_ok());
        let err = d.check_r_restricted(2).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NotRRestricted {
                r: 2,
                edge: (1, 4),
                distance: 3
            }
        ));
        assert_eq!(d.restriction_radius(), Some(3));
    }

    #[test]
    fn restriction_radius_of_reliable_dual_is_one() {
        let d = DualGraph::reliable(path(4));
        assert_eq!(d.restriction_radius(), Some(1));
    }

    #[test]
    fn restriction_radius_none_across_components() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let gp = Graph::from_edges(4, [(0, 1), (2, 3), (1, 2)]).unwrap();
        let d = DualGraph::new(g, gp).unwrap();
        assert_eq!(d.restriction_radius(), None);
    }

    #[test]
    fn diameter_uses_reliable_layer() {
        // G is a path of diameter 4; G' shortcut does not change D.
        let d = path_plus(5, &[(0, 4)]);
        assert_eq!(d.diameter(), 4);
    }

    #[test]
    fn clone_is_cheap_and_shared() {
        let d = path_plus(5, &[(0, 2)]);
        let d2 = d.clone();
        assert_eq!(d2.len(), d.len());
        assert_eq!(d2.diameter(), d.diameter());
    }
}
