//! # amac-graph — dual-graph network substrate
//!
//! Graph structures for reproducing *"Multi-Message Broadcast with Abstract
//! MAC Layers and Unreliable Links"* (Ghaffari, Kantor, Lynch, Newport,
//! PODC 2014).
//!
//! The paper models a wireless network as a **dual graph** `(G, G′)` with
//! `E ⊆ E′`: `G` edges are reliable links (the MAC layer always delivers),
//! `G′ \ G` edges are unreliable links (delivery is up to an adversarial
//! scheduler). This crate provides:
//!
//! * [`Graph`] / [`GraphBuilder`] — immutable undirected graphs in CSR form;
//! * [`DualGraph`] — the validated `(G, G′)` pair with both neighborhoods
//!   exposed per node (nodes can tell reliable from unreliable links, as the
//!   paper assumes);
//! * [`algo`] — BFS distances, diameter, components, `r`-th powers `Gʳ`, and
//!   (maximal) independent-set checks used by the FMMB analysis;
//! * [`geometry`] — planar embeddings, unit disk graphs, and the **grey
//!   zone** constraint checker (Section 2 of the paper);
//! * [`generators`] — every topology the experiments need, including the
//!   Figure 2 lower-bound network.
//!
//! ## Quick example
//!
//! ```
//! use amac_graph::{generators, DualGraph, NodeId};
//! use rand::SeedableRng;
//!
//! // A 20-node line with random unreliable shortcuts of span <= 3 hops.
//! let g = generators::line(20)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let dual = generators::r_restricted_augment(g, 3, 0.4, &mut rng)?;
//! assert!(dual.check_r_restricted(3).is_ok());
//! assert_eq!(dual.diameter(), 19);
//! # Ok::<(), amac_graph::GraphError>(())
//! ```

pub mod algo;
mod dual;
mod error;
pub mod generators;
pub mod geometry;
mod graph;
mod node;
pub mod partition;

pub use dual::DualGraph;
pub use error::GraphError;
pub use geometry::{Embedding, Point};
pub use graph::{Graph, GraphBuilder};
pub use node::{NodeId, NodeSet};
pub use partition::Partition;
