//! Error types for graph construction and dual-graph validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a node index `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The graph's node count.
        n: usize,
    },
    /// An edge connected a node to itself; the model uses simple graphs.
    SelfLoop {
        /// The node with the attempted self loop.
        node: usize,
    },
    /// A dual graph violated the invariant `E ⊆ E′` (a reliable edge is
    /// missing from the unreliable-augmented graph `G′`).
    NotSupergraph {
        /// An example reliable edge missing from `G′`.
        missing: (usize, usize),
    },
    /// The two layers of a dual graph have different node counts.
    NodeCountMismatch {
        /// Node count of `G`.
        g: usize,
        /// Node count of `G′`.
        g_prime: usize,
    },
    /// A `G′` edge spans more than `r` hops in `G`, so the dual graph is not
    /// `r`-restricted.
    NotRRestricted {
        /// The claimed restriction radius.
        r: usize,
        /// An offending `G′` edge.
        edge: (usize, usize),
        /// The `G`-hop distance between its endpoints (`usize::MAX` when
        /// disconnected in `G`).
        distance: usize,
    },
    /// An embedding was rejected while checking the grey zone constraint.
    NotGreyZone {
        /// Human-readable reason (which clause of the definition failed).
        reason: String,
    },
    /// A generator was asked for a structurally impossible network.
    InvalidParameter {
        /// Human-readable description of the bad parameter.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            GraphError::NotSupergraph { missing } => write!(
                f,
                "G' does not contain reliable edge ({}, {}); dual graphs require E ⊆ E'",
                missing.0, missing.1
            ),
            GraphError::NodeCountMismatch { g, g_prime } => {
                write!(f, "G has {g} nodes but G' has {g_prime}")
            }
            GraphError::NotRRestricted { r, edge, distance } => write!(
                f,
                "G' edge ({}, {}) spans {distance} G-hops, more than the restriction r = {r}",
                edge.0, edge.1
            ),
            GraphError::NotGreyZone { reason } => {
                write!(f, "embedding violates the grey zone constraint: {reason}")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            GraphError::NodeOutOfRange { node: 9, n: 4 },
            GraphError::SelfLoop { node: 2 },
            GraphError::NotSupergraph { missing: (0, 1) },
            GraphError::NodeCountMismatch { g: 3, g_prime: 4 },
            GraphError::NotRRestricted {
                r: 2,
                edge: (0, 5),
                distance: 5,
            },
            GraphError::NotGreyZone {
                reason: "too long".into(),
            },
            GraphError::InvalidParameter {
                reason: "n must be positive".into(),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
    }
}
