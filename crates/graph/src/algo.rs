//! Graph algorithms used throughout the reproduction: BFS distances,
//! diameters, connected components, and graph powers.

use crate::graph::{Graph, GraphBuilder};
use crate::node::{NodeId, NodeSet};
use std::collections::VecDeque;

/// Hop distance marker for "unreachable".
pub const UNREACHABLE: usize = usize::MAX;

/// Single-source BFS hop distances from `source`.
///
/// Returns a vector indexed by node; unreachable nodes get [`UNREACHABLE`].
///
/// # Examples
///
/// ```
/// use amac_graph::{Graph, NodeId, algo};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)])?;
/// let d = algo::bfs_distances(&g, NodeId::new(0));
/// assert_eq!(d[2], 2);
/// assert_eq!(d[3], algo::UNREACHABLE);
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![UNREACHABLE; g.len()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for &u in g.neighbors(v) {
            if dist[u.index()] == UNREACHABLE {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Hop distance between two nodes ([`UNREACHABLE`] if disconnected).
pub fn distance(g: &Graph, u: NodeId, v: NodeId) -> usize {
    bfs_distances(g, u)[v.index()]
}

/// The eccentricity of `v`: the maximum finite distance from `v` to any node
/// reachable from it. Returns 0 for an isolated node.
pub fn eccentricity(g: &Graph, v: NodeId) -> usize {
    bfs_distances(g, v)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// The diameter of `g`: the maximum eccentricity over all nodes, ignoring
/// pairs in different components (matching the paper's use of `D` as the
/// diameter of `G`, with MMB only required within components).
///
/// Runs BFS from every node; `O(n · (n + m))`. Fine at the network sizes the
/// experiments use (`n ≤ ~10⁴`).
pub fn diameter(g: &Graph) -> usize {
    (0..g.len())
        .map(|i| eccentricity(g, NodeId::new(i)))
        .max()
        .unwrap_or(0)
}

/// Connected components of `g`, each returned as a [`NodeSet`], in order of
/// their smallest member.
pub fn components(g: &Graph) -> Vec<NodeSet> {
    let mut seen = NodeSet::new(g.len());
    let mut out = Vec::new();
    for i in 0..g.len() {
        let root = NodeId::new(i);
        if seen.contains(root) {
            continue;
        }
        let mut comp = NodeSet::new(g.len());
        let mut queue = VecDeque::new();
        queue.push_back(root);
        seen.insert(root);
        comp.insert(root);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if seen.insert(u) {
                    comp.insert(u);
                    queue.push_back(u);
                }
            }
        }
        out.push(comp);
    }
    out
}

/// Returns the component of `g` containing `v`.
pub fn component_of(g: &Graph, v: NodeId) -> NodeSet {
    let dist = bfs_distances(g, v);
    let mut comp = NodeSet::new(g.len());
    for (i, d) in dist.iter().enumerate() {
        if *d != UNREACHABLE {
            comp.insert(NodeId::new(i));
        }
    }
    comp
}

/// Returns `true` if `g` is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.is_empty() || component_of(g, NodeId::new(0)).len() == g.len()
}

/// The `r`-th power `Gʳ` of `g`: nodes `u ≠ v` are adjacent iff their hop
/// distance in `g` is at most `r` (paper Section 3.2). `G¹ = G`; `G⁰` is
/// edgeless.
///
/// # Examples
///
/// ```
/// use amac_graph::{Graph, NodeId, algo};
///
/// let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let p2 = algo::power(&path, 2);
/// assert!(p2.has_edge(NodeId::new(0), NodeId::new(2)));
/// assert!(!p2.has_edge(NodeId::new(0), NodeId::new(3)));
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
pub fn power(g: &Graph, r: usize) -> Graph {
    let mut b = GraphBuilder::new(g.len());
    if r == 0 {
        return b.build();
    }
    for i in 0..g.len() {
        let v = NodeId::new(i);
        // Bounded BFS to depth r.
        let mut dist = vec![UNREACHABLE; g.len()];
        let mut queue = VecDeque::new();
        dist[i] = 0;
        queue.push_back(v);
        while let Some(x) = queue.pop_front() {
            let dx = dist[x.index()];
            if dx == r {
                continue;
            }
            for &u in g.neighbors(x) {
                if dist[u.index()] == UNREACHABLE {
                    dist[u.index()] = dx + 1;
                    queue.push_back(u);
                    if u.index() > i {
                        b.add_edge(v, u);
                    }
                }
            }
        }
    }
    b.build()
}

/// The `r`-hop closed neighborhood `N_G^r(v)`: all nodes within `r` hops of
/// `v` in `g`, **including** `v` itself (paper Section 3.2 notation).
pub fn r_neighborhood(g: &Graph, v: NodeId, r: usize) -> NodeSet {
    let mut out = NodeSet::new(g.len());
    let mut dist = vec![UNREACHABLE; g.len()];
    let mut queue = VecDeque::new();
    dist[v.index()] = 0;
    out.insert(v);
    queue.push_back(v);
    while let Some(x) = queue.pop_front() {
        let dx = dist[x.index()];
        if dx == r {
            continue;
        }
        for &u in g.neighbors(x) {
            if dist[u.index()] == UNREACHABLE {
                dist[u.index()] = dx + 1;
                out.insert(u);
                queue.push_back(u);
            }
        }
    }
    out
}

/// Checks that `set` is independent in `g`: no two members are adjacent.
pub fn is_independent(g: &Graph, set: &NodeSet) -> bool {
    set.iter()
        .all(|v| g.neighbors(v).iter().all(|u| !set.contains(*u)))
}

/// Checks that `set` is a **maximal** independent set of `g`: independent,
/// and every node is in `set` or has a `g`-neighbor in `set` (paper
/// Lemma 4.5's two properties).
pub fn is_maximal_independent(g: &Graph, set: &NodeSet) -> bool {
    if !is_independent(g, set) {
        return false;
    }
    g.nodes()
        .all(|v| set.contains(v) || g.neighbors(v).iter().any(|u| set.contains(*u)))
}

/// BFS distance from `v` to the nearest member of `targets`
/// ([`UNREACHABLE`] if none is reachable).
pub fn distance_to_set(g: &Graph, v: NodeId, targets: &NodeSet) -> usize {
    if targets.contains(v) {
        return 0;
    }
    let mut dist = vec![UNREACHABLE; g.len()];
    let mut queue = VecDeque::new();
    dist[v.index()] = 0;
    queue.push_back(v);
    while let Some(x) = queue.pop_front() {
        let dx = dist[x.index()];
        for &u in g.neighbors(x) {
            if dist[u.index()] == UNREACHABLE {
                if targets.contains(u) {
                    return dx + 1;
                }
                dist[u.index()] = dx + 1;
                queue.push_back(u);
            }
        }
    }
    UNREACHABLE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter(&path(6)), 5);
        let cycle = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        assert_eq!(diameter(&cycle), 3);
    }

    #[test]
    fn diameter_ignores_cross_component_pairs() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(diameter(&g), 2);
    }

    #[test]
    fn components_found() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let comps = components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 2);
        assert_eq!(comps[2].len(), 1);
        assert!(comps[2].contains(NodeId::new(5)));
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&path(4)));
        assert!(!is_connected(&Graph::from_edges(3, [(0, 1)]).unwrap()));
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
    }

    #[test]
    fn power_zero_is_edgeless_and_power_one_is_identity() {
        let g = path(5);
        assert_eq!(power(&g, 0).edge_count(), 0);
        let p1 = power(&g, 1);
        assert_eq!(p1, g);
    }

    #[test]
    fn power_two_of_path() {
        let g = path(5);
        let p2 = power(&g, 2);
        // Path 0-1-2-3-4: power-2 adds (0,2),(1,3),(2,4).
        assert_eq!(p2.edge_count(), 7);
        assert!(p2.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!p2.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn power_large_r_is_component_clique() {
        let g = path(4);
        let p = power(&g, 10);
        assert_eq!(p.edge_count(), 6); // K4
    }

    #[test]
    fn r_neighborhood_includes_self() {
        let g = path(5);
        let nbh = r_neighborhood(&g, NodeId::new(2), 1);
        assert!(nbh.contains(NodeId::new(2)));
        assert!(nbh.contains(NodeId::new(1)));
        assert!(nbh.contains(NodeId::new(3)));
        assert_eq!(nbh.len(), 3);
        let nbh0 = r_neighborhood(&g, NodeId::new(2), 0);
        assert_eq!(nbh0.len(), 1);
    }

    #[test]
    fn independence_checks() {
        let g = path(5);
        let mut s = NodeSet::new(5);
        s.insert(NodeId::new(0));
        s.insert(NodeId::new(2));
        s.insert(NodeId::new(4));
        assert!(is_independent(&g, &s));
        assert!(is_maximal_independent(&g, &s));
        s.insert(NodeId::new(1));
        assert!(!is_independent(&g, &s));
        let mut sparse = NodeSet::new(5);
        sparse.insert(NodeId::new(0));
        assert!(is_independent(&g, &sparse));
        assert!(!is_maximal_independent(&g, &sparse), "node 3 uncovered");
    }

    #[test]
    fn distance_to_set_basics() {
        let g = path(6);
        let mut t = NodeSet::new(6);
        t.insert(NodeId::new(5));
        assert_eq!(distance_to_set(&g, NodeId::new(0), &t), 5);
        assert_eq!(distance_to_set(&g, NodeId::new(5), &t), 0);
        let empty = NodeSet::new(6);
        assert_eq!(distance_to_set(&g, NodeId::new(0), &empty), UNREACHABLE);
    }
}
