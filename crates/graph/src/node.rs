//! Node identifiers and dense node sets.

use std::fmt;

/// A dense identifier for a node (wireless device) in a network.
///
/// Node identifiers are indices in `0..n` where `n` is the network size.
/// The paper assumes nodes carry unique ids; we use the dense index itself
/// as the unique id, which loses no generality for the algorithms studied
/// (ids are only compared for equality and used as tie-breakers).
///
/// # Examples
///
/// ```
/// use amac_graph::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// A fixed-capacity set of nodes backed by a bit vector.
///
/// All algorithm-facing set operations in this workspace (frontiers, visited
/// sets, MIS membership, …) use `NodeSet` so that membership queries are
/// `O(1)` and iteration is cache friendly.
///
/// # Examples
///
/// ```
/// use amac_graph::{NodeId, NodeSet};
///
/// let mut s = NodeSet::new(10);
/// s.insert(NodeId::new(3));
/// s.insert(NodeId::new(7));
/// assert!(s.contains(NodeId::new(3)));
/// assert_eq!(s.len(), 2);
/// let members: Vec<_> = s.iter().collect();
/// assert_eq!(members, vec![NodeId::new(3), NodeId::new(7)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set able to hold nodes with indices in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Creates a full set containing every node in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = NodeSet::new(capacity);
        for i in 0..capacity {
            s.insert(NodeId::new(i));
        }
        s
    }

    /// Returns the capacity (the exclusive upper bound on node indices).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of nodes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set contains no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `node` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= self.capacity()`.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.capacity,
            "node {node} out of set capacity {}",
            self.capacity
        );
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Inserts `node`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= self.capacity()`.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.capacity,
            "node {node} out of set capacity {}",
            self.capacity
        );
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `node`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= self.capacity()`.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.capacity,
            "node {node} out of set capacity {}",
            self.capacity
        );
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        if *w & bit != 0 {
            *w &= !bit;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes all nodes from the set.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates over members in increasing index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Returns `true` if `self` and `other` share no members.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every member of `self` is a member of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different capacities.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Collects nodes into a set sized to the largest index seen.
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let nodes: Vec<NodeId> = iter.into_iter().collect();
        let cap = nodes.iter().map(|n| n.index() + 1).max().unwrap_or(0);
        let mut s = NodeSet::new(cap);
        for n in nodes {
            s.insert(n);
        }
        s
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<T: IntoIterator<Item = NodeId>>(&mut self, iter: T) {
        for n in iter {
            self.insert(n);
        }
    }
}

/// Iterator over the members of a [`NodeSet`], produced by [`NodeSet::iter`].
#[derive(Clone)]
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(NodeId::new(self.word_idx * 64 + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(NodeId::from(42u32), v);
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(7), NodeId::new(7));
    }

    #[test]
    fn empty_set_has_no_members() {
        let s = NodeSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(NodeId::new(5)));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(NodeId::new(0)));
        assert!(s.insert(NodeId::new(64)));
        assert!(s.insert(NodeId::new(129)));
        assert!(!s.insert(NodeId::new(64)), "double insert reports false");
        assert_eq!(s.len(), 3);
        assert!(s.remove(NodeId::new(64)));
        assert!(!s.remove(NodeId::new(64)), "double remove reports false");
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId::new(0)));
        assert!(!s.contains(NodeId::new(64)));
        assert!(s.contains(NodeId::new(129)));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = NodeSet::new(200);
        for i in [199, 0, 63, 64, 65, 100] {
            s.insert(NodeId::new(i));
        }
        let got: Vec<usize> = s.iter().map(NodeId::index).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 100, 199]);
    }

    #[test]
    fn full_set_contains_everything() {
        let s = NodeSet::full(70);
        assert_eq!(s.len(), 70);
        assert!((0..70).all(|i| s.contains(NodeId::new(i))));
    }

    #[test]
    fn subset_and_disjoint() {
        let mut a = NodeSet::new(64);
        let mut b = NodeSet::new(64);
        a.insert(NodeId::new(1));
        b.insert(NodeId::new(1));
        b.insert(NodeId::new(2));
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut c = NodeSet::new(64);
        c.insert(NodeId::new(3));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn collect_from_iterator() {
        let s: NodeSet = [NodeId::new(2), NodeId::new(5)].into_iter().collect();
        assert!(s.contains(NodeId::new(2)));
        assert!(s.contains(NodeId::new(5)));
        assert_eq!(s.capacity(), 6);
    }

    #[test]
    fn clear_empties_set() {
        let mut s = NodeSet::full(10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of set capacity")]
    fn contains_out_of_range_panics() {
        let s = NodeSet::new(4);
        s.contains(NodeId::new(4));
    }
}
