//! Graph partitioning for the sharded simulator.
//!
//! The sharded MAC runtime splits the dual graph's nodes into `K` shards,
//! each driven by its own event queue, with conservative time-windowed
//! synchronization at shard boundaries. The partitioner's job is to keep
//! most `G′` edges *internal* to a shard (internal deliveries never cross
//! the window barrier) while staying fully deterministic: the same dual
//! graph and `K` must always yield the same partition, because shard
//! assignment feeds the cross-shard merge order that the byte-identical
//! determinism policy pins.
//!
//! [`contiguous`] grows shards as contiguous BFS blocks over the `G′`
//! layer: breadth-first growth keeps geometric duals (grids, grey-zone
//! networks) in compact patches, so boundary edges scale with the patch
//! perimeter rather than its area.

use crate::dual::DualGraph;
use crate::node::NodeId;
use std::collections::VecDeque;

/// A disjoint assignment of every node in a dual graph to one of `k` shards,
/// with the cross-shard (`G′`) boundary edges precomputed.
///
/// Produced by [`contiguous`]; consumed by the sharded MAC runtime to route
/// per-node events to per-shard queues.
///
/// # Examples
///
/// ```
/// use amac_graph::{generators, partition, DualGraph};
///
/// let dual = DualGraph::reliable(generators::line(10)?);
/// let part = partition::contiguous(&dual, 3);
/// assert_eq!(part.k(), 3);
/// // Every node lands in exactly one shard.
/// let total: usize = (0..3).map(|s| part.nodes(s).len()).sum();
/// assert_eq!(total, 10);
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Partition {
    /// Shard index per node, indexed by `NodeId::index()`.
    shard_of: Vec<u32>,
    /// Node lists per shard, each sorted ascending.
    shards: Vec<Vec<NodeId>>,
    /// Cross-shard `G′` edges as `(u, v)` with `u < v`, sorted.
    boundary: Vec<(NodeId, NodeId)>,
}

impl Partition {
    /// Number of shards (including empty ones when `k > n`).
    pub fn k(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the partitioned graph.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// The nodes owned by `shard`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.k()`.
    pub fn nodes(&self, shard: usize) -> &[NodeId] {
        &self.shards[shard]
    }

    /// All cross-shard `G′` edges as `(u, v)` pairs with `u < v`, sorted.
    pub fn boundary_edges(&self) -> &[(NodeId, NodeId)] {
        &self.boundary
    }

    /// Returns `true` if `node` has at least one `G′` neighbor in another
    /// shard.
    pub fn is_boundary(&self, node: NodeId) -> bool {
        self.boundary.iter().any(|&(u, v)| u == node || v == node)
    }

    /// The full shard-index-per-node map, indexed by `NodeId::index()`.
    pub fn shard_map(&self) -> &[u32] {
        &self.shard_of
    }
}

/// Partitions `dual` into `k` contiguous BFS blocks over the `G′` layer.
///
/// Deterministic: shards are grown in node-id order — shard `s` starts a
/// breadth-first search from the lowest-id unassigned node and absorbs
/// nodes in BFS discovery order until it reaches its size quota
/// (`n / k`, with the first `n mod k` shards one node larger). When a
/// connected component is exhausted before the quota is met, growth
/// restarts from the next lowest unassigned node, so disconnected duals
/// partition cleanly.
///
/// When `k > n` the trailing shards are empty; `k = 1` yields the trivial
/// partition with no boundary edges.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn contiguous(dual: &DualGraph, k: usize) -> Partition {
    assert!(k >= 1, "shard count must be at least 1");
    let n = dual.len();
    const UNASSIGNED: u32 = u32::MAX;
    let mut shard_of = vec![UNASSIGNED; n];
    let mut shards: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    let base = n / k;
    let rem = n % k;
    let mut next_seed = 0usize;
    let mut queue = VecDeque::new();

    for (s, members) in shards.iter_mut().enumerate() {
        let quota = base + usize::from(s < rem);
        members.reserve(quota);
        queue.clear();
        while members.len() < quota {
            if queue.is_empty() {
                while next_seed < n && shard_of[next_seed] != UNASSIGNED {
                    next_seed += 1;
                }
                debug_assert!(next_seed < n, "quota accounting exhausted the graph");
                shard_of[next_seed] = u32::try_from(s).expect("shard count fits in u32");
                members.push(NodeId::new(next_seed));
                queue.push_back(NodeId::new(next_seed));
                continue;
            }
            let v = queue.pop_front().expect("queue is non-empty");
            for &u in dual.all_neighbors(v) {
                if members.len() >= quota {
                    break;
                }
                if shard_of[u.index()] == UNASSIGNED {
                    shard_of[u.index()] = u32::try_from(s).expect("shard count fits in u32");
                    members.push(u);
                    queue.push_back(u);
                }
            }
        }
        members.sort_unstable();
    }

    let mut boundary = Vec::new();
    for i in 0..n {
        let v = NodeId::new(i);
        for &u in dual.all_neighbors(v) {
            if v < u && shard_of[v.index()] != shard_of[u.index()] {
                boundary.push((v, u));
            }
        }
    }
    boundary.sort_unstable();

    Partition {
        shard_of,
        shards,
        boundary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn line_dual(n: usize) -> DualGraph {
        DualGraph::reliable(generators::line(n).unwrap())
    }

    fn random_dual(n: usize, seed: u64) -> DualGraph {
        // A connected ring plus random unreliable chords.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap();
        let mut b = crate::graph::GraphBuilder::new(n);
        for (u, v) in g.edges() {
            b.add_edge(u, v);
        }
        for i in 0..n {
            if rng.gen_bool(0.3) {
                let j = rng.gen_range(0..n as u64) as usize;
                if i != j {
                    let _ = b.try_add_edge_idx(i, j);
                }
            }
        }
        DualGraph::new(g, b.build()).unwrap()
    }

    fn check_partition(dual: &DualGraph, part: &Partition, k: usize) {
        assert_eq!(part.k(), k);
        // Every node in exactly one shard; shard lists match the map.
        let mut seen = vec![false; dual.len()];
        for s in 0..k {
            for &v in part.nodes(s) {
                assert!(!seen[v.index()], "node {v:?} in two shards");
                seen[v.index()] = true;
                assert_eq!(part.shard_of(v), s);
            }
        }
        assert!(seen.iter().all(|&b| b), "node missing from all shards");
        // Balanced sizes: every shard holds n/k or n/k + 1 nodes.
        let base = dual.len() / k;
        for s in 0..k {
            let len = part.nodes(s).len();
            assert!(
                len == base || len == base + 1,
                "shard {s} has {len} nodes, expected {base} or {}",
                base + 1
            );
        }
        // Boundary edges complete and symmetric vs brute force.
        let mut brute = Vec::new();
        for i in 0..dual.len() {
            let v = NodeId::new(i);
            for &u in dual.all_neighbors(v) {
                if v < u && part.shard_of(v) != part.shard_of(u) {
                    brute.push((v, u));
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(part.boundary_edges(), brute.as_slice());
        for &(u, v) in part.boundary_edges() {
            assert!(part.is_boundary(u));
            assert!(part.is_boundary(v));
        }
    }

    #[test]
    fn line_partition_is_contiguous_blocks() {
        let dual = line_dual(10);
        let part = contiguous(&dual, 3);
        check_partition(&dual, &part, 3);
        // BFS from node 0 over a line yields contiguous id ranges.
        assert_eq!(
            part.nodes(0),
            &[
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
        assert_eq!(
            part.nodes(1),
            &[NodeId::new(4), NodeId::new(5), NodeId::new(6)]
        );
        assert_eq!(
            part.nodes(2),
            &[NodeId::new(7), NodeId::new(8), NodeId::new(9)]
        );
        // Exactly two cut edges on a line split into three blocks.
        assert_eq!(part.boundary_edges().len(), 2);
    }

    #[test]
    fn k_equal_one_is_trivial() {
        let dual = random_dual(20, 7);
        let part = contiguous(&dual, 1);
        check_partition(&dual, &part, 1);
        assert!(part.boundary_edges().is_empty());
        assert!(!part.is_boundary(NodeId::new(0)));
    }

    #[test]
    fn k_larger_than_n_leaves_empty_shards() {
        let dual = line_dual(3);
        let part = contiguous(&dual, 7);
        check_partition(&dual, &part, 7);
        assert_eq!(part.nodes(0), &[NodeId::new(0)]);
        assert!(part.nodes(5).is_empty());
        assert!(part.nodes(6).is_empty());
    }

    #[test]
    fn disconnected_duals_partition_cleanly() {
        // Two disjoint 4-node paths.
        let g = Graph::from_edges(8, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]).unwrap();
        let dual = DualGraph::reliable(g);
        for k in 1..=8 {
            let part = contiguous(&dual, k);
            check_partition(&dual, &part, k);
        }
    }

    #[test]
    fn partition_is_deterministic() {
        for seed in [1u64, 2, 3] {
            let dual = random_dual(40, seed);
            for k in [1, 2, 4, 7] {
                let a = contiguous(&dual, k);
                let b = contiguous(&dual, k);
                assert_eq!(a.shard_map(), b.shard_map());
                assert_eq!(a.boundary_edges(), b.boundary_edges());
            }
        }
    }

    #[test]
    fn random_duals_always_form_valid_partitions() {
        for seed in 0..10u64 {
            let n = 10 + (seed as usize) * 7;
            let dual = random_dual(n, seed);
            for k in [1, 2, 3, 4, 7, n, n + 3] {
                let part = contiguous(&dual, k);
                check_partition(&dual, &part, k);
            }
        }
    }

    #[test]
    fn grey_zone_partition_has_small_boundary() {
        let net = generators::connected_grey_zone_network(
            &generators::GreyZoneConfig::new(120, 6.0),
            32,
            &mut StdRng::seed_from_u64(11),
        )
        .unwrap();
        let dual = net.dual;
        let part = contiguous(&dual, 4);
        check_partition(&dual, &part, 4);
        // BFS blocks over a geometric graph keep most edges internal.
        let total_edges = dual.g_prime().edge_count();
        assert!(
            part.boundary_edges().len() * 2 < total_edges,
            "boundary {} of {} edges",
            part.boundary_edges().len(),
            total_edges
        );
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        let dual = line_dual(4);
        let _ = contiguous(&dual, 0);
    }
}
