//! Undirected graphs in compressed adjacency form.

use crate::error::GraphError;
use crate::node::{NodeId, NodeSet};
use std::fmt;

/// An undirected simple graph over nodes `0..n` with sorted adjacency lists.
///
/// `Graph` is immutable once built (use [`GraphBuilder`] to construct one) and
/// stores adjacency in a flat CSR (compressed sparse row) layout, so neighbor
/// scans are contiguous and allocation-free.
///
/// In this workspace a `Graph` plays one of two roles inside a
/// [`DualGraph`](crate::DualGraph): the *reliable* topology `G` or the
/// *unreliable-augmented* topology `G′`.
///
/// # Examples
///
/// ```
/// use amac_graph::{Graph, NodeId};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR row offsets; length `n + 1`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists; length `2 * |E|`.
    adjacency: Vec<NodeId>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl Graph {
    /// Builds a graph with `n` nodes from an iterator of undirected edges
    /// given as index pairs.
    ///
    /// Duplicate edges (in either orientation) are merged.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] if an edge connects a node to itself.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.try_add_edge_idx(u, v)?;
        }
        Ok(b.build())
    }

    /// Builds an edgeless graph with `n` nodes.
    pub fn empty(n: usize) -> Graph {
        GraphBuilder::new(n).build()
    }

    /// Returns the number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns the sorted neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.index() >= self.len()`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        assert!(i < self.len(), "node {v} out of range (n = {})", self.len());
        &self.adjacency[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Returns the degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.index() >= self.len()`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Returns the maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.len())
            .map(|i| self.degree(NodeId::new(i)))
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if `(u, v)` is an edge. Symmetric by construction.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        assert!(
            v.index() < self.len(),
            "node {v} out of range (n = {})",
            self.len()
        );
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + Clone + '_ {
        (0..self.len()).map(NodeId::new)
    }

    /// Iterates over every undirected edge exactly once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Returns `true` if `other` contains every edge of `self` (and both have
    /// the same node count). This is the subgraph relation used for the dual
    /// graph invariant `E ⊆ E′`.
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        if self.len() != other.len() {
            return false;
        }
        self.edges().all(|(u, v)| other.has_edge(u, v))
    }

    /// Returns the neighbors of `v` in `self` that are **not** neighbors of
    /// `v` in `base` — i.e. the `G′ \ G` neighborhood when `self = G′` and
    /// `base = G`.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ or `v` is out of range.
    pub fn extra_neighbors(&self, base: &Graph, v: NodeId) -> Vec<NodeId> {
        assert_eq!(self.len(), base.len(), "node count mismatch");
        self.neighbors(v)
            .iter()
            .copied()
            .filter(|&u| !base.has_edge(v, u))
            .collect()
    }

    /// Returns a new graph with the union of the edges of `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn union(&self, other: &Graph) -> Graph {
        assert_eq!(self.len(), other.len(), "node count mismatch");
        let mut b = GraphBuilder::new(self.len());
        for (u, v) in self.edges().chain(other.edges()) {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Returns the set of nodes adjacent to any member of `set` (excluding
    /// members themselves unless also adjacent to another member).
    pub fn neighborhood(&self, set: &NodeSet) -> NodeSet {
        let mut out = NodeSet::new(self.len());
        for v in set.iter() {
            for &u in self.neighbors(v) {
                out.insert(u);
            }
        }
        out
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.len())
            .field("edges", &self.edge_count)
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// # Examples
///
/// ```
/// use amac_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(NodeId::new(0), NodeId::new(1));
/// b.add_edge(NodeId::new(1), NodeId::new(2));
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Returns the node count the builder was created with.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds an undirected edge. Duplicates are merged at build time.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.try_add_edge_idx(u.index(), v.index())
            .expect("invalid edge");
        self
    }

    /// Adds an undirected edge given as raw indices.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn try_add_edge_idx(&mut self, u: usize, v: usize) -> Result<&mut Self, GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a as u32, b as u32));
        Ok(self)
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(&self) -> Graph {
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        edges.dedup();

        let mut degrees = vec![0u32; self.n];
        for &(u, v) in &edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut adjacency = vec![NodeId::new(0); acc as usize];
        for &(u, v) in &edges {
            adjacency[cursor[u as usize] as usize] = NodeId::new(v as usize);
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize] as usize] = NodeId::new(u as usize);
            cursor[v as usize] += 1;
        }
        for i in 0..self.n {
            adjacency[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }
        Graph {
            offsets,
            adjacency,
            edge_count: edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert!(g.is_empty());
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn path_adjacency() {
        let g = path(4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
        assert_eq!(
            g.neighbors(NodeId::new(1)),
            &[NodeId::new(0), NodeId::new(2)]
        );
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Graph::from_edges(3, [(0, 3)]).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 3, n: 3 }));
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = path(3);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = path(5);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn subgraph_relation() {
        let g = path(4);
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1));
        b.add_edge(NodeId::new(1), NodeId::new(2));
        b.add_edge(NodeId::new(2), NodeId::new(3));
        b.add_edge(NodeId::new(0), NodeId::new(3));
        let bigger = b.build();
        assert!(g.is_subgraph_of(&bigger));
        assert!(!bigger.is_subgraph_of(&g));
        assert!(g.is_subgraph_of(&g));
    }

    #[test]
    fn extra_neighbors_reports_g_prime_only_links() {
        let g = path(4);
        let mut b = GraphBuilder::new(4);
        for (u, v) in g.edges() {
            b.add_edge(u, v);
        }
        b.add_edge(NodeId::new(0), NodeId::new(3));
        let gp = b.build();
        assert_eq!(gp.extra_neighbors(&g, NodeId::new(0)), vec![NodeId::new(3)]);
        assert_eq!(gp.extra_neighbors(&g, NodeId::new(1)), Vec::<NodeId>::new());
    }

    #[test]
    fn union_merges_edges() {
        let a = Graph::from_edges(4, [(0, 1)]).unwrap();
        let b = Graph::from_edges(4, [(2, 3), (0, 1)]).unwrap();
        let u = a.union(&b);
        assert_eq!(u.edge_count(), 2);
        assert!(u.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(u.has_edge(NodeId::new(2), NodeId::new(3)));
    }

    #[test]
    fn neighborhood_of_set() {
        let g = path(5);
        let mut s = NodeSet::new(5);
        s.insert(NodeId::new(2));
        let nbh = g.neighborhood(&s);
        assert!(nbh.contains(NodeId::new(1)));
        assert!(nbh.contains(NodeId::new(3)));
        assert!(!nbh.contains(NodeId::new(2)));
        assert_eq!(nbh.len(), 2);
    }
}
