//! Topology generators for every experiment in the reproduction.
//!
//! * [`classic`] — deterministic textbook topologies (`line`, `ring`,
//!   `grid`, `star`, `tree`, `barbell`, `complete`) plus the Lemma 3.18
//!   [`choke_star`].
//! * [`geometric`] — random grey-zone networks (unit disk `G` with bounded
//!   unreliable augmentation) witnessing the paper's geometric constraint.
//! * [`augment`] — `r`-restricted and arbitrary random `G′` augmentations of
//!   a given reliable layer.
//! * [`lower_bound`] — the Figure 2 dual-line network `C`.

pub mod augment;
pub mod classic;
pub mod geometric;
pub mod lower_bound;

pub use augment::{arbitrary_augment, long_range_augment, r_restricted_augment};
pub use classic::{barbell, choke_star, complete, grid, line, ring, star, tree};
pub use geometric::{
    connected_grey_zone_network, embedded_line, grey_zone_network, grid_grey_zone_network,
    GreyZoneConfig, GreyZoneNetwork,
};
pub use lower_bound::{dual_line, DualLineNetwork, DUAL_LINE_C};
