//! Random `G′` augmentations of a reliable base graph.
//!
//! These generators start from a given reliable layer `G` and add unreliable
//! edges under the paper's two structural regimes:
//!
//! * [`r_restricted_augment`] — every added edge spans at most `r` hops in
//!   `G` (the `r`-restricted constraint of Theorem 3.2);
//! * [`arbitrary_augment`] — edges may span any distance (the arbitrary
//!   `G′` regime of Theorem 3.1), including deliberately long-range ones.

use crate::algo;
use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use crate::node::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Adds unreliable edges between nodes at `G`-distance in `[2, r]`,
/// including each candidate pair independently with probability `p`.
///
/// The resulting dual graph is `r`-restricted by construction (re-checked in
/// debug builds). With `r = 1` no edges can be added and `G′ = G`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `r == 0` or `p ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use amac_graph::generators::{line, r_restricted_augment};
/// use rand::SeedableRng;
///
/// let g = line(20)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let dual = r_restricted_augment(g, 4, 0.5, &mut rng)?;
/// assert!(dual.check_r_restricted(4).is_ok());
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
pub fn r_restricted_augment<R: Rng + ?Sized>(
    g: Graph,
    r: usize,
    p: f64,
    rng: &mut R,
) -> Result<DualGraph, GraphError> {
    if r == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "restriction radius r must be at least 1".into(),
        });
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("probability {p} outside [0, 1]"),
        });
    }
    let mut b = GraphBuilder::new(g.len());
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    for i in 0..g.len() {
        let v = NodeId::new(i);
        let dist = algo::bfs_distances(&g, v);
        for (j, &d) in dist.iter().enumerate().skip(i + 1) {
            if d >= 2 && d <= r && rng.gen_bool(p) {
                b.try_add_edge_idx(i, j)?;
            }
        }
    }
    let dual = DualGraph::new(g, b.build())?;
    debug_assert!(dual.check_r_restricted(r).is_ok());
    Ok(dual)
}

/// Adds `count` unreliable edges sampled uniformly from all non-`G` pairs
/// within the same `G`-component (so the MMB problem instance is unchanged)
/// with **no** distance restriction — the arbitrary `G′` regime.
///
/// If fewer than `count` candidate pairs exist, all of them are added.
///
/// # Errors
///
/// Propagates graph construction errors (none expected for valid inputs).
pub fn arbitrary_augment<R: Rng + ?Sized>(
    g: Graph,
    count: usize,
    rng: &mut R,
) -> Result<DualGraph, GraphError> {
    let comps = algo::components(&g);
    let mut comp_of = vec![0usize; g.len()];
    for (ci, comp) in comps.iter().enumerate() {
        for v in comp.iter() {
            comp_of[v.index()] = ci;
        }
    }
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for i in 0..g.len() {
        for j in (i + 1)..g.len() {
            if comp_of[i] == comp_of[j] && !g.has_edge(NodeId::new(i), NodeId::new(j)) {
                candidates.push((i, j));
            }
        }
    }
    candidates.shuffle(rng);
    candidates.truncate(count);

    let mut b = GraphBuilder::new(g.len());
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    for (i, j) in candidates {
        b.try_add_edge_idx(i, j)?;
    }
    DualGraph::new(g, b.build())
}

/// Adds the *longest-range* `count` unreliable edges (by `G`-hop distance,
/// within components): the most adversarial arbitrary `G′` in the sense of
/// the paper's discussion — unreliability "covering long distances in `G`"
/// is exactly what degrades broadcast.
///
/// # Errors
///
/// Propagates graph construction errors (none expected for valid inputs).
pub fn long_range_augment(g: Graph, count: usize) -> Result<DualGraph, GraphError> {
    let mut scored: Vec<(usize, usize, usize)> = Vec::new(); // (distance, i, j)
    for i in 0..g.len() {
        let dist = algo::bfs_distances(&g, NodeId::new(i));
        for (j, &d) in dist.iter().enumerate().skip(i + 1) {
            if d != algo::UNREACHABLE && d >= 2 {
                scored.push((d, i, j));
            }
        }
    }
    scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    scored.truncate(count);

    let mut b = GraphBuilder::new(g.len());
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    for (_, i, j) in scored {
        b.try_add_edge_idx(i, j)?;
    }
    DualGraph::new(g, b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::line;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn r_restricted_respects_radius() {
        let mut rng = StdRng::seed_from_u64(11);
        let dual = r_restricted_augment(line(30).unwrap(), 3, 0.8, &mut rng).unwrap();
        dual.check_r_restricted(3).unwrap();
        assert!(dual.unreliable_edge_count() > 0, "p = 0.8 should add edges");
        assert!(dual.restriction_radius().unwrap() <= 3);
    }

    #[test]
    fn r_one_adds_nothing() {
        let mut rng = StdRng::seed_from_u64(4);
        let dual = r_restricted_augment(line(10).unwrap(), 1, 1.0, &mut rng).unwrap();
        assert!(dual.is_reliable_only());
    }

    #[test]
    fn p_one_adds_every_candidate() {
        let mut rng = StdRng::seed_from_u64(4);
        let dual = r_restricted_augment(line(6).unwrap(), 2, 1.0, &mut rng).unwrap();
        // Path of 6 nodes: pairs at distance exactly 2 are (0,2),(1,3),(2,4),(3,5).
        assert_eq!(dual.unreliable_edge_count(), 4);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(r_restricted_augment(line(5).unwrap(), 0, 0.5, &mut rng).is_err());
        assert!(r_restricted_augment(line(5).unwrap(), 2, 1.5, &mut rng).is_err());
    }

    #[test]
    fn arbitrary_augment_adds_requested_count() {
        let mut rng = StdRng::seed_from_u64(8);
        let dual = arbitrary_augment(line(20).unwrap(), 15, &mut rng).unwrap();
        assert_eq!(dual.unreliable_edge_count(), 15);
    }

    #[test]
    fn arbitrary_augment_caps_at_candidate_count() {
        let mut rng = StdRng::seed_from_u64(8);
        // Path of 4 nodes has 3 non-edges within the component.
        let dual = arbitrary_augment(line(4).unwrap(), 100, &mut rng).unwrap();
        assert_eq!(dual.unreliable_edge_count(), 3);
    }

    #[test]
    fn arbitrary_augment_stays_within_components() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let dual = arbitrary_augment(g, 100, &mut rng).unwrap();
        for i in 0..3 {
            for j in 3..6 {
                assert!(
                    !dual.g_prime().has_edge(NodeId::new(i), NodeId::new(j)),
                    "edge across components added"
                );
            }
        }
    }

    #[test]
    fn long_range_prefers_distant_pairs() {
        let dual = long_range_augment(line(20).unwrap(), 1).unwrap();
        assert_eq!(dual.unreliable_edge_count(), 1);
        // The single longest-range pair on a 20-path is (0, 19), distance 19.
        assert!(dual.g_prime().has_edge(NodeId::new(0), NodeId::new(19)));
        assert_eq!(dual.restriction_radius(), Some(19));
    }
}
