//! The lower-bound network `C` of paper Figure 2.
//!
//! Two parallel lines `a_1 … a_D` and `b_1 … b_D`. `G` consists of the two
//! (disconnected) line graphs. `G′` adds, for every `i < D`, the cross edges
//! `a_i — b_{i+1}` and `b_i — a_{i+1}`. Message `m_0` starts at `a_1`,
//! `m_1` at `b_1`; the adversarial scheduler of Lemmas 3.19–3.20 uses the
//! cross edges to make the two messages delay each other, forcing
//! `Ω(D · F_ack)`.
//!
//! The construction is grey-zone-restricted: we also return an embedding
//! witnessing the constraint with constant `c = 1.5` (lines at vertical
//! separation 1.1, horizontal spacing 0.9).

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::geometry::{Embedding, Point};
use crate::graph::GraphBuilder;
use crate::node::NodeId;

/// Horizontal spacing between consecutive line nodes in the witness
/// embedding. Must be in `(0.5, 1]` so lines are paths in the unit disk
/// graph.
const SPACING: f64 = 0.9;
/// Vertical separation between the two lines; `> 1` so no cross pair is a
/// `G` edge.
const LINE_GAP: f64 = 1.1;
/// Grey zone constant witnessing the construction:
/// `sqrt(SPACING² + LINE_GAP²) ≈ 1.43 ≤ 1.5`.
pub const DUAL_LINE_C: f64 = 1.5;

/// The generated Figure 2 network with convenient node accessors.
#[derive(Clone, Debug)]
pub struct DualLineNetwork {
    /// The dual graph `(G, G′)`.
    pub dual: DualGraph,
    /// Embedding witnessing the grey zone constraint with [`DUAL_LINE_C`].
    pub embedding: Embedding,
    /// Line length `D` (each line has `D` nodes).
    pub d: usize,
}

impl DualLineNetwork {
    /// Node `a_i` (1-based, `1 ≤ i ≤ D`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of `1..=D`.
    pub fn a(&self, i: usize) -> NodeId {
        assert!(
            (1..=self.d).contains(&i),
            "a_{i} out of range 1..={}",
            self.d
        );
        NodeId::new(i - 1)
    }

    /// Node `b_i` (1-based, `1 ≤ i ≤ D`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of `1..=D`.
    pub fn b(&self, i: usize) -> NodeId {
        assert!(
            (1..=self.d).contains(&i),
            "b_{i} out of range 1..={}",
            self.d
        );
        NodeId::new(self.d + i - 1)
    }

    /// Returns `Some(i)` if `v` is `a_i`, else `None`.
    pub fn a_index(&self, v: NodeId) -> Option<usize> {
        (v.index() < self.d).then_some(v.index() + 1)
    }

    /// Returns `Some(i)` if `v` is `b_i`, else `None`.
    pub fn b_index(&self, v: NodeId) -> Option<usize> {
        (v.index() >= self.d && v.index() < 2 * self.d).then(|| v.index() - self.d + 1)
    }
}

/// Builds the Figure 2 network with line length `d ≥ 2`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `d < 2`.
///
/// # Examples
///
/// ```
/// use amac_graph::generators::dual_line;
///
/// let net = dual_line(10)?;
/// assert_eq!(net.dual.len(), 20);
/// // Reliable edges stay within a line; cross edges are unreliable.
/// assert!(net.dual.g().has_edge(net.a(1), net.a(2)));
/// assert!(!net.dual.g().has_edge(net.a(1), net.b(2)));
/// assert!(net.dual.g_prime().has_edge(net.a(1), net.b(2)));
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
pub fn dual_line(d: usize) -> Result<DualLineNetwork, GraphError> {
    if d < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "dual line network needs line length d >= 2".into(),
        });
    }
    let n = 2 * d;
    let mut g = GraphBuilder::new(n);
    // Line A occupies indices 0..d, line B occupies d..2d.
    for i in 0..d - 1 {
        g.try_add_edge_idx(i, i + 1)?;
        g.try_add_edge_idx(d + i, d + i + 1)?;
    }
    let g = g.build();

    let mut gp = GraphBuilder::new(n);
    for (u, v) in g.edges() {
        gp.add_edge(u, v);
    }
    // Cross edges: a_i — b_{i+1} and b_i — a_{i+1} for i in 1..D (1-based).
    for i in 0..d - 1 {
        gp.try_add_edge_idx(i, d + i + 1)?; // a_{i+1} (0-based i) — b_{i+2}
        gp.try_add_edge_idx(d + i, i + 1)?;
    }
    let dual = DualGraph::new(g, gp.build())?;

    let mut positions = Vec::with_capacity(n);
    for i in 0..d {
        positions.push(Point::new(i as f64 * SPACING, 0.0));
    }
    for i in 0..d {
        positions.push(Point::new(i as f64 * SPACING, LINE_GAP));
    }
    let embedding = Embedding::new(positions);
    debug_assert!(dual.check_grey_zone(&embedding, DUAL_LINE_C).is_ok());

    Ok(DualLineNetwork { dual, embedding, d })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn shape_matches_figure_2() {
        let net = dual_line(8).unwrap();
        assert_eq!(net.dual.len(), 16);
        // G: two lines => 2 * (d-1) edges.
        assert_eq!(net.dual.g().edge_count(), 14);
        // Cross edges: 2 * (d-1).
        assert_eq!(net.dual.unreliable_edge_count(), 14);
        // Lines are separate G-components.
        assert_eq!(algo::components(net.dual.g()).len(), 2);
    }

    #[test]
    fn cross_edges_connect_offset_indices() {
        let net = dual_line(5).unwrap();
        for i in 1..5 {
            assert!(net.dual.g_prime().has_edge(net.a(i), net.b(i + 1)));
            assert!(net.dual.g_prime().has_edge(net.b(i), net.a(i + 1)));
            assert!(!net.dual.g().has_edge(net.a(i), net.b(i + 1)));
        }
        // Same-index cross pairs are NOT connected.
        for i in 1..=5 {
            assert!(!net.dual.g_prime().has_edge(net.a(i), net.b(i)));
        }
    }

    #[test]
    fn grey_zone_witness_verifies() {
        let net = dual_line(12).unwrap();
        net.dual
            .check_grey_zone(&net.embedding, DUAL_LINE_C)
            .unwrap();
    }

    #[test]
    fn node_accessors_roundtrip() {
        let net = dual_line(6).unwrap();
        assert_eq!(net.a_index(net.a(3)), Some(3));
        assert_eq!(net.b_index(net.b(6)), Some(6));
        assert_eq!(net.b_index(net.a(3)), None);
        assert_eq!(net.a_index(net.b(1)), None);
    }

    #[test]
    fn minimum_size_rejected() {
        assert!(dual_line(1).is_err());
        assert!(dual_line(2).is_ok());
    }

    #[test]
    fn line_diameter_is_d_minus_one() {
        let net = dual_line(9).unwrap();
        assert_eq!(net.dual.diameter(), 8);
    }
}
