//! Random geometric (grey zone) dual graph generators.
//!
//! These produce embedded networks satisfying the paper's grey zone
//! constraint by construction: `G` is the unit disk graph of the embedding
//! and every `G′ \ G` edge has length in `(1, c]`.

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::geometry::{Embedding, Point};
use crate::graph::GraphBuilder;
use crate::node::NodeId;
use rand::Rng;

/// Configuration for [`grey_zone_network`].
#[derive(Clone, Debug)]
pub struct GreyZoneConfig {
    /// Number of nodes.
    pub n: usize,
    /// Side length of the square deployment area.
    pub side: f64,
    /// Grey zone constant `c ≥ 1`: `G′` edges may span distances in `(1, c]`.
    pub c: f64,
    /// Probability that a node pair at distance in `(1, c]` becomes a
    /// `G′ \ G` edge. `0.0` yields `G′ = G`; `1.0` yields the densest
    /// admissible grey zone `G′`.
    pub grey_edge_probability: f64,
}

impl GreyZoneConfig {
    /// A reasonable default: `c = 2`, half of the grey-zone pairs unreliable.
    pub fn new(n: usize, side: f64) -> Self {
        GreyZoneConfig {
            n,
            side,
            c: 2.0,
            grey_edge_probability: 0.5,
        }
    }

    /// Sets the grey zone constant `c`.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Sets the probability of including each admissible grey-zone edge.
    pub fn with_grey_edge_probability(mut self, p: f64) -> Self {
        self.grey_edge_probability = p;
        self
    }
}

/// A generated grey-zone network: the dual graph plus its witnessing
/// embedding and constant.
#[derive(Clone, Debug)]
pub struct GreyZoneNetwork {
    /// The dual graph `(G, G′)`.
    pub dual: DualGraph,
    /// The planar embedding witnessing the grey zone constraint.
    pub embedding: Embedding,
    /// The grey zone constant `c` used.
    pub c: f64,
}

/// Samples a random grey-zone network: `n` points uniform in a
/// `side × side` square; `G` is their unit disk graph; each pair at distance
/// in `(1, c]` becomes an unreliable edge independently with probability
/// `grey_edge_probability`.
///
/// The returned network satisfies [`DualGraph::check_grey_zone`] with the
/// returned embedding by construction (also re-checked in debug builds).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `n == 0`, non-positive
/// `side`, `c < 1`, or a probability outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use amac_graph::generators::{grey_zone_network, GreyZoneConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let net = grey_zone_network(&GreyZoneConfig::new(50, 6.0), &mut rng)?;
/// assert_eq!(net.dual.len(), 50);
/// net.dual.check_grey_zone(&net.embedding, net.c)?;
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
pub fn grey_zone_network<R: Rng + ?Sized>(
    config: &GreyZoneConfig,
    rng: &mut R,
) -> Result<GreyZoneNetwork, GraphError> {
    if config.n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "grey zone network needs at least 1 node".into(),
        });
    }
    if config.side <= 0.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("side length {} must be positive", config.side),
        });
    }
    if config.c < 1.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("grey zone constant c = {} must be >= 1", config.c),
        });
    }
    if !(0.0..=1.0).contains(&config.grey_edge_probability) {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "grey edge probability {} outside [0, 1]",
                config.grey_edge_probability
            ),
        });
    }

    let positions: Vec<Point> = (0..config.n)
        .map(|_| {
            Point::new(
                rng.gen::<f64>() * config.side,
                rng.gen::<f64>() * config.side,
            )
        })
        .collect();
    let embedding = Embedding::new(positions);
    let g = embedding.unit_disk_graph(1.0);

    let mut bp = GraphBuilder::new(config.n);
    for (u, v) in g.edges() {
        bp.add_edge(u, v);
    }
    for i in 0..config.n {
        for j in (i + 1)..config.n {
            let d = embedding.distance(NodeId::new(i), NodeId::new(j));
            if d > 1.0 && d <= config.c && rng.gen_bool(config.grey_edge_probability) {
                bp.try_add_edge_idx(i, j)?;
            }
        }
    }
    let dual = DualGraph::new(g, bp.build())?;
    debug_assert!(dual.check_grey_zone(&embedding, config.c).is_ok());
    Ok(GreyZoneNetwork {
        dual,
        embedding,
        c: config.c,
    })
}

/// Samples a **connected** grey-zone network by rejection: retries up to
/// `attempts` times until the reliable layer `G` is connected.
///
/// Connectivity of `G` is not required by the MMB problem definition, but
/// most experiments want it so that completion means "every node got every
/// message".
///
/// # Errors
///
/// Returns the last generation error, or [`GraphError::InvalidParameter`] if
/// no connected sample was found within `attempts`.
pub fn connected_grey_zone_network<R: Rng + ?Sized>(
    config: &GreyZoneConfig,
    attempts: usize,
    rng: &mut R,
) -> Result<GreyZoneNetwork, GraphError> {
    for _ in 0..attempts {
        let net = grey_zone_network(config, rng)?;
        if crate::algo::is_connected(net.dual.g()) {
            return Ok(net);
        }
    }
    Err(GraphError::InvalidParameter {
        reason: format!(
            "no connected sample in {attempts} attempts (n = {}, side = {}); increase density",
            config.n, config.side
        ),
    })
}

/// Grid spacing for [`grid_grey_zone_network`]. With jitter below
/// [`GRID_JITTER`], axis-aligned grid neighbors stay within unit distance
/// (reliable) while diagonal neighbors land in `(1, 2]` (grey zone).
const GRID_SPACING: f64 = 0.9;
/// Maximum per-coordinate jitter for [`grid_grey_zone_network`].
const GRID_JITTER: f64 = 0.02;

/// Samples a scalable jittered-grid grey-zone network in `O(n)` time:
/// node `i` sits near grid cell `(i % cols, i / cols)` (with `cols ≈ √n`)
/// at spacing 0.9 with per-coordinate jitter below 0.02, so
///
/// * `G` — the unit disk graph — is **exactly** the 4-neighbor grid
///   (axis-aligned neighbors are at distance ≤ 0.95, everything else is at
///   distance ≥ 1.21), hence connected by construction with diameter
///   `(rows − 1) + (cols − 1)`;
/// * diagonal grid neighbors are at distance in `[1.21, 1.33] ⊆ (1, 2]`,
///   and each becomes a `G′ \ G` grey-zone edge independently with
///   probability `grey_edge_probability`.
///
/// Unlike [`grey_zone_network`] (rejection-sampled uniform points, `O(n²)`
/// pair scan, `O(n · |E|)` diameter), this generator needs no connectivity
/// rejection and no all-pairs BFS, so it scales to the 10⁵–10⁶-node duals
/// the sharded simulator targets. The grey-zone constraint (`c = 2`) holds
/// by construction and is spot-checked in debug builds for small `n`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `n == 0` or a probability
/// outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use amac_graph::generators::grid_grey_zone_network;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let net = grid_grey_zone_network(1000, 0.5, &mut rng)?;
/// assert_eq!(net.dual.len(), 1000);
/// net.dual.check_grey_zone(&net.embedding, net.c)?;
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
pub fn grid_grey_zone_network<R: Rng + ?Sized>(
    n: usize,
    grey_edge_probability: f64,
    rng: &mut R,
) -> Result<GreyZoneNetwork, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "grid grey zone network needs at least 1 node".into(),
        });
    }
    if !(0.0..=1.0).contains(&grey_edge_probability) {
        return Err(GraphError::InvalidParameter {
            reason: format!("grey edge probability {grey_edge_probability} outside [0, 1]"),
        });
    }

    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let cols = (n as f64).sqrt().ceil() as usize;
    let cols = cols.max(1);
    let rows = n.div_ceil(cols);

    let positions: Vec<Point> = (0..n)
        .map(|i| {
            let (r, c) = (i / cols, i % cols);
            let jx = (rng.gen::<f64>() * 2.0 - 1.0) * GRID_JITTER;
            let jy = (rng.gen::<f64>() * 2.0 - 1.0) * GRID_JITTER;
            Point::new(c as f64 * GRID_SPACING + jx, r as f64 * GRID_SPACING + jy)
        })
        .collect();
    let embedding = Embedding::new(positions);

    let mut bg = GraphBuilder::new(n);
    let mut bp = GraphBuilder::new(n);
    for i in 0..n {
        let c = i % cols;
        if c + 1 < cols && i + 1 < n {
            bg.try_add_edge_idx(i, i + 1)?;
            bp.try_add_edge_idx(i, i + 1)?;
        }
        if i + cols < n {
            bg.try_add_edge_idx(i, i + cols)?;
            bp.try_add_edge_idx(i, i + cols)?;
        }
        // Diagonal (grey zone) candidates, consumed in deterministic order.
        if c + 1 < cols && i + cols + 1 < n && rng.gen_bool(grey_edge_probability) {
            bp.try_add_edge_idx(i, i + cols + 1)?;
        }
        if c > 0 && i + cols - 1 < n && rng.gen_bool(grey_edge_probability) {
            bp.try_add_edge_idx(i, i + cols - 1)?;
        }
    }

    let diameter = if rows == 1 {
        n - 1
    } else {
        (rows - 1) + (cols - 1)
    };
    let dual = DualGraph::with_diameter(bg.build(), bp.build(), diameter)?;
    debug_assert!(n > 2048 || dual.check_grey_zone(&embedding, 2.0).is_ok());
    debug_assert!(n > 2048 || dual.diameter() == crate::algo::diameter(dual.g()));
    Ok(GreyZoneNetwork {
        dual,
        embedding,
        c: 2.0,
    })
}

/// A deterministic embedded line with the given spacing: node `i` at
/// `(i · spacing, 0)`. With `spacing ≤ 1` the unit disk graph is the path;
/// useful for grey-zone variants of line topologies.
pub fn embedded_line(n: usize, spacing: f64) -> Result<(Embedding, DualGraph), GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "embedded line needs at least 1 node".into(),
        });
    }
    if !(0.0..=1.0).contains(&spacing) || spacing <= 0.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("spacing {spacing} must be in (0, 1] for a connected line"),
        });
    }
    let embedding = Embedding::new(
        (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect(),
    );
    let g = embedding.unit_disk_graph(1.0);
    let dual = DualGraph::reliable(g);
    Ok((embedding, dual))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_network_satisfies_grey_zone() {
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = GreyZoneConfig::new(60, 5.0)
            .with_c(2.5)
            .with_grey_edge_probability(0.7);
        let net = grey_zone_network(&cfg, &mut rng).unwrap();
        net.dual.check_grey_zone(&net.embedding, net.c).unwrap();
        assert_eq!(net.dual.len(), 60);
    }

    #[test]
    fn zero_probability_gives_reliable_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GreyZoneConfig::new(40, 4.0).with_grey_edge_probability(0.0);
        let net = grey_zone_network(&cfg, &mut rng).unwrap();
        assert!(net.dual.is_reliable_only());
    }

    #[test]
    fn full_probability_includes_every_grey_pair() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = GreyZoneConfig::new(30, 3.0)
            .with_c(2.0)
            .with_grey_edge_probability(1.0);
        let net = grey_zone_network(&cfg, &mut rng).unwrap();
        // Every pair at distance in (1, c] must be a G' edge.
        for i in 0..30 {
            for j in (i + 1)..30 {
                let (u, v) = (NodeId::new(i), NodeId::new(j));
                let d = net.embedding.distance(u, v);
                if d > 1.0 && d <= 2.0 {
                    assert!(net.dual.g_prime().has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = GreyZoneConfig::new(25, 4.0);
        let a = grey_zone_network(&cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = grey_zone_network(&cfg, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.embedding, b.embedding);
        assert_eq!(a.dual.g_prime().edge_count(), b.dual.g_prime().edge_count());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(grey_zone_network(&GreyZoneConfig::new(0, 4.0), &mut rng).is_err());
        assert!(grey_zone_network(&GreyZoneConfig::new(10, -1.0), &mut rng).is_err());
        assert!(grey_zone_network(&GreyZoneConfig::new(10, 4.0).with_c(0.5), &mut rng).is_err());
        assert!(grey_zone_network(
            &GreyZoneConfig::new(10, 4.0).with_grey_edge_probability(1.5),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn connected_sampler_returns_connected_g() {
        let mut rng = StdRng::seed_from_u64(5);
        // Dense enough to be connected quickly.
        let cfg = GreyZoneConfig::new(50, 4.0);
        let net = connected_grey_zone_network(&cfg, 100, &mut rng).unwrap();
        assert!(crate::algo::is_connected(net.dual.g()));
    }

    #[test]
    fn grid_network_satisfies_grey_zone_and_is_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = grid_grey_zone_network(200, 0.6, &mut rng).unwrap();
        assert_eq!(net.dual.len(), 200);
        net.dual.check_grey_zone(&net.embedding, net.c).unwrap();
        assert!(crate::algo::is_connected(net.dual.g()));
        assert!(net.dual.unreliable_edge_count() > 0);
        // Cached diameter matches the all-pairs BFS ground truth.
        assert_eq!(net.dual.diameter(), crate::algo::diameter(net.dual.g()));
    }

    #[test]
    fn grid_network_reliable_layer_is_four_neighbor_grid() {
        let mut rng = StdRng::seed_from_u64(8);
        // 12 nodes, cols = 4: a 3x4 grid.
        let net = grid_grey_zone_network(12, 0.0, &mut rng).unwrap();
        assert!(net.dual.is_reliable_only());
        // Interior node 5 = (row 1, col 1) has 4 reliable neighbors.
        assert_eq!(net.dual.reliable_neighbors(NodeId::new(5)).len(), 4);
        // Corner node 0 has 2.
        assert_eq!(net.dual.reliable_neighbors(NodeId::new(0)).len(), 2);
        assert_eq!(net.dual.diameter(), 5); // (3-1) + (4-1)
    }

    #[test]
    fn grid_network_handles_partial_last_row_and_tiny_n() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [1usize, 2, 3, 5, 7, 10, 11] {
            let net = grid_grey_zone_network(n, 0.5, &mut rng).unwrap();
            assert_eq!(net.dual.len(), n);
            assert!(crate::algo::is_connected(net.dual.g()));
            assert_eq!(net.dual.diameter(), crate::algo::diameter(net.dual.g()));
            net.dual.check_grey_zone(&net.embedding, net.c).unwrap();
        }
    }

    #[test]
    fn grid_network_is_deterministic_per_seed() {
        let a = grid_grey_zone_network(80, 0.5, &mut StdRng::seed_from_u64(6)).unwrap();
        let b = grid_grey_zone_network(80, 0.5, &mut StdRng::seed_from_u64(6)).unwrap();
        assert_eq!(a.embedding, b.embedding);
        assert_eq!(
            a.dual.g_prime().edges().collect::<Vec<_>>(),
            b.dual.g_prime().edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn grid_network_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(grid_grey_zone_network(0, 0.5, &mut rng).is_err());
        assert!(grid_grey_zone_network(10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn embedded_line_is_path() {
        let (emb, dual) = embedded_line(6, 0.9).unwrap();
        assert_eq!(emb.len(), 6);
        assert_eq!(dual.g().edge_count(), 5);
        assert_eq!(dual.diameter(), 5);
        assert!(embedded_line(5, 1.5).is_err());
    }
}
