//! Deterministic textbook topologies for the reliable layer `G`.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use crate::node::NodeId;

/// A path (line) graph `0 — 1 — … — (n−1)`, diameter `n − 1`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
///
/// # Examples
///
/// ```
/// use amac_graph::generators::line;
///
/// let g = line(5)?;
/// assert_eq!(g.edge_count(), 4);
/// # Ok::<(), amac_graph::GraphError>(())
/// ```
pub fn line(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "line graph needs at least 1 node".into(),
        });
    }
    Graph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
}

/// A cycle graph on `n ≥ 3` nodes, diameter `⌊n/2⌋`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn ring(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            reason: "ring needs at least 3 nodes".into(),
        });
    }
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// A `rows × cols` grid graph, diameter `rows + cols − 2`.
///
/// Node `(r, c)` has index `r * cols + c`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "grid dimensions must be positive".into(),
        });
    }
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.try_add_edge_idx(v, v + 1)?;
            }
            if r + 1 < rows {
                b.try_add_edge_idx(v, v + cols)?;
            }
        }
    }
    Ok(b.build())
}

/// A star with `n − 1` leaves centred on node `0`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "star needs at least 2 nodes".into(),
        });
    }
    Graph::from_edges(n, (1..n).map(|i| (0, i)))
}

/// The complete graph `K_n`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "complete graph needs at least 1 node".into(),
        });
    }
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.try_add_edge_idx(i, j)?;
        }
    }
    Ok(b.build())
}

/// A complete `arity`-ary tree with `n` nodes; node `v > 0` is connected to
/// `(v − 1) / arity`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0` or `arity == 0`.
pub fn tree(n: usize, arity: usize) -> Result<Graph, GraphError> {
    if n == 0 || arity == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "tree needs positive size and arity".into(),
        });
    }
    Graph::from_edges(n, (1..n).map(move |v| (v, (v - 1) / arity)))
}

/// A barbell: two cliques of size `clique` joined by a path of `bridge`
/// intermediate nodes. Total nodes: `2 * clique + bridge`.
///
/// Useful as a congestion-plus-distance stress topology.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `clique < 1`.
pub fn barbell(clique: usize, bridge: usize) -> Result<Graph, GraphError> {
    if clique < 1 {
        return Err(GraphError::InvalidParameter {
            reason: "barbell cliques need at least 1 node".into(),
        });
    }
    let n = 2 * clique + bridge;
    let mut b = GraphBuilder::new(n);
    // Left clique: 0..clique; right clique: clique+bridge..n.
    for i in 0..clique {
        for j in (i + 1)..clique {
            b.try_add_edge_idx(i, j)?;
        }
    }
    let right = clique + bridge;
    for i in right..n {
        for j in (i + 1)..n {
            b.try_add_edge_idx(i, j)?;
        }
    }
    // Path through the bridge.
    let mut prev = clique - 1; // a node of the left clique
    for v in clique..clique + bridge {
        b.try_add_edge_idx(prev, v)?;
        prev = v;
    }
    b.try_add_edge_idx(prev, right)?;
    Ok(b.build())
}

/// The star-plus-bridge network of the paper's Lemma 3.18: nodes
/// `u_1 … u_{k−1}` all connected to the hub `u_k`, which is additionally
/// connected to the receiver `v`. Total `k + 1` nodes.
///
/// Returns the graph plus the ids of the hub and the receiver.
///
/// The hub is the *choke point* through which all `k` messages must pass,
/// inducing the `Ω(k · F_ack)` lower bound.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k < 1`.
pub fn choke_star(k: usize) -> Result<(Graph, NodeId, NodeId), GraphError> {
    if k < 1 {
        return Err(GraphError::InvalidParameter {
            reason: "choke star needs k >= 1 messages".into(),
        });
    }
    // Indices: 0..k-1 are the leaves u_1..u_{k-1}; k-1 is the hub u_k;
    // k is the receiver v.
    let hub = k - 1;
    let receiver = k;
    let mut b = GraphBuilder::new(k + 1);
    for leaf in 0..hub {
        b.try_add_edge_idx(leaf, hub)?;
    }
    b.try_add_edge_idx(hub, receiver)?;
    Ok((b.build(), NodeId::new(hub), NodeId::new(receiver)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn line_diameter() {
        let g = line(10).unwrap();
        assert_eq!(algo::diameter(&g), 9);
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn single_node_line() {
        let g = line(1).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn ring_diameter() {
        assert_eq!(algo::diameter(&ring(8).unwrap()), 4);
        assert_eq!(algo::diameter(&ring(9).unwrap()), 4);
        assert!(ring(2).is_err());
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.len(), 12);
        assert_eq!(algo::diameter(&g), 5);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // vertical + horizontal
        assert!(grid(0, 3).is_err());
    }

    #[test]
    fn star_shape() {
        let g = star(6).unwrap();
        assert_eq!(g.degree(NodeId::new(0)), 5);
        assert_eq!(algo::diameter(&g), 2);
        assert!(star(1).is_err());
    }

    #[test]
    fn complete_shape() {
        let g = complete(5).unwrap();
        assert_eq!(g.edge_count(), 10);
        assert_eq!(algo::diameter(&g), 1);
    }

    #[test]
    fn tree_is_connected_acyclic() {
        let g = tree(15, 2).unwrap();
        assert_eq!(g.edge_count(), 14);
        assert!(algo::is_connected(&g));
        assert_eq!(algo::diameter(&g), 6); // perfect binary tree of depth 3
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 3).unwrap();
        assert_eq!(g.len(), 11);
        assert!(algo::is_connected(&g));
        // clique edges 2*6, path edges bridge+1 = 4
        assert_eq!(g.edge_count(), 16);
    }

    #[test]
    fn choke_star_shape() {
        let (g, hub, receiver) = choke_star(5).unwrap();
        assert_eq!(g.len(), 6);
        assert_eq!(g.degree(hub), 5); // 4 leaves + receiver
        assert_eq!(g.degree(receiver), 1);
        assert!(g.has_edge(hub, receiver));
        assert!(algo::is_connected(&g));
    }

    #[test]
    fn choke_star_k1_is_single_edge() {
        let (g, hub, receiver) = choke_star(1).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_ne!(hub, receiver);
    }
}
