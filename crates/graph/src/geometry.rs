//! Planar embeddings for the grey zone constraint.
//!
//! The grey zone restriction (paper Section 2) asks for positions
//! `p(v) ∈ ℝ²` such that `(u,v) ∈ E` **iff** `‖p(u) − p(v)‖ ≤ 1` (so `G` is
//! the unit disk graph of the embedding) and every `G′` edge has length at
//! most the universal constant `c ≥ 1`. The annulus of radii `(1, c]` is the
//! *grey zone* in which communication is uncertain.

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use crate::node::NodeId;
use std::fmt;

/// A point in the Euclidean plane.
///
/// # Examples
///
/// ```
/// use amac_graph::geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// A planar embedding: one position per node.
///
/// Used to build unit disk graphs and to witness the grey zone constraint.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Embedding {
    positions: Vec<Point>,
}

impl Embedding {
    /// Creates an embedding from explicit positions.
    pub fn new(positions: Vec<Point>) -> Self {
        Embedding { positions }
    }

    /// Number of embedded nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if no nodes are embedded.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn position(&self, v: NodeId) -> Point {
        self.positions[v.index()]
    }

    /// All positions, indexed by node.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Distance between two embedded nodes.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.position(u).distance(self.position(v))
    }

    /// Builds the **unit disk graph** of this embedding: nodes are adjacent
    /// iff their distance is at most `radius`.
    ///
    /// The grey zone definition uses `radius = 1.0` for `G`; passing `c`
    /// yields the densest admissible `G′`.
    ///
    /// # Examples
    ///
    /// ```
    /// use amac_graph::geometry::{Embedding, Point};
    /// use amac_graph::NodeId;
    ///
    /// let e = Embedding::new(vec![
    ///     Point::new(0.0, 0.0),
    ///     Point::new(0.9, 0.0),
    ///     Point::new(2.5, 0.0),
    /// ]);
    /// let g = e.unit_disk_graph(1.0);
    /// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
    /// assert!(!g.has_edge(NodeId::new(1), NodeId::new(2)));
    /// ```
    pub fn unit_disk_graph(&self, radius: f64) -> Graph {
        let n = self.len();
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if self.positions[i].distance(self.positions[j]) <= radius {
                    b.add_edge(NodeId::new(i), NodeId::new(j));
                }
            }
        }
        b.build()
    }

    /// Verifies the grey zone constraint for a dual graph `(g, g_prime)`
    /// against this embedding with grey zone constant `c`:
    ///
    /// 1. `(u,v) ∈ E(g)` **iff** `‖p(u) − p(v)‖ ≤ 1`;
    /// 2. every edge of `g_prime` has length at most `c`.
    ///
    /// Note clause 2 is one-directional: pairs within distance `c` need
    /// **not** be `G′`-neighbors (paper Section 2 emphasises this).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotGreyZone`] describing the first violated
    /// clause, or [`GraphError::NodeCountMismatch`] if sizes disagree.
    pub fn check_grey_zone(&self, g: &Graph, g_prime: &Graph, c: f64) -> Result<(), GraphError> {
        if g.len() != self.len() || g_prime.len() != self.len() {
            return Err(GraphError::NodeCountMismatch {
                g: g.len(),
                g_prime: g_prime.len(),
            });
        }
        if c < 1.0 {
            return Err(GraphError::NotGreyZone {
                reason: format!("grey zone constant c = {c} must be at least 1"),
            });
        }
        let n = self.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let (u, v) = (NodeId::new(i), NodeId::new(j));
                let d = self.distance(u, v);
                let in_g = g.has_edge(u, v);
                if in_g && d > 1.0 {
                    return Err(GraphError::NotGreyZone {
                        reason: format!("G edge ({u}, {v}) has length {d:.4} > 1"),
                    });
                }
                if !in_g && d <= 1.0 {
                    return Err(GraphError::NotGreyZone {
                        reason: format!(
                            "nodes {u}, {v} at distance {d:.4} ≤ 1 are not G-neighbors"
                        ),
                    });
                }
            }
        }
        for (u, v) in g_prime.edges() {
            let d = self.distance(u, v);
            if d > c {
                return Err(GraphError::NotGreyZone {
                    reason: format!("G' edge ({u}, {v}) has length {d:.4} > c = {c}"),
                });
            }
        }
        Ok(())
    }
}

/// Sphere-packing bound helper (paper Lemma 4.2): an upper bound on the size
/// of a point set with pairwise distances in `(1, d]`. Any such set fits
/// `O(d²)` points; we use the explicit constant `(2d + 1)²` (disks of radius
/// `1/2` centred on the points are disjoint and fit in a disk of radius
/// `d + 1/2`).
pub fn sphere_packing_bound(d: f64) -> usize {
    ((2.0 * d + 1.0).powi(2)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_embedding(n: usize, spacing: f64) -> Embedding {
        Embedding::new(
            (0..n)
                .map(|i| Point::new(i as f64 * spacing, 0.0))
                .collect(),
        )
    }

    #[test]
    fn distance_is_euclidean() {
        let e = Embedding::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]);
        let d = e.distance(NodeId::new(0), NodeId::new(1));
        assert!((d - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn unit_disk_graph_on_a_line() {
        let e = line_embedding(5, 0.8);
        let g = e.unit_disk_graph(1.0);
        // spacing 0.8: adjacent nodes at 0.8 connected, two apart at 1.6 not.
        assert_eq!(g.edge_count(), 4);
        let g2 = e.unit_disk_graph(1.7);
        assert!(g2.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn grey_zone_accepts_udg_pair() {
        let e = line_embedding(6, 0.9);
        let g = e.unit_disk_graph(1.0);
        let gp = e.unit_disk_graph(2.0);
        e.check_grey_zone(&g, &gp, 2.0).unwrap();
    }

    #[test]
    fn grey_zone_allows_sparse_g_prime() {
        // G' need not include all pairs within distance c.
        let e = line_embedding(4, 0.9);
        let g = e.unit_disk_graph(1.0);
        e.check_grey_zone(&g, &g, 3.0).unwrap();
    }

    #[test]
    fn grey_zone_rejects_long_g_prime_edge() {
        let e = line_embedding(5, 0.9);
        let g = e.unit_disk_graph(1.0);
        let mut b = GraphBuilder::new(5);
        for (u, v) in g.edges() {
            b.add_edge(u, v);
        }
        b.add_edge(NodeId::new(0), NodeId::new(4)); // length 3.6 > c
        let gp = b.build();
        let err = e.check_grey_zone(&g, &gp, 2.0).unwrap_err();
        assert!(matches!(err, GraphError::NotGreyZone { .. }));
    }

    #[test]
    fn grey_zone_rejects_non_udg_g() {
        let e = line_embedding(3, 0.9);
        // Missing an edge between nodes at distance 0.9 <= 1.
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let err = e.check_grey_zone(&g, &g, 2.0).unwrap_err();
        assert!(matches!(err, GraphError::NotGreyZone { .. }));
    }

    #[test]
    fn grey_zone_rejects_c_below_one() {
        let e = line_embedding(2, 0.5);
        let g = e.unit_disk_graph(1.0);
        let err = e.check_grey_zone(&g, &g, 0.5).unwrap_err();
        assert!(matches!(err, GraphError::NotGreyZone { .. }));
    }

    #[test]
    fn packing_bound_grows_quadratically() {
        assert!(sphere_packing_bound(1.0) >= 2);
        let b2 = sphere_packing_bound(2.0);
        let b4 = sphere_packing_bound(4.0);
        assert!(b4 > b2);
        assert!(b4 <= 4 * b2 + 16, "roughly quadratic growth");
    }
}
