//! # amac-sim — deterministic discrete-event simulation substrate
//!
//! The execution substrate for the PODC 2014 abstract-MAC-layer
//! reproduction. The paper's semantics are Timed I/O Automata: real-valued
//! time, instantaneous (zero-delay) automaton steps, and non-deterministic
//! scheduling resolved by an adversary. This crate realizes the portions of
//! that semantics every layer above needs:
//!
//! * [`Time`] / [`Duration`] — integer-tick simulated time (all the paper's
//!   proofs are interval arithmetic over `F_prog`/`F_ack` sums, which ticks
//!   preserve exactly);
//! * [`EventQueue`] — a pending-event queue with stable FIFO ordering at
//!   equal timestamps, so zero-delay step chains have a well-defined,
//!   reproducible order, plus O(1) lazy cancellation (needed for the
//!   enhanced MAC layer's `abort`);
//! * [`ShardedEventQueue`] — the same total order over K per-shard queues
//!   with a shared sequence counter and conservative time-windowed
//!   cross-shard outboxes: the substrate of the sharded MAC runtime,
//!   byte-identical to [`EventQueue`] by construction for every K;
//! * [`SimRng`] — a splittable deterministic PRNG so each node and each
//!   scheduler gets its own replayable random stream, mirroring the paper's
//!   "random bits handed out at the start" convention;
//! * [`stats`] — counters, online summaries and histograms for the
//!   experiment harnesses.
//!
//! ## Example
//!
//! ```
//! use amac_sim::{Duration, EventQueue, Time};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(Time::from_ticks(2), Ev::Ping);
//! while let Some((t, ev)) = q.pop() {
//!     if ev == Ev::Ping && t.ticks() < 10 {
//!         q.schedule_after(Duration::from_ticks(2), Ev::Pong);
//!     }
//! }
//! assert_eq!(q.now(), Time::from_ticks(4));
//! ```

pub mod hash;
mod queue;
mod rng;
pub mod stats;
mod time;

pub use hash::{fnv1a64, FastHashMap, FastHashSet, FastHasher, Fnv1a};
pub use queue::{
    EventId, EventQueue, ShardProfile, ShardSample, ShardStats, ShardedEventQueue, WindowTuning,
    WorkerLane, MAX_SHARDS,
};
pub use rng::SimRng;
pub use time::{Duration, Time};
