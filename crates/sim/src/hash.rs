//! A fast, deterministic hasher for small integer keys.
//!
//! The simulation hot paths hash nothing but machine integers (message
//! keys, instance ids, timer handles). The standard library's default
//! SipHash is DoS-resistant but costs tens of cycles per key — measurable
//! at millions of events per second. [`FastHasher`] is an FxHash-style
//! multiply-rotate mix: a few cycles per integer, identical output on
//! every platform and run (no random seed), and entirely adequate for
//! trusted, well-distributed keys.
//!
//! **Determinism note:** the workspace's reproducibility contract forbids
//! *iterating* hashed collections on any path that can reach execution or
//! output. That rule is unchanged — [`FastHashMap`]/[`FastHashSet`] are
//! for membership and keyed access only, exactly like their SipHash
//! predecessors. (The fixed seed additionally makes iteration order
//! machine-stable, but do not rely on it.)

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-rotate hasher for integer-keyed collections.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `HashMap` keyed by small integers, hashed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` of small integers, hashed with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

// FNV-1a 64-bit parameters (public-domain hash; stable by definition).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit digest — the workspace's one canonical
/// content-fingerprint function.
///
/// Chosen for being trivially reimplementable from its published spec (no
/// dependency, no seed): it guards against corruption and drift, not
/// adversaries. The `amac-store` on-disk integrity digest, the
/// `amac-check` schedule fingerprints, and the golden canonical-trace
/// pins are all this function; keeping a single implementation here is
/// what makes those digests comparable across crates.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh digest (the FNV-1a offset basis).
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Resumes a digest from a previously captured [`value`](Fnv1a::value).
    pub fn from_value(value: u64) -> Fnv1a {
        Fnv1a(value)
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// FNV-1a 64-bit digest of a complete byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut d = Fnv1a::new();
    d.update(bytes);
    d.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_behave_like_std() {
        let mut m: FastHashMap<u64, &str> = FastHashMap::default();
        m.insert(1, "one");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&u64::MAX), Some(&"max"));
        assert_eq!(m.remove(&1), Some("one"));
        assert_eq!(m.get(&1), None);

        let mut s: FastHashSet<u64> = FastHashSet::default();
        for i in 0..1000 {
            assert!(s.insert(i * 0x9E37_79B9));
        }
        for i in 0..1000 {
            assert!(s.contains(&(i * 0x9E37_79B9)));
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv1a_streaming_equals_oneshot_and_resumes() {
        let mut d = Fnv1a::new();
        d.update(b"foo");
        let resumed = Fnv1a::from_value(d.value());
        let mut d2 = resumed;
        d2.update(b"bar");
        assert_eq!(d2.value(), fnv1a64(b"foobar"));
        assert_eq!(Fnv1a::default().value(), fnv1a64(b""));
    }

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let h = |n: u64| {
            let mut hasher = FastHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(42), h(42), "no per-process seed");
        // Consecutive keys land in distinct buckets of a small table.
        let buckets: std::collections::BTreeSet<u64> = (0..64).map(|n| h(n) % 64).collect();
        assert!(
            buckets.len() > 32,
            "only {} distinct buckets",
            buckets.len()
        );
    }
}
