//! Discrete simulated time.
//!
//! The paper's model uses real-valued time with the two constants `F_prog`
//! and `F_ack`. Every inequality in the proofs is interval arithmetic over
//! sums of these constants, so integer *ticks* preserve the semantics
//! exactly while keeping the simulator deterministic. One tick is an
//! arbitrary unit; experiments typically set `F_prog` to a few ticks and
//! `F_ack` to a few dozen or hundred.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An absolute instant in simulated time, in ticks since the start of the
/// execution.
///
/// # Examples
///
/// ```
/// use amac_sim::{Duration, Time};
///
/// let t = Time::ZERO + Duration::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// assert_eq!(t - Time::ZERO, Duration::from_ticks(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The start of every execution.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as "never").
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Time {
        Time(ticks)
    }

    /// Raw tick count since the start of the execution.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating subtraction yielding a duration (`0` if `earlier > self`).
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: Duration) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// One tick.
    pub const TICK: Duration = Duration(1);

    /// Creates a span from a raw tick count.
    pub const fn from_ticks(ticks: u64) -> Duration {
        Duration(ticks)
    }

    /// Raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Integer multiplication by a scalar, panicking on overflow in debug.
    pub fn times(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics (in debug builds) if `rhs` is later than `self`.
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics (in debug builds) on underflow.
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = Time::from_ticks(10);
        let d = Duration::from_ticks(4);
        assert_eq!((t + d).ticks(), 14);
        assert_eq!((t + d) - t, d);
        assert_eq!(d + d, Duration::from_ticks(8));
        assert_eq!(d * 3, Duration::from_ticks(12));
        assert_eq!(d.times(3), Duration::from_ticks(12));
    }

    #[test]
    fn ordering() {
        assert!(Time::ZERO < Time::from_ticks(1));
        assert!(Duration::ZERO < Duration::TICK);
        assert!(Time::MAX > Time::from_ticks(u64::MAX - 1));
    }

    #[test]
    fn saturating_ops() {
        let early = Time::from_ticks(3);
        let late = Time::from_ticks(9);
        assert_eq!(late.saturating_since(early), Duration::from_ticks(6));
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(
            Duration::from_ticks(2).saturating_sub(Duration::from_ticks(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn add_assign_variants() {
        let mut t = Time::ZERO;
        t += Duration::from_ticks(7);
        assert_eq!(t.ticks(), 7);
        let mut d = Duration::ZERO;
        d += Duration::TICK;
        assert_eq!(d.ticks(), 1);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(Time::MAX.checked_add(Duration::TICK).is_none());
        assert_eq!(
            Time::ZERO.checked_add(Duration::TICK),
            Some(Time::from_ticks(1))
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Time::from_ticks(5)), "5");
        assert_eq!(format!("{:?}", Time::from_ticks(5)), "t5");
        assert_eq!(format!("{:?}", Duration::from_ticks(5)), "5t");
    }
}
