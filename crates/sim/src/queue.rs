//! A deterministic pending-event queue.
//!
//! Events at equal times are delivered in scheduling order (FIFO by a
//! monotone sequence number), which makes every simulation reproducible and
//! lets us model the paper's zero-delay automaton steps: a chain of events
//! scheduled "now" executes in a well-defined order without time passing.

use crate::time::{Duration, Time};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

/// Handle to a scheduled event, usable with [`EventQueue::cancel`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events with stable FIFO tie-breaking
/// and lazy cancellation.
///
/// # Examples
///
/// ```
/// use amac_sim::{Duration, EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ticks(5), "later");
/// q.schedule(Time::from_ticks(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.ticks(), e), (1, "sooner"));
/// assert_eq!(q.now(), Time::from_ticks(1));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers scheduled but neither delivered nor cancelled.
    /// Membership (never iteration order) is observed, so a `HashSet` is
    /// safe for determinism.
    pending: HashSet<u64>,
    next_seq: u64,
    now: Time,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// The current simulated time: the timestamp of the last popped event
    /// (or [`Time::ZERO`] initially). Monotonically non-decreasing.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (`at < self.now()`); scheduling *at*
    /// the current instant is allowed and models a zero-delay step.
    pub fn schedule(&mut self, at: Time, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule at {at:?}, current time is {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Schedules `event` after a relative delay from now.
    pub fn schedule_after(&mut self, delay: Duration, event: E) -> EventId {
        self.schedule(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event had
    /// not yet been delivered or cancelled; cancelling an already-delivered
    /// (or unknown, or already-cancelled) id is a no-op returning `false`.
    /// `O(1)`; the cancelled entry's heap slot is reclaimed when it reaches
    /// the front.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.pending.remove(&id.0)
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Ties are broken by scheduling order.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.pending.remove(&entry.seq) {
                continue; // cancelled: skip and reclaim
            }
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the next pending event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(entry) = self.heap.peek() {
            if !self.pending.contains(&entry.seq) {
                self.heap.pop();
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Returns `true` if no deliverable events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of pending entries, **including** not-yet-reclaimed
    /// cancellations (an upper bound on deliverable events).
    pub fn pending_upper_bound(&self) -> usize {
        self.heap.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("delivered", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(3), 'c');
        q.schedule(Time::from_ticks(1), 'a');
        q.schedule(Time::from_ticks(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Time::from_ticks(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_ticks(7));
        assert_eq!(q.delivered(), 1);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(10), "first");
        q.pop();
        q.schedule_after(Duration::from_ticks(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_ticks(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule at")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(10), ());
        q.pop();
        q.schedule(Time::from_ticks(9), ());
    }

    #[test]
    fn zero_delay_scheduling_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(4), 1);
        q.pop();
        q.schedule(q.now(), 2); // same instant
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.ticks(), e), (4, 2));
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        q.schedule(Time::from_ticks(2), 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 'b');
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn cancel_of_delivered_event_is_false_and_leaves_no_tombstone() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 'a');
        // Cancelling an already-delivered event must report false ...
        assert!(!q.cancel(a), "event was already delivered");
        // ... and must not poison later scheduling/delivery.
        q.schedule(Time::from_ticks(2), 'b');
        assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
        assert!(q.is_empty());
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    fn cancel_after_flush_via_peek_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        q.cancel(a);
        // peek_time reclaims the cancelled entry from the heap; cancelling
        // again afterwards must still be a no-op returning false.
        assert_eq!(q.peek_time(), None);
        assert!(!q.cancel(a));
        assert_eq!(q.pending_upper_bound(), 0, "heap slot reclaimed");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        q.schedule(Time::from_ticks(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time::from_ticks(2)));
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_after_draining() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(1), ());
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
