//! A deterministic pending-event queue.
//!
//! Events at equal times are delivered in scheduling order (FIFO by a
//! monotone sequence number), which makes every simulation reproducible and
//! lets us model the paper's zero-delay automaton steps: a chain of events
//! scheduled "now" executes in a well-defined order without time passing.
//!
//! ## Cancellation: slot-generation ids
//!
//! Cancellation is O(1) and allocation-free: every scheduled event occupies
//! a *slot* (an index into a dense `Vec`) stamped with a *generation*
//! counter, and its [`EventId`] is the `(slot, generation)` pair. Cancelling
//! or delivering an event bumps the slot's generation, which atomically
//! invalidates the id and recycles the slot for the next `schedule` — no
//! hash-set tombstones, no per-event hashing on the hot path. Heap entries
//! whose generation no longer matches their slot are skipped (and
//! reclaimed) when they surface; when cancelled entries ever outnumber live
//! ones the heap is compacted in place, so queue memory stays proportional
//! to the number of *live* events even across millions of
//! schedule/cancel cycles.

use crate::time::{Duration, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Handle to a scheduled event, usable with [`EventQueue::cancel`].
///
/// Internally a `(slot, generation)` pair: the slot is recycled after the
/// event is delivered or cancelled, and the generation stamp keeps stale
/// handles from ever matching a recycled slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    slot: u32,
    generation: u32,
}

struct Entry<E> {
    at: Time,
    seq: u64,
    slot: u32,
    generation: u32,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Minimum heap size before compaction is considered (avoids churn on tiny
/// queues where the stale entries are cheaper than a rebuild).
const COMPACT_MIN: usize = 64;

/// A time-ordered queue of simulation events with stable FIFO tie-breaking
/// and O(1) slot-generation cancellation (see the crate docs).
///
/// # Examples
///
/// ```
/// use amac_sim::{Duration, EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ticks(5), "later");
/// q.schedule(Time::from_ticks(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.ticks(), e), (1, "sooner"));
/// assert_eq!(q.now(), Time::from_ticks(1));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Current generation per slot. A heap entry is live iff its stamped
    /// generation equals its slot's current generation.
    generations: Vec<u32>,
    /// Recycled slot indices available for the next `schedule`.
    free: Vec<u32>,
    /// Heap entries that are cancelled but not yet reclaimed.
    stale: usize,
    next_seq: u64,
    now: Time,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            generations: Vec::new(),
            free: Vec::new(),
            stale: 0,
            next_seq: 0,
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// The current simulated time: the timestamp of the last popped event
    /// (or [`Time::ZERO`] initially). Monotonically non-decreasing.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (`at < self.now()`); scheduling *at*
    /// the current instant is allowed and models a zero-delay step.
    pub fn schedule(&mut self, at: Time, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule at {at:?}, current time is {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.generations.len())
                    .expect("more than u32::MAX concurrently scheduled events");
                self.generations.push(0);
                slot
            }
        };
        let generation = self.generations[slot as usize];
        self.heap.push(Entry {
            at,
            seq,
            slot,
            generation,
            event,
        });
        EventId { slot, generation }
    }

    /// Schedules `event` after a relative delay from now.
    pub fn schedule_after(&mut self, delay: Duration, event: E) -> EventId {
        self.schedule(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event had
    /// not yet been delivered or cancelled; cancelling an already-delivered
    /// (or unknown, or already-cancelled) id is a no-op returning `false`.
    /// `O(1)` amortized; the cancelled entry's heap slot is reclaimed when
    /// it reaches the front, or by compaction when stale entries ever
    /// outnumber live ones.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self
            .generations
            .get(id.slot as usize)
            .is_some_and(|&g| g == id.generation)
        {
            self.retire(id.slot);
            self.stale += 1;
            self.maybe_compact();
            true
        } else {
            false
        }
    }

    /// Bumps a slot's generation (invalidating every outstanding id and
    /// heap entry stamped with it) and recycles it.
    fn retire(&mut self, slot: u32) {
        self.generations[slot as usize] = self.generations[slot as usize].wrapping_add(1);
        self.free.push(slot);
    }

    /// Rebuilds the heap without its stale entries once they outnumber the
    /// live ones. Amortized O(1) per cancel: a rebuild costing O(heap) only
    /// runs after at least heap/2 cancellations.
    fn maybe_compact(&mut self) {
        if self.heap.len() < COMPACT_MIN || self.stale * 2 < self.heap.len() {
            return;
        }
        let generations = &self.generations;
        let entries: Vec<Entry<E>> = std::mem::take(&mut self.heap)
            .into_iter()
            .filter(|e| generations[e.slot as usize] == e.generation)
            .collect();
        self.heap = BinaryHeap::from(entries);
        self.stale = 0;
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Ties are broken by scheduling order.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.generations[entry.slot as usize] != entry.generation {
                self.stale -= 1;
                continue; // cancelled: skip and reclaim
            }
            self.retire(entry.slot);
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the next pending event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(entry) = self.heap.peek() {
            if self.generations[entry.slot as usize] != entry.generation {
                self.heap.pop();
                self.stale -= 1;
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Returns `true` if no deliverable events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of pending entries, **including** not-yet-reclaimed
    /// cancellations (an upper bound on deliverable events).
    pub fn pending_upper_bound(&self) -> usize {
        self.heap.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("delivered", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(3), 'c');
        q.schedule(Time::from_ticks(1), 'a');
        q.schedule(Time::from_ticks(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Time::from_ticks(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_ticks(7));
        assert_eq!(q.delivered(), 1);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(10), "first");
        q.pop();
        q.schedule_after(Duration::from_ticks(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_ticks(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule at")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(10), ());
        q.pop();
        q.schedule(Time::from_ticks(9), ());
    }

    #[test]
    fn zero_delay_scheduling_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(4), 1);
        q.pop();
        q.schedule(q.now(), 2); // same instant
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.ticks(), e), (4, 2));
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        q.schedule(Time::from_ticks(2), 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 'b');
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId {
            slot: 99,
            generation: 0
        }));
    }

    #[test]
    fn cancel_of_delivered_event_is_false_and_leaves_no_tombstone() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 'a');
        // Cancelling an already-delivered event must report false ...
        assert!(!q.cancel(a), "event was already delivered");
        // ... and must not poison later scheduling/delivery.
        q.schedule(Time::from_ticks(2), 'b');
        assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
        assert!(q.is_empty());
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    fn cancel_after_flush_via_peek_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        q.cancel(a);
        // peek_time reclaims the cancelled entry from the heap; cancelling
        // again afterwards must still be a no-op returning false.
        assert_eq!(q.peek_time(), None);
        assert!(!q.cancel(a));
        assert_eq!(q.pending_upper_bound(), 0, "heap slot reclaimed");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        q.schedule(Time::from_ticks(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time::from_ticks(2)));
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_after_draining() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(1), ());
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn recycled_slot_does_not_resurrect_old_ids() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(5), 'a');
        assert!(q.cancel(a));
        // The slot is recycled with a bumped generation: the new event is
        // distinct and the old id stays dead.
        let b = q.schedule(Time::from_ticks(6), 'b');
        assert!(!q.cancel(a), "stale id must not cancel the recycled slot");
        assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
        assert!(!q.cancel(b));
    }

    /// The regression the slot-generation rewrite exists for: a workload
    /// that schedules and cancels far-future events millions of times must
    /// not accumulate memory — neither id-tracking state nor heap entries
    /// for long-cancelled events.
    #[test]
    fn memory_stays_bounded_across_a_million_schedule_cancel_cycles() {
        let mut q = EventQueue::new();
        // A long-lived anchor so the queue is never empty.
        q.schedule(Time::from_ticks(1 << 40), 0u64);
        for i in 0..1_000_000u64 {
            // Far-future event, cancelled before ever becoming due — under
            // the old lazy-tombstone scheme each left a heap entry behind
            // until its (distant) timestamp surfaced.
            let id = q.schedule(Time::from_ticks((1 << 30) + i), i);
            assert!(q.cancel(id));
            assert!(
                q.pending_upper_bound() <= COMPACT_MIN.max(4),
                "heap grew to {} entries after {} cycles",
                q.pending_upper_bound(),
                i + 1
            );
        }
        // Slot bookkeeping is recycled, not grown per cycle.
        assert!(q.generations.len() <= COMPACT_MIN.max(4));
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_preserves_order_and_liveness() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        let mut drop_ids = Vec::new();
        for i in 0..200u64 {
            let id = q.schedule(Time::from_ticks(1000 - i), i);
            if i % 2 == 0 {
                keep.push(i);
            } else {
                drop_ids.push(id);
            }
        }
        for id in drop_ids {
            assert!(q.cancel(id));
        }
        assert!(
            q.pending_upper_bound() < 200,
            "compaction must have reclaimed cancelled entries"
        );
        let mut order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let mut expected = keep;
        expected.sort_by_key(|&i| 1000 - i);
        assert_eq!(order.len(), expected.len());
        order.sort_by_key(|&i| 1000 - i);
        order.reverse();
        expected.reverse();
        assert_eq!(order, expected);
    }
}
