//! A deterministic pending-event queue.
//!
//! Events at equal times are delivered in scheduling order (FIFO by a
//! monotone sequence number), which makes every simulation reproducible and
//! lets us model the paper's zero-delay automaton steps: a chain of events
//! scheduled "now" executes in a well-defined order without time passing.
//!
//! ## Cancellation: slot-generation ids
//!
//! Cancellation is O(1) and allocation-free: every scheduled event occupies
//! a *slot* (an index into a dense `Vec`) stamped with a *generation*
//! counter, and its [`EventId`] is the `(slot, generation)` pair. Cancelling
//! or delivering an event bumps the slot's generation, which atomically
//! invalidates the id and recycles the slot for the next `schedule` — no
//! hash-set tombstones, no per-event hashing on the hot path. Heap entries
//! whose generation no longer matches their slot are skipped (and
//! reclaimed) when they surface; when cancelled entries ever outnumber live
//! ones the heap is compacted in place, so queue memory stays proportional
//! to the number of *live* events even across millions of
//! schedule/cancel cycles.

use crate::time::{Duration, Time};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Handle to a scheduled event, usable with [`EventQueue::cancel`].
///
/// Internally a `(slot, generation)` pair: the slot is recycled after the
/// event is delivered or cancelled, and the generation stamp keeps stale
/// handles from ever matching a recycled slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    slot: u32,
    generation: u32,
}

struct Entry<E> {
    at: Time,
    seq: u64,
    slot: u32,
    generation: u32,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Minimum heap size before compaction is considered (avoids churn on tiny
/// queues where the stale entries are cheaper than a rebuild).
const COMPACT_MIN: usize = 64;

/// A time-ordered queue of simulation events with stable FIFO tie-breaking
/// and O(1) slot-generation cancellation (see the crate docs).
///
/// # Examples
///
/// ```
/// use amac_sim::{Duration, EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ticks(5), "later");
/// q.schedule(Time::from_ticks(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.ticks(), e), (1, "sooner"));
/// assert_eq!(q.now(), Time::from_ticks(1));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Current generation per slot. A heap entry is live iff its stamped
    /// generation equals its slot's current generation.
    generations: Vec<u32>,
    /// Recycled slot indices available for the next `schedule`.
    free: Vec<u32>,
    /// Heap entries that are cancelled but not yet reclaimed.
    stale: usize,
    next_seq: u64,
    now: Time,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            generations: Vec::new(),
            free: Vec::new(),
            stale: 0,
            next_seq: 0,
            now: Time::ZERO,
            popped: 0,
        }
    }

    /// The current simulated time: the timestamp of the last popped event
    /// (or [`Time::ZERO`] initially). Monotonically non-decreasing.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (`at < self.now()`); scheduling *at*
    /// the current instant is allowed and models a zero-delay step.
    pub fn schedule(&mut self, at: Time, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule at {at:?}, current time is {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = self.alloc_slot();
        self.push_entry(at, seq, id, event);
        id
    }

    /// Reserves a slot (stamped with its current generation) without
    /// pushing a heap entry — the caller owns delivering the entry later
    /// via [`push_entry`](EventQueue::push_entry). Used by the sharded
    /// queue's outboxes, where the id must exist (for cancellation) before
    /// the event is merged into the heap at the next barrier.
    fn alloc_slot(&mut self) -> EventId {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.generations.len())
                    .expect("more than u32::MAX concurrently scheduled events");
                self.generations.push(0);
                slot
            }
        };
        EventId {
            slot,
            generation: self.generations[slot as usize],
        }
    }

    /// Pushes a fully specified heap entry for a slot reserved with
    /// [`alloc_slot`](EventQueue::alloc_slot). The `(at, seq)` pair is the
    /// caller's: the sharded queue assigns sequence numbers from a single
    /// shared counter so the merged order equals the sequential one.
    fn push_entry(&mut self, at: Time, seq: u64, id: EventId, event: E) {
        self.heap.push(Entry {
            at,
            seq,
            slot: id.slot,
            generation: id.generation,
            event,
        });
    }

    /// Schedules `event` after a relative delay from now.
    pub fn schedule_after(&mut self, delay: Duration, event: E) -> EventId {
        self.schedule(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event had
    /// not yet been delivered or cancelled; cancelling an already-delivered
    /// (or unknown, or already-cancelled) id is a no-op returning `false`.
    /// `O(1)` amortized; the cancelled entry's heap slot is reclaimed when
    /// it reaches the front, or by compaction when stale entries ever
    /// outnumber live ones.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self
            .generations
            .get(id.slot as usize)
            .is_some_and(|&g| g == id.generation)
        {
            self.retire(id.slot);
            self.stale += 1;
            self.maybe_compact();
            true
        } else {
            false
        }
    }

    /// Bumps a slot's generation (invalidating every outstanding id and
    /// heap entry stamped with it) and recycles it.
    fn retire(&mut self, slot: u32) {
        self.generations[slot as usize] = self.generations[slot as usize].wrapping_add(1);
        self.free.push(slot);
    }

    /// Rebuilds the heap without its stale entries once they outnumber the
    /// live ones. Amortized O(1) per cancel: a rebuild costing O(heap) only
    /// runs after at least heap/2 cancellations.
    fn maybe_compact(&mut self) {
        if self.heap.len() < COMPACT_MIN || self.stale * 2 < self.heap.len() {
            return;
        }
        let generations = &self.generations;
        let entries: Vec<Entry<E>> = std::mem::take(&mut self.heap)
            .into_iter()
            .filter(|e| generations[e.slot as usize] == e.generation)
            .collect();
        self.heap = BinaryHeap::from(entries);
        self.stale = 0;
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Ties are broken by scheduling order.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.generations[entry.slot as usize] != entry.generation {
                self.stale = self.stale.saturating_sub(1);
                continue; // cancelled: skip and reclaim
            }
            self.retire(entry.slot);
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the next pending event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.peek_key().map(|(at, _)| at)
    }

    /// `(time, sequence)` key of the next pending event without removing
    /// it — the total order the sharded queue's K-way merge selects on.
    fn peek_key(&mut self) -> Option<(Time, u64)> {
        while let Some(entry) = self.heap.peek() {
            if self.generations[entry.slot as usize] != entry.generation {
                self.heap.pop();
                self.stale = self.stale.saturating_sub(1);
                continue;
            }
            return Some((entry.at, entry.seq));
        }
        None
    }

    /// Drains every entry with `at < end` from the heap into `out`, in
    /// `(time, seq)` order, **without** retiring slot generations — the
    /// threaded sharded drain extracts a window's events on a worker
    /// thread and defers retirement to the coordinator's canonical
    /// consume, so post-extraction cancels still observe a live id.
    /// Stale (cancelled) entries are dropped and reclaimed here.
    fn extract_window(&mut self, end: Time, out: &mut VecDeque<Entry<E>>) {
        while let Some(head) = self.heap.peek() {
            if head.at >= end {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            if self.generations[entry.slot as usize] != entry.generation {
                self.stale = self.stale.saturating_sub(1);
                continue;
            }
            out.push_back(entry);
        }
    }

    /// Merges a barrier inbox into the heap: live entries are pushed with
    /// their original `(at, seq)` key, cancelled-while-buffered entries are
    /// dropped and the stale counter rebalanced (their cancel counted a
    /// heap entry that was never pushed).
    fn integrate_inbox(&mut self, inbox: &mut Vec<Inboxed<E>>) {
        // Canonical per-destination batch order (determinism rule 5): the
        // heap's pop order is independent of push order, but the batch
        // order stays the documented `(tick, seq)` one.
        inbox.sort_unstable_by_key(|i| (i.at, i.seq));
        for i in inbox.drain(..) {
            if self.generations[i.id.slot as usize] == i.id.generation {
                self.push_entry(i.at, i.seq, i.id, i.event);
            } else {
                self.stale = self.stale.saturating_sub(1);
            }
        }
    }

    /// Returns `true` if no deliverable events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of pending entries, **including** not-yet-reclaimed
    /// cancellations (an upper bound on deliverable events).
    pub fn pending_upper_bound(&self) -> usize {
        self.heap.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("delivered", &self.popped)
            .finish()
    }
}

/// Shard index bits in a sharded [`EventId`]'s slot word: the top
/// [`SHARD_BITS`] identify the shard, the low bits the slot within it.
const SHARD_BITS: u32 = 8;
const SHARD_SHIFT: u32 = 32 - SHARD_BITS;
const LOCAL_SLOT_MASK: u32 = (1 << SHARD_SHIFT) - 1;

/// Maximum shard count a [`ShardedEventQueue`] supports (the shard index
/// must fit in the top `SHARD_BITS` bits of an [`EventId`] slot).
pub const MAX_SHARDS: usize = 1 << SHARD_BITS;

/// One cross-shard event parked until the next window barrier: it already
/// owns its global sequence number and a reserved slot in the destination
/// shard (so cancellation works while parked), but its heap entry is only
/// merged at the barrier.
struct Outboxed<E> {
    dest: u32,
    at: Time,
    seq: u64,
    id: EventId,
    event: E,
}

/// One event buffered for a *future* window under the threaded drain: it
/// owns its global sequence number and a reserved slot on the destination
/// shard (so cancellation works while buffered), and a worker thread
/// integrates it into the destination heap at the next barrier.
struct Inboxed<E> {
    at: Time,
    seq: u64,
    /// Local (unpacked) id on the destination shard.
    id: EventId,
    event: E,
}

/// Window-width policy for the threaded sharded drain.
///
/// Under the threaded drain the delivered event stream is provably
/// independent of the window width — the coordinator always consumes the
/// global `(time, seq)` minimum — so the width is a pure performance knob:
/// wider windows amortize barrier (thread-spawn and rendezvous) overhead,
/// narrower windows bound the extracted-run working set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WindowTuning {
    /// Keep the conservative `min(F_prog, F_ack)` width on every window —
    /// barrier placement (and hence [`ShardStats`]) matches the fused
    /// single-core coordinator exactly.
    #[default]
    Fixed,
    /// Retune the width at every barrier from the measured
    /// [`lookahead_misses`](ShardStats::lookahead_misses) and
    /// [`barrier_slack_ticks`](ShardStats::barrier_slack_ticks): widen
    /// (up to 8x the base) while cross-shard misses stay rare, narrow back
    /// toward the base when per-shard slack balloons. Deterministic — the
    /// inputs are simulated-time quantities, never wall clock.
    Adaptive,
}

/// Widest adaptive window, as a multiple of the base conservative width.
const MAX_WINDOW_FACTOR: u64 = 8;

/// Wall-clock self-profile of one barrier worker under the threaded drain
/// (nondeterministic side channel, like the rest of [`ShardProfile`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerLane {
    /// Nanoseconds doing useful work inside barrier scopes (inbox
    /// integration, stale purging, window extraction).
    pub busy_nanos: u64,
    /// Nanoseconds blocked on the in-scope rendezvous waiting for the
    /// slowest worker of the barrier.
    pub barrier_wait_nanos: u64,
    /// Nanoseconds between barrier scopes — the coordinator's serial
    /// canonical consume phase, during which no worker exists.
    pub idle_nanos: u64,
}

/// Per-worker signature of one barrier scope: `(busy, rendezvous-wait)`
/// nanoseconds, zero when profiling is off.
type WorkerScopeNanos = (u64, u64);

/// Everything a barrier crossing needs, bundled so the scoped-thread
/// driver can be stored as a plain fn pointer (see
/// [`ThreadedState::drive`]).
struct BarrierJob<'a, E> {
    shards: &'a mut [EventQueue<E>],
    inboxes: &'a mut [Vec<Inboxed<E>>],
    runs: &'a mut [VecDeque<Entry<E>>],
    threads: usize,
    width: Duration,
    profiling: bool,
}

/// State of the thread-per-shard drain mode, present only after
/// [`ShardedEventQueue::enable_threaded_drain`].
struct ThreadedState<E> {
    /// Worker threads per barrier (clamped to the shard count).
    threads: usize,
    /// Per-shard sorted runs of the current window, extracted from the
    /// heaps by the barrier workers and consumed front-to-back by the
    /// coordinator's global `(time, seq)` argmin.
    runs: Vec<VecDeque<Entry<E>>>,
    /// Events scheduled *inside* the current window (same- or cross-shard
    /// zero-lookahead spawns): the shard heaps are already extracted, so
    /// these merge through a coordinator-local overlay heap. Entries pack
    /// the destination shard into the slot word like public ids.
    overlay: BinaryHeap<Entry<E>>,
    /// Per shard: overlay entries destined for it (pending accounting).
    overlay_per_shard: Vec<usize>,
    /// Per destination shard: events buffered for future windows,
    /// integrated into the heaps by the barrier workers.
    inboxes: Vec<Vec<Inboxed<E>>>,
    /// Total entries across all inboxes (cheap emptiness/compaction test).
    inbox_len: usize,
    /// Successful cancels since the inboxes/overlay were last compacted —
    /// the same stale-versus-live policy as the heaps, so schedule/cancel
    /// churn of buffered events cannot grow memory between barriers.
    buffered_cancels: usize,
    /// Current window width (equals `base_width` under
    /// [`WindowTuning::Fixed`]).
    width: Duration,
    /// The conservative `min(F_prog, F_ack)` base width.
    base_width: Duration,
    tuning: WindowTuning,
    /// Snapshots at the previous barrier, for the adaptive retune.
    popped_at_barrier: u64,
    misses_at_barrier: u64,
    /// The scoped-thread barrier driver, monomorphized under `E: Send` at
    /// [`enable_threaded_drain`](ShardedEventQueue::enable_threaded_drain)
    /// and stored as a plain fn pointer so the unbounded `pop`/`peek`
    /// paths can invoke it. Returns the next window start (the earliest
    /// live event anywhere), or `None` when nothing deliverable remains.
    drive: DriveFn<E>,
    /// Wall-clock instant the last barrier scope ended (worker idle
    /// accounting; profiling only).
    last_scope_end: Option<std::time::Instant>,
}

/// Signature of the monomorphized scoped-thread barrier driver stored in
/// [`ThreadedState::drive`]: runs one window barrier and returns the next
/// window start plus the per-worker wall-clock lanes of the scope.
type DriveFn<E> = for<'a> fn(BarrierJob<'a, E>) -> (Option<Time>, Vec<WorkerScopeNanos>);

/// Source of the next threaded-consume candidate.
#[derive(Clone, Copy)]
enum RunSrc {
    Run(usize),
    Overlay,
}

/// Synchronization statistics of a [`ShardedEventQueue`], all in simulated
/// ticks and event counts — fully deterministic, byte-identical across
/// machines (no wall clock).
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Conservative lookahead window width, in ticks.
    pub window_ticks: u64,
    /// Window barriers crossed (outbox flushes).
    pub barriers: u64,
    /// Cross-shard events scheduled at or beyond the next barrier —
    /// batched in an outbox and merged at the barrier in canonical
    /// `(tick, shard, sequence)` order.
    pub outboxed: u64,
    /// Cross-shard events scheduled *inside* the current window — the
    /// conservative lookahead `min(F_prog, F_ack)` cannot defer these, so
    /// the fused coordinator routes them immediately. In a thread-per-shard
    /// deployment each one is a synchronization point; the counter
    /// quantifies how conservative the windowing is for a workload.
    pub lookahead_misses: u64,
    /// Per shard: peak pending events (heap entries plus parked outbox
    /// entries destined for the shard).
    pub peak_pending: Vec<usize>,
    /// Per shard: accumulated idle ticks at window barriers — for each
    /// barrier, how long before the window's end the shard ran out of its
    /// own events (the simulated-time analogue of barrier-wait).
    pub barrier_slack_ticks: Vec<u64>,
}

impl ShardStats {
    /// Largest per-shard peak pending count.
    pub fn max_peak_pending(&self) -> usize {
        self.peak_pending.iter().copied().max().unwrap_or(0)
    }

    /// Total barrier-slack ticks summed over all shards.
    pub fn total_slack_ticks(&self) -> u64 {
        self.barrier_slack_ticks.iter().sum()
    }

    /// Folds another run's statistics into this one — used by the bench
    /// engine to aggregate per-trial stats across a sweep. Counters sum,
    /// peaks take the elementwise maximum, and the configuration fields
    /// (`shards`, `window_ticks`) take the maximum so a default-initialised
    /// accumulator is the identity. Commutative and associative, so the
    /// fold result is independent of trial scheduling.
    pub fn merge(&mut self, other: &ShardStats) {
        self.shards = self.shards.max(other.shards);
        self.window_ticks = self.window_ticks.max(other.window_ticks);
        self.barriers += other.barriers;
        self.outboxed += other.outboxed;
        self.lookahead_misses += other.lookahead_misses;
        if self.peak_pending.len() < other.peak_pending.len() {
            self.peak_pending.resize(other.peak_pending.len(), 0);
        }
        for (mine, theirs) in self.peak_pending.iter_mut().zip(&other.peak_pending) {
            *mine = (*mine).max(*theirs);
        }
        if self.barrier_slack_ticks.len() < other.barrier_slack_ticks.len() {
            self.barrier_slack_ticks
                .resize(other.barrier_slack_ticks.len(), 0);
        }
        for (mine, theirs) in self
            .barrier_slack_ticks
            .iter_mut()
            .zip(&other.barrier_slack_ticks)
        {
            *mine += *theirs;
        }
    }
}

/// Wall-clock self-profiling of a [`ShardedEventQueue`], captured only
/// when [`enable_profiling`](ShardedEventQueue::enable_profiling) was
/// called.
///
/// **Nondeterministic side channel.** Everything here is measured with
/// [`std::time::Instant`] and varies run to run and machine to machine —
/// it must never feed back into execution or into any deterministic
/// output surface (the metrics layer emits it under a clearly-labelled
/// `"nondeterministic"` member; see `docs/OBSERVABILITY.md`).
#[derive(Clone, Debug, Default)]
pub struct ShardProfile {
    /// Wall-clock nanoseconds spent *between* pops inside windows — the
    /// caller's event-processing time, the phase a thread-per-shard
    /// deployment would parallelise.
    pub drain_nanos: u64,
    /// Wall-clock nanoseconds spent in barrier slack accounting.
    pub barrier_nanos: u64,
    /// Wall-clock nanoseconds spent sorting and flushing the cross-shard
    /// outbox at barriers (the K-way merge phase).
    pub merge_nanos: u64,
    /// Per shard: drain nanoseconds attributed to events popped from the
    /// shard. `busy_nanos[s] / drain_nanos` is the shard's busy fraction.
    pub busy_nanos: Vec<u64>,
    /// Per barrier worker under the threaded drain: busy / rendezvous-wait
    /// / between-scope idle nanoseconds. Empty on the fused (single-core)
    /// coordinator.
    pub workers: Vec<WorkerLane>,
    /// Decimated [`ShardStats`] time series sampled at window barriers
    /// (at most [`ShardProfile::MAX_SAMPLES`] entries; the sampling
    /// stride doubles when full).
    pub samples: Vec<ShardSample>,
}

impl ShardProfile {
    /// Upper bound on the length of [`samples`](ShardProfile::samples).
    pub const MAX_SAMPLES: usize = 64;

    /// Total profiled wall-clock nanoseconds across all three phases.
    pub fn total_nanos(&self) -> u64 {
        self.drain_nanos + self.barrier_nanos + self.merge_nanos
    }
}

/// One sample of the sharded queue's state, taken at a window barrier.
/// The sampled values are simulated-time quantities (deterministic); the
/// *existence* of the sample rides in the profiling side channel.
#[derive(Clone, Copy, Debug)]
pub struct ShardSample {
    /// Simulated tick of the barrier (the closing window's end).
    pub at_ticks: u64,
    /// Barriers crossed so far, this one included.
    pub barriers: u64,
    /// Pending events across all shards just after the outbox flush.
    pub pending: usize,
    /// Cross-shard events outboxed so far.
    pub outboxed: u64,
}

/// Internal wall-clock profiling state, boxed so the default
/// (profiling off) costs one pointer and one branch per pop.
struct ProfileState {
    profile: ShardProfile,
    /// Instant the last pop returned, plus the popped event's shard: the
    /// gap to the next pop is the caller's processing time for that
    /// shard's event.
    last: Option<(std::time::Instant, usize)>,
    /// Current sampling stride in barriers (doubles when full).
    stride: u64,
}

/// A sharded pending-event queue that reproduces the sequential
/// [`EventQueue`]'s total order **exactly**, for every schedule/cancel
/// pattern and every shard count.
///
/// Structure: one inner [`EventQueue`] per shard, but a **single shared
/// sequence counter** — every `schedule` call draws the same sequence
/// number it would have drawn from one global queue, so the `(time, seq)`
/// key of every event is identical to the sequential execution's.
/// [`pop`](ShardedEventQueue::pop) is a K-way merge: the argmin over the
/// shard heads by `(time, seq)`. Byte-identical event order versus the
/// sequential queue is therefore a property *by construction*, not a
/// property of the workload — the differential suite
/// (`tests/shard_equivalence.rs`) checks it end to end anyway.
///
/// ## Conservative time windows
///
/// Shards advance through windows of a fixed lookahead `L` (the MAC
/// layer passes `min(F_prog, F_ack)`): within the window `[w, w+L)` every
/// popped event has time `< w+L`, and a cross-shard event scheduled at or
/// beyond `w+L` is **not** inserted into the destination heap immediately
/// — it is parked in an outbox and merged at the barrier, batched with
/// everything else that crossed shards this window, in canonical
/// `(tick, destination shard, sequence)` order. Parking is order-safe
/// precisely because of the window invariant: nothing with time `≥ w+L`
/// can be popped before the barrier, so deferring the heap insertion is
/// unobservable. Cross-shard events *inside* the window (zero-delay
/// chains, deliveries faster than the lookahead) are routed immediately
/// and counted as [`lookahead_misses`](ShardStats::lookahead_misses).
///
/// # Examples
///
/// ```
/// use amac_sim::{Duration, ShardedEventQueue, Time};
///
/// let mut q = ShardedEventQueue::new(2, Duration::from_ticks(4));
/// q.schedule(0, Time::from_ticks(2), "left");
/// q.schedule(1, Time::from_ticks(1), "right");
/// assert_eq!(q.pop(), Some((Time::from_ticks(1), "right")));
/// assert_eq!(q.pop(), Some((Time::from_ticks(2), "left")));
/// ```
pub struct ShardedEventQueue<E> {
    shards: Vec<EventQueue<E>>,
    outbox: Vec<Outboxed<E>>,
    /// Outbox entries per destination shard (for peak-pending tracking).
    outboxed_per_shard: Vec<usize>,
    window: Duration,
    window_start: Time,
    window_end: Time,
    now: Time,
    next_seq: u64,
    popped: u64,
    /// Shard of the most recently popped event: the *source* shard of any
    /// schedule call made while processing it.
    current_shard: Option<usize>,
    /// Per shard: time of its last popped event (for barrier slack).
    last_pop: Vec<Time>,
    /// Successful cancels since the outbox was last compacted — an upper
    /// bound on the cancelled entries parked there, driving the same
    /// stale-versus-live compaction policy as the heaps.
    outbox_cancels: usize,
    stats: ShardStats,
    /// Wall-clock self-profiling, opt-in (see [`ShardProfile`]).
    profiling: Option<Box<ProfileState>>,
    /// Thread-per-shard drain mode, opt-in (see
    /// [`enable_threaded_drain`](ShardedEventQueue::enable_threaded_drain)).
    threaded: Option<Box<ThreadedState<E>>>,
}

impl<E> ShardedEventQueue<E> {
    /// Creates an empty `k`-shard queue with conservative lookahead
    /// `window`, clock at [`Time::ZERO`].
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ MAX_SHARDS` and `window ≥ 1` tick.
    pub fn new(k: usize, window: Duration) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&k),
            "shard count {k} outside 1..={MAX_SHARDS}"
        );
        assert!(
            window.ticks() >= 1,
            "conservative window must be at least one tick"
        );
        ShardedEventQueue {
            shards: (0..k).map(|_| EventQueue::new()).collect(),
            outbox: Vec::new(),
            outboxed_per_shard: vec![0; k],
            window,
            window_start: Time::ZERO,
            window_end: Time::ZERO + window,
            now: Time::ZERO,
            next_seq: 0,
            popped: 0,
            current_shard: None,
            last_pop: vec![Time::ZERO; k],
            outbox_cancels: 0,
            profiling: None,
            threaded: None,
            stats: ShardStats {
                shards: k,
                window_ticks: window.ticks(),
                peak_pending: vec![0; k],
                barrier_slack_ticks: vec![0; k],
                ..ShardStats::default()
            },
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// A snapshot of the synchronization statistics.
    pub fn stats(&self) -> ShardStats {
        self.stats.clone()
    }

    /// Turns on wall-clock self-profiling (phase breakdown, per-shard
    /// busy time, a decimated [`ShardStats`] timeline). Off by default:
    /// the deterministic execution pays nothing for the instrumentation.
    pub fn enable_profiling(&mut self) {
        if self.profiling.is_none() {
            self.profiling = Some(Box::new(ProfileState {
                profile: ShardProfile {
                    busy_nanos: vec![0; self.shards.len()],
                    ..ShardProfile::default()
                },
                last: None,
                stride: 1,
            }));
        }
    }

    /// A snapshot of the wall-clock self-profile, or `None` when
    /// [`enable_profiling`](ShardedEventQueue::enable_profiling) was
    /// never called.
    pub fn profile(&self) -> Option<ShardProfile> {
        self.profiling.as_ref().map(|p| p.profile.clone())
    }

    /// Schedules `event` on `shard` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at < now()`, `shard` is out of range, or the shard
    /// exceeds its 2²⁴-slot capacity of concurrently scheduled events.
    pub fn schedule(&mut self, shard: usize, at: Time, event: E) -> EventId {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        assert!(
            at >= self.now,
            "cannot schedule at {at:?}, current time is {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let local = self.shards[shard].alloc_slot();
        assert!(
            local.slot <= LOCAL_SLOT_MASK,
            "shard {shard} exceeded its concurrent-event capacity"
        );
        let cross = self.current_shard.is_some_and(|src| src != shard);
        let pending = if let Some(ts) = &mut self.threaded {
            // Threaded drain: the heaps were extracted up to `window_end`,
            // so in-window events merge through the coordinator's overlay
            // and future events are buffered for worker-side integration
            // at the next barrier. The counters keep the fused semantics:
            // `outboxed`/`lookahead_misses` count *cross-shard* traffic.
            if at >= self.window_end {
                ts.inboxes[shard].push(Inboxed {
                    at,
                    seq,
                    id: local,
                    event,
                });
                ts.inbox_len += 1;
                if cross {
                    self.stats.outboxed += 1;
                }
            } else {
                if cross {
                    self.stats.lookahead_misses += 1;
                }
                ts.overlay.push(Entry {
                    at,
                    seq,
                    slot: ((shard as u32) << SHARD_SHIFT) | local.slot,
                    generation: local.generation,
                    event,
                });
                ts.overlay_per_shard[shard] += 1;
            }
            self.shards[shard].pending_upper_bound()
                + ts.inboxes[shard].len()
                + ts.runs[shard].len()
                + ts.overlay_per_shard[shard]
        } else {
            if cross && at >= self.window_end {
                // Order-safe to park: nothing at or beyond the barrier can
                // be popped before the outbox is flushed there.
                self.outbox.push(Outboxed {
                    dest: shard as u32,
                    at,
                    seq,
                    id: local,
                    event,
                });
                self.outboxed_per_shard[shard] += 1;
                self.stats.outboxed += 1;
            } else {
                if cross {
                    self.stats.lookahead_misses += 1;
                }
                self.shards[shard].push_entry(at, seq, local, event);
            }
            self.shards[shard].pending_upper_bound() + self.outboxed_per_shard[shard]
        };
        if pending > self.stats.peak_pending[shard] {
            self.stats.peak_pending[shard] = pending;
        }
        EventId {
            slot: ((shard as u32) << SHARD_SHIFT) | local.slot,
            generation: local.generation,
        }
    }

    /// Schedules `event` on `shard` after a relative delay from now.
    pub fn schedule_after(&mut self, shard: usize, delay: Duration, event: E) -> EventId {
        self.schedule(shard, self.now + delay, event)
    }

    /// Cancels a previously scheduled event (parked or heap-resident).
    /// Same semantics as [`EventQueue::cancel`].
    pub fn cancel(&mut self, id: EventId) -> bool {
        let shard = (id.slot >> SHARD_SHIFT) as usize;
        if shard >= self.shards.len() {
            return false;
        }
        let cancelled = self.shards[shard].cancel(EventId {
            slot: id.slot & LOCAL_SLOT_MASK,
            generation: id.generation,
        });
        if cancelled {
            // The cancel may have hit a parked outbox entry; compact the
            // outbox once cancels could account for half of it (amortized
            // O(1) per cancel, same policy as the heap compaction), so
            // schedule/cancel churn of parked events cannot grow memory.
            self.outbox_cancels += 1;
            if self.outbox.len() >= COMPACT_MIN && self.outbox_cancels * 2 >= self.outbox.len() {
                self.compact_outbox();
            }
            if let Some(ts) = &mut self.threaded {
                // Same policy for the threaded drain's between-barrier
                // buffers (inboxes and overlay).
                ts.buffered_cancels += 1;
                let buffered = ts.inbox_len + ts.overlay.len();
                if buffered >= COMPACT_MIN && ts.buffered_cancels * 2 >= buffered {
                    self.compact_buffers();
                }
            }
        }
        cancelled
    }

    /// Drops threaded-drain buffer entries (inbox and overlay) whose slot
    /// generation no longer matches, rebalancing the per-shard stale
    /// counters exactly like [`compact_outbox`](Self::compact_outbox).
    fn compact_buffers(&mut self) {
        let ts = self.threaded.as_mut().expect("threaded drain enabled");
        let ThreadedState {
            inboxes,
            overlay,
            overlay_per_shard,
            inbox_len,
            buffered_cancels,
            ..
        } = &mut **ts;
        let shards = &mut self.shards;
        for (shard, inbox) in inboxes.iter_mut().enumerate() {
            let q = &mut shards[shard];
            inbox.retain(|i| {
                let live = q.generations[i.id.slot as usize] == i.id.generation;
                if !live {
                    *inbox_len -= 1;
                    q.stale = q.stale.saturating_sub(1);
                }
                live
            });
        }
        overlay.retain(|e| {
            let shard = (e.slot >> SHARD_SHIFT) as usize;
            let slot = (e.slot & LOCAL_SLOT_MASK) as usize;
            let live = shards[shard].generations[slot] == e.generation;
            if !live {
                overlay_per_shard[shard] -= 1;
                shards[shard].stale = shards[shard].stale.saturating_sub(1);
            }
            live
        });
        *buffered_cancels = 0;
    }

    /// Drops outbox entries whose slot generation no longer matches (they
    /// were cancelled while parked), rebalancing the per-shard stale
    /// counters exactly like the barrier flush does.
    fn compact_outbox(&mut self) {
        let mut kept = Vec::with_capacity(self.outbox.len());
        for o in std::mem::take(&mut self.outbox) {
            let dest = o.dest as usize;
            if self.shards[dest].generations[o.id.slot as usize] == o.id.generation {
                kept.push(o);
            } else {
                self.outboxed_per_shard[dest] -= 1;
                self.shards[dest].stale = self.shards[dest].stale.saturating_sub(1);
            }
        }
        self.outbox = kept;
        self.outbox_cancels = 0;
    }

    /// Removes and returns the earliest pending event across all shards,
    /// advancing the clock. The total order is exactly the sequential
    /// queue's `(time, sequence)` order.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if let Some(p) = &mut self.profiling {
            // The gap since the previous pop returned is the caller's
            // processing time for that pop's event — the drain phase,
            // attributed to the previously popped shard.
            if let Some((then, prev_shard)) = p.last.take() {
                let gap = u64::try_from(then.elapsed().as_nanos()).unwrap_or(u64::MAX);
                p.profile.drain_nanos += gap;
                p.profile.busy_nanos[prev_shard] += gap;
            }
        }
        let popped = if self.threaded.is_some() {
            self.pop_threaded()
        } else {
            self.pop_fused()
        };
        if popped.is_some() {
            if let Some(p) = &mut self.profiling {
                let shard = self.current_shard.expect("a pop just succeeded");
                p.last = Some((std::time::Instant::now(), shard));
            }
        }
        popped
    }

    /// The fused (single-core) coordinator's pop: K-way argmin over the
    /// shard heads via [`settle`](Self::settle).
    fn pop_fused(&mut self) -> Option<(Time, E)> {
        let shard = self.settle()?;
        let (at, event) = self.shards[shard]
            .pop()
            .expect("settle returned a shard with a live head");
        self.now = at;
        self.popped += 1;
        self.current_shard = Some(shard);
        self.last_pop[shard] = at;
        Some((at, event))
    }

    /// Timestamp of the next pending event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        if self.threaded.is_some() {
            self.peek_threaded()
        } else {
            self.settle()
                .and_then(|s| self.shards[s].peek_key())
                .map(|(at, _)| at)
        }
    }

    /// Returns `true` if no deliverable events remain anywhere.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Pending entries across all shards, outboxes, and (under the
    /// threaded drain) the between-barrier buffers — extracted runs, the
    /// overlay heap, and the future-window inboxes — **including**
    /// not-yet-reclaimed cancellations (an upper bound on deliverable
    /// events).
    pub fn pending_upper_bound(&self) -> usize {
        let buffered = self.threaded.as_ref().map_or(0, |ts| {
            ts.inbox_len + ts.overlay.len() + ts.runs.iter().map(VecDeque::len).sum::<usize>()
        });
        self.shards
            .iter()
            .map(EventQueue::pending_upper_bound)
            .sum::<usize>()
            + self.outbox.len()
            + buffered
    }

    /// Selects the shard holding the globally earliest live event,
    /// advancing windows (flushing outboxes) as needed. Returns `None`
    /// only when every heap and the outbox are exhausted.
    fn settle(&mut self) -> Option<usize> {
        loop {
            let mut best: Option<(Time, u64, usize)> = None;
            for s in 0..self.shards.len() {
                if let Some((at, seq)) = self.shards[s].peek_key() {
                    if best.map_or(true, |(bt, bs, _)| (at, seq) < (bt, bs)) {
                        best = Some((at, seq, s));
                    }
                }
            }
            match best {
                Some((at, _, s)) if at < self.window_end => return Some(s),
                None if self.outbox.is_empty() => return None,
                _ => self.advance_window(best.map(|(at, _, _)| at)),
            }
        }
    }

    /// Crosses the window barrier: accounts per-shard slack, flushes the
    /// outbox in canonical `(tick, destination shard, sequence)` order,
    /// and opens the next window at the earliest remaining event.
    fn advance_window(&mut self, next_heap_time: Option<Time>) {
        let barrier_start = self.profiling.is_some().then(std::time::Instant::now);
        let barrier_tick = self.window_end.ticks();
        self.stats.barriers += 1;
        for s in 0..self.shards.len() {
            let busy_until = self.last_pop[s].max(self.window_start);
            self.stats.barrier_slack_ticks[s] +=
                self.window_end.saturating_since(busy_until).ticks();
        }
        // Canonical cross-shard merge order (determinism rule 5). The sort
        // key is total — sequence numbers are unique — so the batch order
        // is independent of outbox insertion order. Heap insertion order
        // does not affect pop order (the heap sorts by `(time, seq)`), but
        // the canonical batch order is part of the documented contract and
        // keeps any future batched side effects deterministic.
        let merge_start = self.profiling.is_some().then(std::time::Instant::now);
        self.outbox.sort_by_key(|o| (o.at, o.dest, o.seq));
        let mut earliest_flushed: Option<Time> = None;
        for o in std::mem::take(&mut self.outbox) {
            let dest = o.dest as usize;
            self.outboxed_per_shard[dest] -= 1;
            if self.shards[dest].generations[o.id.slot as usize] == o.id.generation {
                if earliest_flushed.map_or(true, |t| o.at < t) {
                    earliest_flushed = Some(o.at);
                }
                self.shards[dest].push_entry(o.at, o.seq, o.id, o.event);
            } else {
                // Cancelled while parked: the cancel bumped the slot
                // generation and counted a stale heap entry that was never
                // pushed — rebalance the destination's stale counter.
                self.shards[dest].stale = self.shards[dest].stale.saturating_sub(1);
            }
        }
        // The next window starts at the earliest remaining event; when
        // nothing remains the window still moves forward so the loop in
        // `settle` terminates.
        let next = match (next_heap_time, earliest_flushed) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        };
        self.window_start = next.unwrap_or(self.window_end);
        self.window_end = self.window_start + self.window;
        if let (Some(bs), Some(ms)) = (barrier_start, merge_start) {
            let end = std::time::Instant::now();
            let p = self
                .profiling
                .as_mut()
                .expect("timers are armed only while profiling");
            p.profile.barrier_nanos +=
                u64::try_from(ms.duration_since(bs).as_nanos()).unwrap_or(u64::MAX);
            p.profile.merge_nanos +=
                u64::try_from(end.duration_since(ms).as_nanos()).unwrap_or(u64::MAX);
            self.record_barrier_sample(barrier_tick);
        }
    }

    /// Appends a decimated [`ShardSample`] to the profiling timeline: keep
    /// at most `MAX_SAMPLES` entries by doubling the barrier stride and
    /// dropping every other kept sample whenever the buffer fills. No-op
    /// when profiling is off.
    fn record_barrier_sample(&mut self, barrier_tick: u64) {
        if self.profiling.is_none() {
            return;
        }
        let pending = self.pending_upper_bound();
        let barriers = self.stats.barriers;
        let outboxed = self.stats.outboxed;
        let p = self.profiling.as_mut().expect("checked above");
        if barriers % p.stride == 0 {
            if p.profile.samples.len() == ShardProfile::MAX_SAMPLES {
                let mut keep = 0;
                p.profile.samples.retain(|_| {
                    keep += 1;
                    keep % 2 == 1
                });
                p.stride *= 2;
            }
            if barriers % p.stride == 0 {
                p.profile.samples.push(ShardSample {
                    at_ticks: barrier_tick,
                    barriers,
                    pending,
                    outboxed,
                });
            }
        }
    }

    /// Globally earliest unconsumed `(time, seq)` candidate of the current
    /// threaded window: the argmin over the K run heads and the overlay.
    fn threaded_best(&self) -> Option<(Time, u64, RunSrc)> {
        let ts = self.threaded.as_ref().expect("threaded drain enabled");
        let mut best: Option<(Time, u64, RunSrc)> = None;
        for (s, run) in ts.runs.iter().enumerate() {
            if let Some(e) = run.front() {
                if best.map_or(true, |(bt, bs, _)| (e.at, e.seq) < (bt, bs)) {
                    best = Some((e.at, e.seq, RunSrc::Run(s)));
                }
            }
        }
        if let Some(e) = ts.overlay.peek() {
            if best.map_or(true, |(bt, bs, _)| (e.at, e.seq) < (bt, bs)) {
                best = Some((e.at, e.seq, RunSrc::Overlay));
            }
        }
        best
    }

    /// Removes the candidate `src` points at, returning its destination
    /// shard and the entry with a *local* (unpacked) slot.
    fn take_candidate(&mut self, src: RunSrc) -> (usize, Entry<E>) {
        let ts = self.threaded.as_mut().expect("threaded drain enabled");
        match src {
            RunSrc::Run(s) => (s, ts.runs[s].pop_front().expect("candidate head exists")),
            RunSrc::Overlay => {
                let mut e = ts.overlay.pop().expect("candidate head exists");
                let shard = (e.slot >> SHARD_SHIFT) as usize;
                ts.overlay_per_shard[shard] -= 1;
                e.slot &= LOCAL_SLOT_MASK;
                (shard, e)
            }
        }
    }

    /// The threaded drain's pop: serial canonical consume of the merged
    /// runs and overlay. Slot generations are retired *here*, not at
    /// extraction, so cancels issued after a worker extracted the window
    /// still observe (and invalidate) the pending event.
    fn pop_threaded(&mut self) -> Option<(Time, E)> {
        loop {
            let Some((_, _, src)) = self.threaded_best() else {
                if !self.threaded_advance() {
                    return None;
                }
                continue;
            };
            let (shard, entry) = self.take_candidate(src);
            let q = &mut self.shards[shard];
            if q.generations[entry.slot as usize] != entry.generation {
                // Cancelled after extraction/buffering: rebalance the
                // stale count its cancel charged to the heap.
                q.stale = q.stale.saturating_sub(1);
                continue;
            }
            q.retire(entry.slot);
            self.now = entry.at;
            self.popped += 1;
            self.current_shard = Some(shard);
            self.last_pop[shard] = entry.at;
            return Some((entry.at, entry.event));
        }
    }

    /// The threaded drain's peek: like [`pop_threaded`](Self::pop_threaded)
    /// but leaves the (live) head in place, reclaiming stale heads on the
    /// way so the reported time always belongs to a deliverable event.
    fn peek_threaded(&mut self) -> Option<Time> {
        loop {
            let Some((at, _, src)) = self.threaded_best() else {
                if !self.threaded_advance() {
                    return None;
                }
                continue;
            };
            let live = {
                let ts = self.threaded.as_ref().expect("threaded drain enabled");
                let (shard, slot, generation) = match src {
                    RunSrc::Run(s) => {
                        let e = ts.runs[s].front().expect("candidate head exists");
                        (s, e.slot, e.generation)
                    }
                    RunSrc::Overlay => {
                        let e = ts.overlay.peek().expect("candidate head exists");
                        (
                            (e.slot >> SHARD_SHIFT) as usize,
                            e.slot & LOCAL_SLOT_MASK,
                            e.generation,
                        )
                    }
                };
                self.shards[shard].generations[slot as usize] == generation
            };
            if live {
                return Some(at);
            }
            let (shard, _stale_entry) = self.take_candidate(src);
            let q = &mut self.shards[shard];
            q.stale = q.stale.saturating_sub(1);
        }
    }

    /// Retunes the window width at a barrier under
    /// [`WindowTuning::Adaptive`]: widen while cross-shard lookahead
    /// misses stay rare, narrow back toward the conservative base when
    /// the shards idled through most of the closing window. Deterministic
    /// — every input is a simulated-time quantity.
    fn retune_window(&mut self) {
        let k = self.shards.len() as u64;
        let ts = self.threaded.as_mut().expect("threaded drain enabled");
        if ts.tuning != WindowTuning::Adaptive {
            return;
        }
        let events = self.popped - ts.popped_at_barrier;
        let misses = self.stats.lookahead_misses - ts.misses_at_barrier;
        let mut slack = 0u64;
        for &last in &self.last_pop {
            let busy_until = last.max(self.window_start);
            slack += self.window_end.saturating_since(busy_until).ticks();
        }
        let base = ts.base_width.ticks();
        let width = ts.width.ticks();
        let next = if slack * 2 > width * k && width > base {
            // Shards idled through most of the window: narrow back.
            (width / 2).max(base)
        } else if events > 0 && misses * 16 <= events {
            // Cross-shard misses are rare: widen to amortize barriers.
            (width * 2).min(base * MAX_WINDOW_FACTOR)
        } else {
            width
        };
        ts.width = Duration::from_ticks(next);
    }

    /// Crosses a threaded-drain window barrier: per-shard slack and
    /// barrier accounting (mirroring the fused
    /// [`advance_window`](Self::advance_window) exactly under
    /// [`WindowTuning::Fixed`]), then the scoped-thread integrate/extract
    /// phases via the stored driver. Returns `false` when nothing
    /// deliverable remains anywhere.
    fn threaded_advance(&mut self) -> bool {
        let has_heap = self.shards.iter().any(|q| !q.heap.is_empty());
        let had_inbox = self
            .threaded
            .as_ref()
            .expect("threaded drain enabled")
            .inbox_len
            > 0;
        if !has_heap && !had_inbox {
            return false;
        }
        self.retune_window();
        let profiling = self.profiling.is_some();
        let scope_begin = profiling.then(std::time::Instant::now);
        let (next_start, worker_nanos) = {
            let ts = self.threaded.as_mut().expect("threaded drain enabled");
            let ThreadedState {
                inboxes,
                runs,
                threads,
                width,
                drive,
                ..
            } = &mut **ts;
            drive(BarrierJob {
                shards: &mut self.shards,
                inboxes,
                runs,
                threads: *threads,
                width: *width,
                profiling,
            })
        };
        let scope_end = profiling.then(std::time::Instant::now);
        let barrier_tick = self.window_end.ticks();
        // A barrier is *counted* (stats and slack) exactly when the fused
        // coordinator would have crossed one: a live event at or beyond
        // the window end (`next_start`), or buffered events to flush. The
        // remaining case — only cancelled heap entries left — is the
        // fused settle's silent lazy reclamation, not a barrier.
        let counted = next_start.is_some() || had_inbox;
        if counted {
            self.stats.barriers += 1;
            for s in 0..self.shards.len() {
                let busy_until = self.last_pop[s].max(self.window_start);
                self.stats.barrier_slack_ticks[s] +=
                    self.window_end.saturating_since(busy_until).ticks();
            }
        }
        {
            let ts = self.threaded.as_mut().expect("threaded drain enabled");
            // The workers drained every inbox (live entries into the
            // heaps, cancelled ones dropped).
            ts.inbox_len = 0;
            ts.buffered_cancels = 0;
            ts.popped_at_barrier = self.popped;
            ts.misses_at_barrier = self.stats.lookahead_misses;
            match next_start {
                Some(start) => {
                    self.window_start = start;
                    self.window_end = start.checked_add(ts.width).unwrap_or(Time::MAX);
                }
                None if counted => {
                    // Everything flushed was cancelled: the window still
                    // moves forward, exactly like the fused coordinator's.
                    self.window_start = self.window_end;
                    self.window_end = self.window_start.checked_add(ts.width).unwrap_or(Time::MAX);
                }
                None => {}
            }
        }
        if let (Some(begin), Some(end)) = (scope_begin, scope_end) {
            let scope_nanos = u64::try_from(end.duration_since(begin).as_nanos()).unwrap_or(0);
            let idle_gap = self
                .threaded
                .as_ref()
                .expect("threaded drain enabled")
                .last_scope_end
                .map(|t| u64::try_from(begin.duration_since(t).as_nanos()).unwrap_or(0))
                .unwrap_or(0);
            let p = self.profiling.as_mut().expect("profiling is on");
            p.profile.merge_nanos += scope_nanos;
            if p.profile.workers.len() < worker_nanos.len() {
                p.profile
                    .workers
                    .resize(worker_nanos.len(), WorkerLane::default());
            }
            for (lane, (busy, wait)) in p.profile.workers.iter_mut().zip(&worker_nanos) {
                lane.busy_nanos += busy;
                lane.barrier_wait_nanos += wait;
                lane.idle_nanos += idle_gap;
            }
            self.threaded
                .as_mut()
                .expect("threaded drain enabled")
                .last_scope_end = Some(end);
            if counted {
                self.record_barrier_sample(barrier_tick);
            }
        }
        next_start.is_some()
    }

    /// Worker-thread count of the threaded drain (0 on the fused drain).
    pub fn drain_threads(&self) -> usize {
        self.threaded.as_ref().map_or(0, |ts| ts.threads)
    }
}

impl<E: Send> ShardedEventQueue<E> {
    /// Switches the queue to the **thread-per-shard drain**: at every
    /// window barrier, up to `threads` scoped workers (clamped to the
    /// shard count) integrate the buffered future-window events into
    /// their shards' heaps, agree on the next window via an in-scope
    /// rendezvous, and extract the window's events into per-shard sorted
    /// runs — in parallel. The coordinator then consumes the runs (plus
    /// an overlay of in-window spawns) serially in global `(time, seq)`
    /// order, so the delivered event stream is **byte-identical** to the
    /// fused drain and to the sequential [`EventQueue`] by construction,
    /// for every `(shards, threads, tuning)` combination.
    ///
    /// `threads == 1` runs the identical two-phase barrier inline without
    /// spawning, which makes the thread count unobservable in every
    /// deterministic output.
    ///
    /// # Panics
    ///
    /// Panics if events were already delivered — the mode switch is
    /// allowed only before the first `pop` (already-scheduled events are
    /// migrated).
    pub fn enable_threaded_drain(&mut self, threads: usize, tuning: WindowTuning) {
        assert!(
            self.popped == 0 && self.now == Time::ZERO && self.outbox.is_empty(),
            "threaded drain must be enabled before the first pop"
        );
        if self.threaded.is_some() {
            return;
        }
        let k = self.shards.len();
        let mut ts = Box::new(ThreadedState {
            threads: threads.clamp(1, k),
            runs: (0..k).map(|_| VecDeque::new()).collect(),
            overlay: BinaryHeap::new(),
            overlay_per_shard: vec![0; k],
            inboxes: (0..k).map(|_| Vec::new()).collect(),
            inbox_len: 0,
            buffered_cancels: 0,
            width: self.window,
            base_width: self.window,
            tuning,
            popped_at_barrier: 0,
            misses_at_barrier: 0,
            drive: drive_barrier::<E>,
            last_scope_end: None,
        });
        // Migrate events scheduled before the mode switch: in-window heap
        // entries move to the overlay (the first window consumes them
        // without an extra barrier, exactly like the fused coordinator),
        // later ones stay heap-resident for the first barrier to extract.
        for shard in 0..k {
            let mut run = VecDeque::new();
            self.shards[shard].extract_window(self.window_end, &mut run);
            for mut e in run {
                e.slot |= (shard as u32) << SHARD_SHIFT;
                ts.overlay_per_shard[shard] += 1;
                ts.overlay.push(e);
            }
        }
        self.threaded = Some(ts);
    }
}

/// The scoped-thread window barrier (see
/// [`ShardedEventQueue::enable_threaded_drain`]). Phase one: each worker
/// integrates its shards' inboxes and publishes its earliest live head
/// into a shared atomic minimum. In-scope rendezvous. Phase two: every
/// worker derives the same next window `[start, start + width)` from the
/// atomic and extracts it from its shards' heaps into sorted runs.
///
/// Monomorphized under `E: Send` (scoped workers take `&mut` shard state
/// across threads) and stored as a plain fn pointer in
/// [`ThreadedState::drive`], so the unbounded `pop`/`peek` paths can
/// invoke it without infecting the whole queue API with the bound.
fn drive_barrier<E: Send>(job: BarrierJob<'_, E>) -> (Option<Time>, Vec<WorkerScopeNanos>) {
    struct Unit<'a, E> {
        q: &'a mut EventQueue<E>,
        inbox: &'a mut Vec<Inboxed<E>>,
        run: &'a mut VecDeque<Entry<E>>,
    }
    fn integrate_and_head<E>(u: &mut Unit<'_, E>, min_head: &AtomicU64) {
        u.q.integrate_inbox(u.inbox);
        if let Some((at, _)) = u.q.peek_key() {
            min_head.fetch_min(at.ticks(), AtomicOrdering::Relaxed);
        }
    }
    fn window_end(start: u64, width: Duration) -> Time {
        Time::from_ticks(start)
            .checked_add(width)
            .unwrap_or(Time::MAX)
    }
    let k = job.shards.len();
    let workers = job.threads.clamp(1, k);
    let width = job.width;
    let profiling = job.profiling;
    let min_head = AtomicU64::new(u64::MAX);
    let mut units: Vec<Unit<'_, E>> = job
        .shards
        .iter_mut()
        .zip(job.inboxes.iter_mut())
        .zip(job.runs.iter_mut())
        .map(|((q, inbox), run)| Unit { q, inbox, run })
        .collect();
    let lanes = if workers == 1 {
        // Inline fast path: the same two phases, no spawn or rendezvous —
        // `--shard-threads 1` exercises the full threaded architecture
        // with zero threading overhead (and zero observable difference).
        let t0 = profiling.then(std::time::Instant::now);
        for u in &mut units {
            integrate_and_head(u, &min_head);
        }
        let start = min_head.load(AtomicOrdering::Relaxed);
        if start != u64::MAX {
            let end = window_end(start, width);
            for u in &mut units {
                u.q.extract_window(end, u.run);
            }
        }
        let busy = t0
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        vec![(busy, 0u64)]
    } else {
        let chunk = k.div_ceil(workers);
        let spawned = k.div_ceil(chunk);
        let rendezvous = std::sync::Barrier::new(spawned);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(spawned);
            for chunk_units in units.chunks_mut(chunk) {
                let min_head = &min_head;
                let rendezvous = &rendezvous;
                handles.push(scope.spawn(move || {
                    let t0 = profiling.then(std::time::Instant::now);
                    for u in chunk_units.iter_mut() {
                        integrate_and_head(u, min_head);
                    }
                    let busy_integrate = t0.map(|t| t.elapsed()).unwrap_or_default();
                    let w0 = profiling.then(std::time::Instant::now);
                    // The rendezvous both publishes every head into the
                    // atomic minimum (happens-before) and blocks phase
                    // two until the minimum is complete.
                    rendezvous.wait();
                    let wait = w0.map(|t| t.elapsed()).unwrap_or_default();
                    let t1 = profiling.then(std::time::Instant::now);
                    let start = min_head.load(AtomicOrdering::Relaxed);
                    if start != u64::MAX {
                        let end = window_end(start, width);
                        for u in chunk_units.iter_mut() {
                            u.q.extract_window(end, u.run);
                        }
                    }
                    let busy = busy_integrate + t1.map(|t| t.elapsed()).unwrap_or_default();
                    (
                        u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX),
                        u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX),
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("barrier worker panicked"))
                .collect()
        })
    };
    let start = min_head.load(AtomicOrdering::Relaxed);
    ((start != u64::MAX).then(|| Time::from_ticks(start)), lanes)
}

impl<E> fmt::Debug for ShardedEventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEventQueue")
            .field("shards", &self.shards.len())
            .field("now", &self.now)
            .field("pending", &self.pending_upper_bound())
            .field("delivered", &self.popped)
            .field("barriers", &self.stats.barriers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(3), 'c');
        q.schedule(Time::from_ticks(1), 'a');
        q.schedule(Time::from_ticks(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(Time::from_ticks(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_ticks(7));
        assert_eq!(q.delivered(), 1);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(10), "first");
        q.pop();
        q.schedule_after(Duration::from_ticks(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Time::from_ticks(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule at")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(10), ());
        q.pop();
        q.schedule(Time::from_ticks(9), ());
    }

    #[test]
    fn zero_delay_scheduling_allowed() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(4), 1);
        q.pop();
        q.schedule(q.now(), 2); // same instant
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.ticks(), e), (4, 2));
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        q.schedule(Time::from_ticks(2), 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 'b');
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId {
            slot: 99,
            generation: 0
        }));
    }

    #[test]
    fn cancel_of_delivered_event_is_false_and_leaves_no_tombstone() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 'a');
        // Cancelling an already-delivered event must report false ...
        assert!(!q.cancel(a), "event was already delivered");
        // ... and must not poison later scheduling/delivery.
        q.schedule(Time::from_ticks(2), 'b');
        assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
        assert!(q.is_empty());
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    fn cancel_after_flush_via_peek_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        q.cancel(a);
        // peek_time reclaims the cancelled entry from the heap; cancelling
        // again afterwards must still be a no-op returning false.
        assert_eq!(q.peek_time(), None);
        assert!(!q.cancel(a));
        assert_eq!(q.pending_upper_bound(), 0, "heap slot reclaimed");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(1), 'a');
        q.schedule(Time::from_ticks(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time::from_ticks(2)));
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_after_draining() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ticks(1), ());
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn recycled_slot_does_not_resurrect_old_ids() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_ticks(5), 'a');
        assert!(q.cancel(a));
        // The slot is recycled with a bumped generation: the new event is
        // distinct and the old id stays dead.
        let b = q.schedule(Time::from_ticks(6), 'b');
        assert!(!q.cancel(a), "stale id must not cancel the recycled slot");
        assert_eq!(q.pop().map(|(_, e)| e), Some('b'));
        assert!(!q.cancel(b));
    }

    /// The regression the slot-generation rewrite exists for: a workload
    /// that schedules and cancels far-future events millions of times must
    /// not accumulate memory — neither id-tracking state nor heap entries
    /// for long-cancelled events.
    #[test]
    fn memory_stays_bounded_across_a_million_schedule_cancel_cycles() {
        let mut q = EventQueue::new();
        // A long-lived anchor so the queue is never empty.
        q.schedule(Time::from_ticks(1 << 40), 0u64);
        for i in 0..1_000_000u64 {
            // Far-future event, cancelled before ever becoming due — under
            // the old lazy-tombstone scheme each left a heap entry behind
            // until its (distant) timestamp surfaced.
            let id = q.schedule(Time::from_ticks((1 << 30) + i), i);
            assert!(q.cancel(id));
            assert!(
                q.pending_upper_bound() <= COMPACT_MIN.max(4),
                "heap grew to {} entries after {} cycles",
                q.pending_upper_bound(),
                i + 1
            );
        }
        // Slot bookkeeping is recycled, not grown per cycle.
        assert!(q.generations.len() <= COMPACT_MIN.max(4));
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_pop_order_matches_example() {
        let mut q = ShardedEventQueue::new(3, Duration::from_ticks(2));
        q.schedule(0, Time::from_ticks(5), 'c');
        q.schedule(2, Time::from_ticks(1), 'a');
        q.schedule(1, Time::from_ticks(5), 'b'); // same tick as 'c': FIFO by seq
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'c', 'b']);
        assert_eq!(q.now(), Time::from_ticks(5));
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn sharded_cancel_works_while_parked_in_outbox() {
        let mut q = ShardedEventQueue::new(2, Duration::from_ticks(2));
        q.schedule(0, Time::from_ticks(1), 0u32);
        q.pop(); // current shard = 0, window now anchored
                 // Cross-shard, beyond the window: parked in the outbox.
        let parked = q.schedule(1, Time::from_ticks(100), 7u32);
        assert!(q.cancel(parked), "parked events must be cancellable");
        assert!(!q.cancel(parked), "double cancel reports false");
        q.schedule(0, Time::from_ticks(200), 9u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![9], "cancelled outbox entry must never surface");
    }

    #[test]
    fn sharded_cancelled_slot_is_not_resurrected_after_flush() {
        let mut q = ShardedEventQueue::new(2, Duration::from_ticks(2));
        q.schedule(0, Time::from_ticks(1), 0u32);
        q.pop();
        let parked = q.schedule(1, Time::from_ticks(50), 1u32);
        assert!(q.cancel(parked));
        // Recycle the same destination slot with a live event.
        let live = q.schedule(1, Time::from_ticks(60), 2u32);
        assert!(
            !q.cancel(parked),
            "stale id must not cancel the recycled slot"
        );
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2]);
        assert!(!q.cancel(live), "already delivered");
    }

    /// The load-bearing property, checked differentially: an adversarial
    /// schedule/cancel/pop interleaving produces the **identical** event
    /// stream from the sharded queue (any K) and the sequential queue —
    /// same events, same timestamps, same tie-break order.
    #[test]
    fn sharded_order_is_identical_to_sequential_under_random_workloads() {
        use crate::rng::SimRng;
        for &k in &[1usize, 2, 3, 5, 8] {
            for seed in 0..6u64 {
                let mut rng = SimRng::seed(0x5EED_0000 + seed);
                let mut single = EventQueue::new();
                let mut sharded = ShardedEventQueue::new(k, Duration::from_ticks(3));
                // Outstanding ids, tracked pairwise so the same logical
                // event is cancelled in both queues.
                let mut live: Vec<(EventId, EventId)> = Vec::new();
                let mut payload = 0u64;
                let mut single_stream = Vec::new();
                let mut sharded_stream = Vec::new();
                for _ in 0..2000 {
                    match rng.below(10) {
                        // Schedule: same (time, payload) into both; the
                        // shard is a function of the payload, like the
                        // runtime's node-based routing.
                        0..=4 => {
                            let at = sharded.now() + Duration::from_ticks(rng.below(9));
                            let shard = (payload % k as u64) as usize;
                            let a = single.schedule(at.max(single.now()), payload);
                            let b = sharded.schedule(shard, at, payload);
                            live.push((a, b));
                            payload += 1;
                        }
                        5..=6 => {
                            if !live.is_empty() {
                                let i = (rng.below(live.len() as u64)) as usize;
                                let (a, b) = live.swap_remove(i);
                                assert_eq!(single.cancel(a), sharded.cancel(b));
                            }
                        }
                        _ => {
                            single_stream.extend(single.pop());
                            sharded_stream.extend(sharded.pop());
                        }
                    }
                }
                single_stream.extend(std::iter::from_fn(|| single.pop()));
                sharded_stream.extend(std::iter::from_fn(|| sharded.pop()));
                assert_eq!(
                    single_stream, sharded_stream,
                    "k={k} seed={seed}: sharded order diverged from sequential"
                );
            }
        }
    }

    /// Satellite regression: slot-generation state stays bounded *per
    /// shard* across a million cross-shard schedule/cancel cycles — the
    /// outbox parking path must recycle destination slots exactly like the
    /// direct path does.
    #[test]
    fn sharded_memory_stays_bounded_across_a_million_cross_shard_cycles() {
        let mut q = ShardedEventQueue::new(4, Duration::from_ticks(4));
        // Anchor events so pops keep shard 0 "current" and the queue is
        // never empty.
        for i in 0..4u64 {
            q.schedule(0, Time::from_ticks(i), i);
        }
        q.pop(); // current shard = 0
        for i in 0..1_000_000u64 {
            // Far-future cross-shard event: parked in the outbox, then
            // cancelled before any barrier flushes it.
            let id = q.schedule(1 + (i % 3) as usize, Time::from_ticks((1 << 30) + i), i);
            assert!(q.cancel(id));
            assert!(
                q.pending_upper_bound() <= COMPACT_MIN + 8,
                "pending grew to {} entries after {} cycles",
                q.pending_upper_bound(),
                i + 1
            );
        }
        for s in &q.shards {
            assert!(
                s.generations.len() <= COMPACT_MIN.max(8),
                "slot table grew to {} entries",
                s.generations.len()
            );
        }
        let rest: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_stats_count_barriers_and_cross_shard_traffic() {
        let mut q = ShardedEventQueue::new(2, Duration::from_ticks(2));
        q.schedule(0, Time::ZERO, 0u32);
        q.pop();
        q.schedule(1, Time::from_ticks(10), 1u32); // cross, beyond window: outboxed
        q.schedule(1, Time::from_ticks(1), 2u32); // cross, inside window: miss
        q.schedule(0, Time::from_ticks(1), 3u32); // same shard
        while q.pop().is_some() {}
        let stats = q.stats();
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.window_ticks, 2);
        assert_eq!(stats.outboxed, 1);
        assert_eq!(stats.lookahead_misses, 1);
        assert!(stats.barriers >= 1, "reaching t=10 must cross a barrier");
        assert!(stats.max_peak_pending() >= 2);
        assert!(
            stats.total_slack_ticks() > 0,
            "shard 1 idles before its barrier"
        );
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn sharded_rejects_zero_shards() {
        let _ = ShardedEventQueue::<u32>::new(0, Duration::TICK);
    }

    #[test]
    fn shard_stats_merge_is_commutative_with_identity() {
        let a = ShardStats {
            shards: 2,
            window_ticks: 4,
            barriers: 3,
            outboxed: 5,
            lookahead_misses: 1,
            peak_pending: vec![7, 2],
            barrier_slack_ticks: vec![10, 20],
        };
        let b = ShardStats {
            shards: 2,
            window_ticks: 4,
            barriers: 1,
            outboxed: 2,
            lookahead_misses: 4,
            peak_pending: vec![3, 9],
            barrier_slack_ticks: vec![1, 2],
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(format!("{ab:?}"), format!("{ba:?}"));
        assert_eq!(ab.barriers, 4);
        assert_eq!(ab.peak_pending, vec![7, 9]);
        assert_eq!(ab.barrier_slack_ticks, vec![11, 22]);
        // Default-initialised accumulator is the identity.
        let mut acc = ShardStats::default();
        acc.merge(&a);
        assert_eq!(format!("{acc:?}"), format!("{a:?}"));
    }

    #[test]
    fn profiling_is_opt_in_and_does_not_perturb_order() {
        let run = |profile: bool| {
            let mut q = ShardedEventQueue::new(2, Duration::from_ticks(2));
            if profile {
                q.enable_profiling();
            }
            q.schedule(0, Time::ZERO, 0u32);
            q.schedule(1, Time::from_ticks(3), 1u32);
            q.schedule(0, Time::from_ticks(5), 2u32);
            let mut order = Vec::new();
            while let Some((at, e)) = q.pop() {
                order.push((at.ticks(), e));
            }
            (order, q.profile(), q.stats())
        };
        let (plain_order, plain_profile, plain_stats) = run(false);
        let (prof_order, prof_profile, prof_stats) = run(true);
        assert!(plain_profile.is_none(), "profiling is opt-in");
        assert_eq!(plain_order, prof_order);
        assert_eq!(plain_stats.barriers, prof_stats.barriers);
        let profile = prof_profile.expect("profiling was enabled");
        assert_eq!(profile.busy_nanos.len(), 2);
        assert!(
            !profile.samples.is_empty(),
            "barriers were crossed, so the timeline has samples"
        );
        assert!(profile.samples.len() <= ShardProfile::MAX_SAMPLES);
        let last = profile.samples.last().unwrap();
        assert_eq!(last.barriers, prof_stats.barriers);
    }

    #[test]
    fn profile_timeline_stays_bounded_under_many_barriers() {
        let mut q = ShardedEventQueue::new(2, Duration::TICK);
        q.enable_profiling();
        // One event per tick, alternating shards: every tick is a barrier.
        for i in 0..1000u64 {
            q.schedule((i % 2) as usize, Time::from_ticks(i), i);
        }
        while q.pop().is_some() {}
        let profile = q.profile().unwrap();
        assert!(q.stats().barriers > ShardProfile::MAX_SAMPLES as u64);
        assert!(profile.samples.len() <= ShardProfile::MAX_SAMPLES);
        assert!(profile.samples.len() > ShardProfile::MAX_SAMPLES / 4);
        // Samples are in barrier order and cover the run's tail.
        for pair in profile.samples.windows(2) {
            assert!(pair[0].barriers < pair[1].barriers);
            assert!(pair[0].at_ticks <= pair[1].at_ticks);
        }
    }

    /// Drives an adversarial schedule/cancel/pop workload through a queue
    /// built by `make`, returning the delivered stream.
    fn random_workload<Q: WorkloadQueue>(seed: u64, q: &mut Q) -> Vec<(Time, u64)> {
        use crate::rng::SimRng;
        let mut rng = SimRng::seed(0x7EED_0000 + seed);
        let mut live: Vec<Q::Id> = Vec::new();
        let mut payload = 0u64;
        let mut stream = Vec::new();
        for _ in 0..2500 {
            match rng.below(10) {
                0..=4 => {
                    let delay = Duration::from_ticks(rng.below(9));
                    live.push(q.schedule_at(delay, payload));
                    payload += 1;
                }
                5..=6 => {
                    if !live.is_empty() {
                        let i = (rng.below(live.len() as u64)) as usize;
                        let id = live.swap_remove(i);
                        q.cancel_id(id);
                    }
                }
                _ => stream.extend(q.pop_one()),
            }
        }
        while let Some(e) = q.pop_one() {
            stream.push(e);
        }
        stream
    }

    /// Uniform driver interface over the sequential and sharded queues so
    /// the same workload hits both.
    trait WorkloadQueue {
        type Id: Copy;
        fn schedule_at(&mut self, delay: Duration, payload: u64) -> Self::Id;
        fn cancel_id(&mut self, id: Self::Id) -> bool;
        fn pop_one(&mut self) -> Option<(Time, u64)>;
    }

    impl WorkloadQueue for EventQueue<u64> {
        type Id = EventId;
        fn schedule_at(&mut self, delay: Duration, payload: u64) -> EventId {
            self.schedule(self.now() + delay, payload)
        }
        fn cancel_id(&mut self, id: EventId) -> bool {
            self.cancel(id)
        }
        fn pop_one(&mut self) -> Option<(Time, u64)> {
            self.pop()
        }
    }

    impl WorkloadQueue for ShardedEventQueue<u64> {
        type Id = EventId;
        fn schedule_at(&mut self, delay: Duration, payload: u64) -> EventId {
            let shard = (payload % self.num_shards() as u64) as usize;
            self.schedule(shard, self.now() + delay, payload)
        }
        fn cancel_id(&mut self, id: EventId) -> bool {
            self.cancel(id)
        }
        fn pop_one(&mut self) -> Option<(Time, u64)> {
            self.pop()
        }
    }

    /// The tentpole property at the queue level: the threaded drain's
    /// delivered stream is identical to the sequential queue's for every
    /// `(shards, threads)` pair, under adversarial schedule/cancel/pop
    /// interleavings.
    #[test]
    fn threaded_order_is_identical_to_sequential_across_threads_and_shards() {
        for &k in &[1usize, 2, 4, 7] {
            for &t in &[1usize, 2, 4] {
                for seed in 0..4u64 {
                    let mut single = EventQueue::new();
                    let expect = random_workload(seed, &mut single);
                    let mut sharded = ShardedEventQueue::new(k, Duration::from_ticks(3));
                    sharded.enable_threaded_drain(t, WindowTuning::Fixed);
                    let got = random_workload(seed, &mut sharded);
                    assert_eq!(
                        expect, got,
                        "k={k} t={t} seed={seed}: threaded order diverged from sequential"
                    );
                }
            }
        }
    }

    /// Under `WindowTuning::Fixed` the threaded drain's barrier placement
    /// mirrors the fused coordinator's, so the deterministic ShardStats
    /// (barriers, outboxed, lookahead misses, slack) must match exactly.
    #[test]
    fn threaded_stats_match_fused_under_fixed_tuning() {
        for &k in &[2usize, 4] {
            for seed in 0..4u64 {
                let mut fused = ShardedEventQueue::new(k, Duration::from_ticks(3));
                let expect_stream = random_workload(seed, &mut fused);
                let mut threaded = ShardedEventQueue::new(k, Duration::from_ticks(3));
                threaded.enable_threaded_drain(2, WindowTuning::Fixed);
                let got_stream = random_workload(seed, &mut threaded);
                assert_eq!(expect_stream, got_stream);
                let (f, t) = (fused.stats(), threaded.stats());
                assert_eq!(f.barriers, t.barriers, "k={k} seed={seed}: barriers");
                assert_eq!(f.outboxed, t.outboxed, "k={k} seed={seed}: outboxed");
                assert_eq!(
                    f.lookahead_misses, t.lookahead_misses,
                    "k={k} seed={seed}: misses"
                );
                assert_eq!(
                    f.barrier_slack_ticks, t.barrier_slack_ticks,
                    "k={k} seed={seed}: slack"
                );
            }
        }
    }

    /// The adaptive window retune moves barriers around but can never
    /// change the delivered stream: the coordinator always consumes the
    /// global `(time, seq)` minimum, which is window-independent.
    #[test]
    fn adaptive_window_tuning_preserves_the_event_stream() {
        for seed in 0..4u64 {
            let mut fixed = ShardedEventQueue::new(4, Duration::from_ticks(3));
            fixed.enable_threaded_drain(2, WindowTuning::Fixed);
            let expect = random_workload(seed, &mut fixed);
            let mut adaptive = ShardedEventQueue::new(4, Duration::from_ticks(3));
            adaptive.enable_threaded_drain(2, WindowTuning::Adaptive);
            let got = random_workload(seed, &mut adaptive);
            assert_eq!(
                expect, got,
                "seed={seed}: adaptive retune changed the order"
            );
            assert!(
                adaptive.stats().barriers <= fixed.stats().barriers,
                "seed={seed}: widening windows must not add barriers"
            );
        }
    }

    /// Satellite regression: `pending_upper_bound` must count events
    /// buffered between barriers — the fused outbox AND every threaded
    /// between-barrier structure (inboxes, extracted runs, overlay).
    #[test]
    fn pending_upper_bound_counts_between_barrier_buffers() {
        // Fused: a parked cross-shard outbox entry is counted.
        let mut fused = ShardedEventQueue::new(2, Duration::from_ticks(2));
        fused.schedule(0, Time::ZERO, 0u32);
        fused.pop();
        fused.schedule(1, Time::from_ticks(50), 1u32); // outboxed
        assert_eq!(fused.pending_upper_bound(), 1, "fused outbox counted");

        // Threaded: inbox-buffered, extracted-run, and overlay events are
        // all counted.
        let mut q = ShardedEventQueue::new(2, Duration::from_ticks(4));
        q.enable_threaded_drain(2, WindowTuning::Fixed);
        q.schedule(0, Time::ZERO, 0u32); // overlay (in first window)
        q.schedule(1, Time::from_ticks(1), 1u32); // overlay
        assert_eq!(q.pending_upper_bound(), 2, "overlay entries counted");
        q.pop();
        q.schedule(0, Time::from_ticks(20), 2u32); // inbox (future window)
        q.schedule(1, Time::from_ticks(21), 3u32); // inbox
        assert_eq!(
            q.pending_upper_bound(),
            3,
            "inbox entries counted between barriers"
        );
        q.pop(); // drains overlay; next pop crosses a barrier
        q.pop(); // t=20: barrier extracted both inbox events into runs
        assert_eq!(
            q.pending_upper_bound(),
            1,
            "run-resident events counted after the barrier"
        );
        assert_eq!(q.pop().map(|(_, e)| e), Some(3));
        assert_eq!(q.pending_upper_bound(), 0);
        assert!(q.pop().is_none());
    }

    /// The threaded analogue of the outbox-churn regression: cancelled
    /// inbox entries must not accumulate between barriers.
    #[test]
    fn threaded_memory_stays_bounded_across_a_million_buffered_cycles() {
        let mut q = ShardedEventQueue::new(4, Duration::from_ticks(4));
        q.enable_threaded_drain(2, WindowTuning::Fixed);
        for i in 0..4u64 {
            q.schedule(0, Time::from_ticks(i), i);
        }
        q.pop(); // current shard = 0
        for i in 0..1_000_000u64 {
            let id = q.schedule(1 + (i % 3) as usize, Time::from_ticks((1 << 30) + i), i);
            assert!(q.cancel(id));
            assert!(
                q.pending_upper_bound() <= COMPACT_MIN + 8,
                "pending grew to {} entries after {} cycles",
                q.pending_upper_bound(),
                i + 1
            );
        }
        for s in &q.shards {
            assert!(
                s.generations.len() <= COMPACT_MIN.max(8),
                "slot table grew to {} entries",
                s.generations.len()
            );
        }
        let rest: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    /// Worker-lane profiling is opt-in, threaded-only, and does not
    /// perturb the delivered order or deterministic stats.
    #[test]
    fn threaded_profiling_reports_worker_lanes_without_perturbing_order() {
        let run = |profile: bool| {
            let mut q = ShardedEventQueue::new(4, Duration::from_ticks(2));
            q.enable_threaded_drain(2, WindowTuning::Fixed);
            if profile {
                q.enable_profiling();
            }
            for i in 0..64u64 {
                q.schedule((i % 4) as usize, Time::from_ticks(i / 2), i);
            }
            let mut order = Vec::new();
            while let Some((at, e)) = q.pop() {
                order.push((at.ticks(), e));
            }
            (order, q.profile(), q.stats())
        };
        let (plain_order, plain_profile, plain_stats) = run(false);
        let (prof_order, prof_profile, prof_stats) = run(true);
        assert!(plain_profile.is_none());
        assert_eq!(plain_order, prof_order);
        assert_eq!(plain_stats.barriers, prof_stats.barriers);
        let profile = prof_profile.expect("profiling was enabled");
        assert_eq!(
            profile.workers.len(),
            2,
            "one lane per barrier worker thread"
        );
    }

    #[test]
    fn compaction_preserves_order_and_liveness() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        let mut drop_ids = Vec::new();
        for i in 0..200u64 {
            let id = q.schedule(Time::from_ticks(1000 - i), i);
            if i % 2 == 0 {
                keep.push(i);
            } else {
                drop_ids.push(id);
            }
        }
        for id in drop_ids {
            assert!(q.cancel(id));
        }
        assert!(
            q.pending_upper_bound() < 200,
            "compaction must have reclaimed cancelled entries"
        );
        let mut order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let mut expected = keep;
        expected.sort_by_key(|&i| 1000 - i);
        assert_eq!(order.len(), expected.len());
        order.sort_by_key(|&i| 1000 - i);
        order.reverse();
        expected.reverse();
        assert_eq!(order, expected);
    }
}
