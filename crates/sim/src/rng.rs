//! Deterministic, splittable random number generation.
//!
//! Every randomized component of the reproduction (topology sampling,
//! scheduler choices, algorithm coin flips) draws from a [`SimRng`] derived
//! from a single experiment seed, so that whole executions are replayable.
//! The paper's lower-bound model explicitly hands each node its random bits
//! up front; [`SimRng::split`] mirrors that by deriving an independent
//! per-node stream from the node id.

use rand::{Error, RngCore, SeedableRng};

/// A small, fast, deterministic PRNG (SplitMix64) implementing
/// [`rand::RngCore`].
///
/// SplitMix64 passes BigCrush at this output size and — crucially for this
/// workspace — supports cheap *splitting* into independent streams, which
/// neither `StdRng` nor the small xorshift generators expose directly.
///
/// Not cryptographically secure; simulation use only.
///
/// # Examples
///
/// ```
/// use amac_sim::SimRng;
/// use rand::Rng;
///
/// let mut rng = SimRng::seed(42);
/// let a: u64 = rng.gen();
/// let mut rng2 = SimRng::seed(42);
/// assert_eq!(a, rng2.gen::<u64>());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from an experiment seed.
    pub fn seed(seed: u64) -> SimRng {
        SimRng { state: seed }
    }

    /// Derives an independent stream keyed by `salt` without disturbing this
    /// generator's own sequence. Deterministic: the same `(seed, salt)` pair
    /// always yields the same stream.
    ///
    /// Used to hand each node (and each scheduler) its own random bits, as
    /// in the paper's randomness model — and by the multi-trial experiment
    /// engine, which seeds trial `i` from `split(i)` and each `(point,
    /// trial)` sweep cell from a further split, so results depend only on
    /// indices, never on worker scheduling.
    ///
    /// # Examples
    ///
    /// ```
    /// use amac_sim::SimRng;
    ///
    /// let root = SimRng::seed(42);
    /// let mut trial_3 = root.split(3);
    /// // Pure function of (seed, salt): replayable on any machine …
    /// assert_eq!(trial_3.next(), SimRng::seed(42).split(3).next());
    /// // … without disturbing the parent or sibling streams.
    /// assert_eq!(root, SimRng::seed(42));
    /// assert_ne!(root.split(4).next(), root.split(3).next());
    /// ```
    pub fn split(&self, salt: u64) -> SimRng {
        SimRng {
            state: mix64(self.state ^ mix64(salt.wrapping_mul(GOLDEN_GAMMA).wrapping_add(1))),
        }
    }

    /// Next raw 64-bit output.
    ///
    /// Not `Iterator::next`: the stream is infinite and never yields `None`,
    /// and the name mirrors `RngCore::next_u64`, which this forwards to.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Uniform sample in `[0, bound)`; `bound` must be positive.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift rejection-free mapping (Lemire); slight bias is
        // irrelevant at simulation scales but we keep a rejection loop for
        // exactness.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53-bit uniform in [0, 1).
        let u = (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: [u8; 8]) -> SimRng {
        SimRng::seed(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> SimRng {
        SimRng::seed(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SimRng::seed(7);
            (0..20).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SimRng::seed(7);
            (0..20).map(|_| r.next()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = SimRng::seed(99);
        let mut s1 = root.split(1);
        let mut s1b = root.split(1);
        let mut s2 = root.split(2);
        assert_eq!(s1.next(), s1b.next(), "same salt, same stream");
        assert_ne!(
            (0..4).map(|_| s1.next()).collect::<Vec<_>>(),
            (0..4).map(|_| s2.next()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn split_does_not_advance_parent() {
        let root = SimRng::seed(5);
        let before = root.clone();
        let _ = root.split(3);
        assert_eq!(root, before);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = SimRng::seed(12);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::seed(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "~25% of 10k, got {hits}");
    }

    #[test]
    fn rngcore_integration() {
        let mut r = SimRng::seed(8);
        let x: f64 = r.gen();
        assert!((0.0..1.0).contains(&x));
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn seedable_from_u64() {
        let mut a = SimRng::seed_from_u64(77);
        let mut b = SimRng::seed(77);
        assert_eq!(a.next(), b.next());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The multi-trial engine seeds trial `i` from `split(i)`:
            /// distinct trial indices must never coincide in their first
            /// 64 outputs, or two "independent" trials would replay the
            /// same execution.
            #[test]
            fn split_streams_never_coincide_in_first_64_outputs(
                seed in 0u64..u64::MAX,
                i in 0u64..10_000,
                j in 0u64..10_000,
            ) {
                prop_assume!(i != j);
                let root = SimRng::seed(seed);
                let mut a = root.split(i);
                let mut b = root.split(j);
                let xs: Vec<u64> = (0..64).map(|_| a.next()).collect();
                let ys: Vec<u64> = (0..64).map(|_| b.next()).collect();
                prop_assert_ne!(xs, ys, "split({}) == split({}) under seed {}", i, j, seed);
            }

            /// Splitting is a pure function of (seed, salt).
            #[test]
            fn split_is_reproducible(seed in 0u64..u64::MAX, salt in 0u64..u64::MAX) {
                let mut a = SimRng::seed(seed).split(salt);
                let mut b = SimRng::seed(seed).split(salt);
                prop_assert_eq!(a.next(), b.next());
            }
        }
    }
}
