//! Lightweight statistics for experiment harnesses: counters, online
//! summaries, fixed-bucket histograms, and the streaming trial aggregates
//! ([`Aggregate`], [`Reservoir`]) used by the multi-trial experiment
//! engine in `amac-bench`.

use crate::rng::SimRng;
use std::collections::BTreeMap;
use std::fmt;

/// A monotone event counter keyed by a static label.
///
/// # Examples
///
/// ```
/// use amac_sim::stats::Counters;
///
/// let mut c = Counters::new();
/// c.add("rcv", 3);
/// c.incr("rcv");
/// assert_eq!(c.get("rcv"), 4);
/// assert_eq!(c.get("never"), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to the counter `key`.
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.map.entry(key).or_insert(0) += n;
    }

    /// Adds 1 to the counter `key`.
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of `key` (0 if never touched).
    pub fn get(&self, key: &'static str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Iterates over `(label, value)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

/// Online summary of a stream of `f64` samples: count, min, max, mean, and
/// variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use amac_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(6.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance, `m2 / (n - 1)` (0 for fewer than 2
    /// samples). This is the estimator confidence intervals are built on.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of a Student-t 95% confidence interval for the mean:
    /// `t(0.975, n−1) · s / √n` with `s` the sample standard deviation.
    /// The t critical value matters at the small trial counts experiments
    /// actually run (at `n = 3` it is 4.30, not 1.96 — a z-based interval
    /// there would have only ~72% real coverage). 0 for fewer than 2
    /// samples (a single measurement carries no spread information).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            t975(self.count - 1) * (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// The CI half-width as a fraction of the mean's magnitude — the
    /// quantity the adaptive trial engine drives below its `--target-ci`
    /// threshold. Batches of trials keep recording into the same summary,
    /// and this ratio shrinks as `t(n−1)/√n` once the spread stabilizes.
    ///
    /// Degenerate cases are chosen so thresholds behave sensibly: a spread
    /// around a zero mean reports `f64::INFINITY` (never "converged"), and
    /// a zero-spread stream reports `0.0` (converged at any threshold).
    ///
    /// # Examples
    ///
    /// ```
    /// use amac_sim::stats::Summary;
    ///
    /// let mut s = Summary::new();
    /// for x in [99.0, 100.0, 101.0] {
    ///     s.record(x);
    /// }
    /// // Tight spread around 100: well under a 5% target.
    /// assert!(s.relative_ci95() < 0.05);
    ///
    /// let mut zero = Summary::new();
    /// zero.record(-1.0);
    /// zero.record(1.0);
    /// assert_eq!(zero.relative_ci95(), f64::INFINITY);
    /// ```
    pub fn relative_ci95(&self) -> f64 {
        let half = self.ci95_half_width();
        if half == 0.0 {
            0.0
        } else if self.mean() == 0.0 {
            f64::INFINITY
        } else {
            half / self.mean().abs()
        }
    }

    /// Minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} max={:.2}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min,
            self.max
        )
    }
}

/// A histogram with uniform integer buckets of the given width, recording
/// `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    buckets: BTreeMap<u64, u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with buckets `[0, width), [width, 2·width), …`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "bucket width must be positive");
        Histogram {
            width,
            buckets: BTreeMap::new(),
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: u64) {
        *self.buckets.entry(x / self.width).or_insert(0) += 1;
        self.count += 1;
    }

    /// Total sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Iterates `(bucket_lower_bound, count)` in increasing order, skipping
    /// empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(move |(b, c)| (b * self.width, *c))
    }

    /// The smallest value `v` such that at least `q` (in `[0,1]`) of samples
    /// are `< v + width`; i.e. an upper bound of the quantile's bucket.
    /// Returns `None` when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (bucket, c) in &self.buckets {
            acc += c;
            if acc >= target {
                return Some((bucket + 1) * self.width);
            }
        }
        self.buckets
            .keys()
            .next_back()
            .map(|b| (b + 1) * self.width)
    }
}

/// Two-sided Student-t critical values at confidence 0.95 (upper 0.975
/// quantile) by degrees of freedom; conservative step table, converging
/// to the normal 1.96 for large samples.
fn t975(df: u64) -> f64 {
    match df {
        0 => 0.0,
        1 => 12.706,
        2 => 4.303,
        3 => 3.182,
        4 => 2.776,
        5 => 2.571,
        6 => 2.447,
        7 => 2.365,
        8 => 2.306,
        9 => 2.262,
        10 => 2.228,
        11..=12 => 2.179,
        13..=15 => 2.131,
        16..=20 => 2.086,
        21..=30 => 2.042,
        31..=60 => 2.0,
        _ => 1.96,
    }
}

/// A fixed-capacity uniform sample of a stream (Vitter's algorithm R),
/// used for streaming quantiles (min/median/p95) where storing every
/// sample would be wasteful.
///
/// Fully deterministic: the replacement choices come from a [`SimRng`]
/// owned by the reservoir, so the same insertion sequence always yields
/// the same sample. While `seen() <= capacity` the reservoir holds every
/// sample and its quantiles are exact.
///
/// # Examples
///
/// ```
/// use amac_sim::stats::Reservoir;
///
/// let mut r = Reservoir::new(64);
/// for x in 1..=5 {
///     r.record(x as f64);
/// }
/// assert_eq!(r.min(), Some(1.0));
/// assert_eq!(r.quantile(0.5), Some(3.0));
/// assert!(r.is_exact());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Reservoir {
    capacity: usize,
    seen: u64,
    samples: Vec<f64>,
    rng: SimRng,
}

impl Reservoir {
    /// Creates a reservoir holding at most `capacity` samples, with a
    /// fixed default seed for the replacement stream.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Reservoir {
        Reservoir::with_seed(capacity, RESERVOIR_SEED)
    }

    /// Creates a reservoir with an explicit replacement-stream seed.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_seed(capacity: usize, seed: u64) -> Reservoir {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            samples: Vec::new(),
            rng: SimRng::seed(seed),
        }
    }

    /// Records one sample (algorithm R: the `i`-th sample replaces a
    /// random slot with probability `capacity / i`).
    pub fn record(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(x);
        } else {
            let j = self.rng.below(self.seen) as usize;
            if j < self.capacity {
                self.samples[j] = x;
            }
        }
    }

    /// Total number of samples offered to the reservoir.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// `true` while the reservoir still holds *every* offered sample, i.e.
    /// its quantiles are exact rather than estimates.
    pub fn is_exact(&self) -> bool {
        self.seen <= self.capacity as u64
    }

    /// The `q`-quantile (nearest-rank over the held sample), `q` clamped
    /// to `[0, 1]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.max(1) - 1])
    }

    /// Smallest held sample.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().min_by(f64::total_cmp)
    }

    /// Median (0.5-quantile, nearest rank).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 95th percentile (nearest rank).
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// The held samples, in insertion/replacement order (all offered
    /// samples while [`is_exact`](Reservoir::is_exact); a uniform
    /// subsample afterwards). Deterministic for a fixed feed order — the
    /// distribution plots in `amac-bench` render from this.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

const RESERVOIR_SEED: u64 = 0x5EED_4E5E_4901_4001;

/// Streaming aggregate of one measured quantity over many trials: a
/// Welford [`Summary`] (count/mean/variance/min/max) plus a [`Reservoir`]
/// for order statistics (median, p95).
///
/// Feed samples in a fixed order (the experiment engine folds trials in
/// trial-index order) and the aggregate is bit-reproducible regardless of
/// how the trials themselves were scheduled.
///
/// # Examples
///
/// ```
/// use amac_sim::stats::Aggregate;
///
/// let mut a = Aggregate::new();
/// for x in [10.0, 20.0, 30.0] {
///     a.record(x);
/// }
/// assert_eq!(a.count(), 3);
/// assert_eq!(a.mean(), 20.0);
/// assert_eq!(a.median(), Some(20.0));
/// assert!(a.ci95_half_width() > 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Aggregate {
    summary: Summary,
    reservoir: Reservoir,
}

/// Default reservoir capacity: plenty for exact quantiles at typical
/// trial counts, still O(1) memory for huge ones.
pub const AGGREGATE_RESERVOIR_CAPACITY: usize = 256;

impl Aggregate {
    /// Creates an empty aggregate with the default reservoir capacity.
    pub fn new() -> Aggregate {
        Aggregate {
            summary: Summary::new(),
            reservoir: Reservoir::with_seed(AGGREGATE_RESERVOIR_CAPACITY, RESERVOIR_SEED),
        }
    }

    /// Records one per-trial measurement.
    pub fn record(&mut self, x: f64) {
        self.summary.record(x);
        self.reservoir.record(x);
    }

    /// The underlying Welford summary.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Number of trials recorded.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Mean over trials (0 when empty).
    pub fn mean(&self) -> f64 {
        self.summary.mean()
    }

    /// Sample standard deviation over trials.
    pub fn sample_stddev(&self) -> f64 {
        self.summary.sample_variance().sqrt()
    }

    /// 95% confidence-interval half-width for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        self.summary.ci95_half_width()
    }

    /// CI half-width relative to the mean's magnitude (see
    /// [`Summary::relative_ci95`]); the adaptive trial engine's
    /// convergence criterion.
    ///
    /// # Examples
    ///
    /// ```
    /// use amac_sim::stats::Aggregate;
    ///
    /// let mut a = Aggregate::new();
    /// for _ in 0..8 {
    ///     a.record(250.0); // zero spread: converged at any threshold
    /// }
    /// assert_eq!(a.relative_ci95(), 0.0);
    /// ```
    pub fn relative_ci95(&self) -> f64 {
        self.summary.relative_ci95()
    }

    /// Smallest trial value.
    pub fn min(&self) -> Option<f64> {
        self.summary.min()
    }

    /// Largest trial value.
    pub fn max(&self) -> Option<f64> {
        self.summary.max()
    }

    /// Median trial value (exact while trials fit the reservoir).
    pub fn median(&self) -> Option<f64> {
        self.reservoir.median()
    }

    /// 95th-percentile trial value (exact while trials fit the reservoir).
    pub fn p95(&self) -> Option<f64> {
        self.reservoir.p95()
    }

    /// The retained per-trial samples (see [`Reservoir::samples`]): the
    /// raw material for histogram/CDF rendering.
    pub fn samples(&self) -> &[f64] {
        self.reservoir.samples()
    }
}

impl Default for Aggregate {
    fn default() -> Self {
        Aggregate::new()
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count() == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.2} ±{:.2} med={:.2} p95={:.2}",
            self.count(),
            self.mean(),
            self.ci95_half_width(),
            self.median().unwrap_or(0.0),
            self.p95().unwrap_or(0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.incr("a");
        c.add("a", 2);
        c.incr("b");
        assert_eq!(c.get("a"), 3);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.get("zzz"), 0);
        assert_eq!(c.iter().count(), 2);
        assert_eq!(c.to_string(), "a=3, b=1");
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn summary_empty_behaviour() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn summary_merge_matches_bulk() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut all = Summary::new();
        for i in 0..10 {
            let x = i as f64 * 1.5;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(10);
        for x in [0, 5, 9, 10, 25, 25] {
            h.record(x);
        }
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 3), (10, 1), (20, 2)]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1);
        for x in 0..100u64 {
            h.record(x);
        }
        assert_eq!(h.quantile_upper_bound(0.5), Some(50));
        assert_eq!(h.quantile_upper_bound(1.0), Some(100));
        assert_eq!(Histogram::new(1).quantile_upper_bound(0.5), None);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_panics() {
        Histogram::new(0);
    }

    /// Welford (streaming) statistics must match a naive two-pass
    /// reference over awkward data (large offset, small spread).
    #[test]
    fn welford_matches_two_pass_reference() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| 1.0e9 + (i as f64 * 0.73).sin() * 5.0)
            .collect();
        let mut s = Summary::new();
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let ss: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum();
        let pop_var = ss / n;
        let samp_var = ss / (n - 1.0);
        assert!((s.mean() - mean).abs() / mean < 1e-12);
        assert!((s.variance() - pop_var).abs() / pop_var < 1e-9);
        assert!((s.sample_variance() - samp_var).abs() / samp_var < 1e-9);
        // n = 1000: the t critical value has converged to the normal 1.96.
        let ci = 1.96 * (samp_var / n).sqrt();
        assert!((s.ci95_half_width() - ci).abs() / ci < 1e-9);
    }

    #[test]
    fn relative_ci_handles_degenerate_means() {
        let mut s = Summary::new();
        for x in [90.0, 100.0, 110.0] {
            s.record(x);
        }
        assert!((s.relative_ci95() - s.ci95_half_width() / 100.0).abs() < 1e-12);
        // Zero spread: converged regardless of the mean (even a zero mean).
        let mut flat = Summary::new();
        flat.record(0.0);
        flat.record(0.0);
        assert_eq!(flat.relative_ci95(), 0.0);
        // Spread around zero: never converged.
        let mut sym = Summary::new();
        sym.record(-5.0);
        sym.record(5.0);
        assert_eq!(sym.relative_ci95(), f64::INFINITY);
        // Negative mean uses the magnitude.
        let mut neg = Summary::new();
        for x in [-90.0, -100.0, -110.0] {
            neg.record(x);
        }
        assert!(neg.relative_ci95() > 0.0);
        assert!(neg.relative_ci95() < 1.0);
    }

    #[test]
    fn ci_is_zero_below_two_samples() {
        let mut s = Summary::new();
        assert_eq!(s.ci95_half_width(), 0.0);
        s.record(42.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        s.record(44.0);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn small_sample_ci_uses_student_t() {
        // n = 3 (df = 2): the factor must be t = 4.303, not z = 1.96 —
        // a z interval at this size has only ~72% real coverage.
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0] {
            s.record(x);
        }
        let expected = 4.303 * (s.sample_variance() / 3.0).sqrt();
        assert!((s.ci95_half_width() - expected).abs() < 1e-9);
        // Monotone sanity along the table: growing n shrinks the factor.
        assert!(t975(2) > t975(5));
        assert!(t975(5) > t975(30));
        assert!((t975(1000) - 1.96).abs() < 1e-12);
        assert_eq!(t975(0), 0.0);
    }

    #[test]
    fn reservoir_exact_below_capacity() {
        let mut r = Reservoir::new(8);
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            r.record(x);
        }
        assert!(r.is_exact());
        assert_eq!(r.len(), 5);
        assert_eq!(r.seen(), 5);
        assert_eq!(r.min(), Some(1.0));
        assert_eq!(r.median(), Some(3.0));
        assert_eq!(r.quantile(1.0), Some(5.0));
        assert_eq!(r.p95(), Some(5.0));
    }

    #[test]
    fn reservoir_overflow_stays_plausible_and_deterministic() {
        let run = || {
            let mut r = Reservoir::new(16);
            for i in 0..1000u64 {
                r.record(i as f64);
            }
            r
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same insertion order, same reservoir");
        assert!(!a.is_exact());
        assert_eq!(a.len(), 16);
        assert_eq!(a.seen(), 1000);
        // A uniform sample of 0..1000 has a median nowhere near the edges.
        let med = a.median().unwrap();
        assert!((100.0..900.0).contains(&med), "median {med}");
    }

    #[test]
    fn reservoir_empty_and_zero_capacity() {
        let r = Reservoir::new(4);
        assert!(r.is_empty());
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.min(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn reservoir_zero_capacity_panics() {
        Reservoir::new(0);
    }

    #[test]
    fn aggregate_combines_summary_and_quantiles() {
        let mut a = Aggregate::new();
        for x in 1..=20 {
            a.record(x as f64);
        }
        assert_eq!(a.count(), 20);
        assert_eq!(a.mean(), 10.5);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(20.0));
        assert_eq!(a.median(), Some(10.0));
        assert_eq!(a.p95(), Some(19.0));
        assert!(a.ci95_half_width() > 0.0);
        assert!(a.sample_stddev() > 0.0);
        let shown = a.to_string();
        assert!(shown.contains("n=20"), "{shown}");
        assert_eq!(Aggregate::new().to_string(), "n=0");
    }
}
