//! Lightweight statistics for experiment harnesses: counters, online
//! summaries, and fixed-bucket histograms.

use std::collections::BTreeMap;
use std::fmt;

/// A monotone event counter keyed by a static label.
///
/// # Examples
///
/// ```
/// use amac_sim::stats::Counters;
///
/// let mut c = Counters::new();
/// c.add("rcv", 3);
/// c.incr("rcv");
/// assert_eq!(c.get("rcv"), 4);
/// assert_eq!(c.get("never"), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to the counter `key`.
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.map.entry(key).or_insert(0) += n;
    }

    /// Adds 1 to the counter `key`.
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of `key` (0 if never touched).
    pub fn get(&self, key: &'static str) -> u64 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Iterates over `(label, value)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

/// Online summary of a stream of `f64` samples: count, min, max, mean, and
/// variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use amac_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(6.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} max={:.2}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min,
            self.max
        )
    }
}

/// A histogram with uniform integer buckets of the given width, recording
/// `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    buckets: BTreeMap<u64, u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with buckets `[0, width), [width, 2·width), …`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u64) -> Self {
        assert!(width > 0, "bucket width must be positive");
        Histogram {
            width,
            buckets: BTreeMap::new(),
            count: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: u64) {
        *self.buckets.entry(x / self.width).or_insert(0) += 1;
        self.count += 1;
    }

    /// Total sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Iterates `(bucket_lower_bound, count)` in increasing order, skipping
    /// empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(move |(b, c)| (b * self.width, *c))
    }

    /// The smallest value `v` such that at least `q` (in `[0,1]`) of samples
    /// are `< v + width`; i.e. an upper bound of the quantile's bucket.
    /// Returns `None` when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (bucket, c) in &self.buckets {
            acc += c;
            if acc >= target {
                return Some((bucket + 1) * self.width);
            }
        }
        self.buckets
            .keys()
            .next_back()
            .map(|b| (b + 1) * self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.incr("a");
        c.add("a", 2);
        c.incr("b");
        assert_eq!(c.get("a"), 3);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.get("zzz"), 0);
        assert_eq!(c.iter().count(), 2);
        assert_eq!(c.to_string(), "a=3, b=1");
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn summary_empty_behaviour() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn summary_merge_matches_bulk() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut all = Summary::new();
        for i in 0..10 {
            let x = i as f64 * 1.5;
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(10);
        for x in [0, 5, 9, 10, 25, 25] {
            h.record(x);
        }
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 3), (10, 1), (20, 2)]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1);
        for x in 0..100u64 {
            h.record(x);
        }
        assert_eq!(h.quantile_upper_bound(0.5), Some(50));
        assert_eq!(h.quantile_upper_bound(1.0), Some(100));
        assert_eq!(Histogram::new(1).quantile_upper_bound(0.5), None);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_panics() {
        Histogram::new(0);
    }
}
