//! `repro` — regenerate every table and figure of the paper in one run.
//!
//! Prints each experiment's table to stdout (plain text) and, with
//! `--markdown`, emits the EXPERIMENTS.md dataset instead. With `--smoke`,
//! runs every experiment at a tiny, seconds-scale parameterisation — the
//! same code paths as the full run — so CI can verify that table
//! regeneration still works without paying for the full sweeps.
//!
//! Positional arguments select individual experiments by id (run `repro
//! --list` for the ids): `repro consensus_crash` regenerates just the
//! consensus table, `repro fig1_gg election` two of them, no argument the
//! whole suite.
//!
//! `--trials N` runs `N` independent trials per experiment (tables then
//! report mean ± 95% CI per sweep point) and `--jobs J` fans `(sweep
//! point, trial)` cells over `J` worker threads (default: one per core).
//! `--target-ci FRAC` switches to adaptive precision: each sweep point
//! stops recruiting trials once its 95% CI half-width falls below `FRAC`
//! of its mean (floor `--trials`, cap `--max-trials`, default `8×trials`).
//! `--dump-traces DIR` re-runs the min/median/max trial of every sweep
//! point with MAC-trace recording, re-validates those executions, and
//! writes one annotated trace file per outlier under `DIR`.
//! `--plots` appends an ASCII histogram/CDF of each sweep point's trial
//! distribution to its table. `--json DIR` additionally writes one
//! machine-readable `BENCH_<id>.json` per experiment (full dataset,
//! engine parameters, wall clock) for tooling. `--shards K` runs every
//! workload (sweeps and `--record`) on the sharded event queue with `K`
//! shards; sharded execution is byte-identical to sequential
//! (`tests/shard_equivalence.rs`), so only wall-clock-exempt cells may
//! change. `--shard-threads T` additionally drains the shards' time
//! windows on up to `T` scoped worker threads per trial — still
//! byte-identical, and capped against `--jobs` so the two pools never
//! multiply past the available cores (threads only unfold when jobs
//! leave cores idle, e.g. `--jobs 1`).
//!
//! Stdout is **byte-identical for any `J`** — including adaptive trial
//! counts and plot lines: trial `i` is seeded by `SimRng::split(i)`,
//! aggregates fold in `(point, trial)` order, and adaptive stop decisions
//! happen at fixed batch boundaries. (The JSON files carry wall-clock
//! seconds, and the `scale` experiment's `events/s` column is wall clock;
//! both are exempt from the byte-identity contract — every other cell of
//! every table is covered.)
//!
//! `check` switches to **bounded exhaustive model checking** (the
//! `amac-check` crate): `repro check consensus --nodes 3 --depth full`
//! enumerates every schedule the MAC model permits for a small consensus
//! instance and judges each against the shipped safety properties,
//! printing explored/pruned statistics. `--depth D` bounds the free
//! decisions per schedule (later ones pinned to their defaults),
//! `--max-schedules M` caps the walk, `--broken` substitutes the
//! deliberately under-provisioned consensus so the counterexample
//! pipeline (delta-debugging shrinker + `.amactrace` fixture via
//! `--fixture PATH`) can be exercised, and `check --smoke` runs the
//! blocking CI suite (exhaustive certification at n = 3 scale plus a
//! shrinker self-test). Exit status 1 signals an unexpected verdict —
//! a violation in a certified space, or a clean run under `--broken`.
//!
//! `--record DIR` switches from sweeps to **canonical executions**: each
//! selected experiment runs its canonical fixed-seed execution once with a
//! streaming store observer attached, writing `DIR/<id>.amactrace` (format:
//! `docs/TRACE_FORMAT.md`) and printing the live validator's summary.
//! `--metrics DIR` runs the same canonical executions with a deterministic
//! sim-time metrics observer attached and writes one `METRICS_<id>.json`
//! per experiment (latency/slack histograms, per-node counters, in-flight
//! depth — see `docs/OBSERVABILITY.md`); `--chrome-trace FILE` exports the
//! single selected experiment's span timeline as Perfetto-loadable Chrome
//! trace-event JSON. The three outputs compose freely and may run sharded
//! (`--shards K`); every deterministic byte is identical either way. The
//! `replay` subcommand re-reads stored trace files — `repro replay FILE`
//! re-runs a fresh `OnlineValidator` over the stored stream and prints the
//! same summary block (byte-identical to the recording run's, for a
//! faithful file); `--observer counter|trace|metrics|spans` feeds the
//! stream to a [`CounterObserver`], a [`TraceObserver`], a metrics
//! observer (prints the `METRICS` JSON document), or a span observer
//! (prints the Chrome trace-event JSON) instead.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p amac-bench --bin repro            # text tables
//! cargo run --release -p amac-bench --bin repro -- --markdown > EXPERIMENTS.data.md
//! cargo run --release -p amac-bench --bin repro -- --smoke  # CI fast path
//! cargo run --release -p amac-bench --bin repro -- --trials 32 --jobs 8 --plots
//! cargo run --release -p amac-bench --bin repro -- --trials 8 --target-ci 0.05 --max-trials 128
//! cargo run --release -p amac-bench --bin repro -- consensus_crash --trials 8 --json out/
//! cargo run --release -p amac-bench --bin repro -- consensus_crash --record traces/
//! cargo run --release -p amac-bench --bin repro -- scale --shards 4 --metrics out/ --chrome-trace out/scale.trace.json
//! cargo run --release -p amac-bench --bin repro -- replay traces/consensus_crash.amactrace
//! cargo run --release -p amac-bench --bin repro -- replay traces/consensus_crash.amactrace --observer metrics
//! cargo run --release -p amac-bench --bin repro -- check consensus --nodes 3 --depth full
//! cargo run --release -p amac-bench --bin repro -- check consensus --broken --fixture cx.amactrace
//! cargo run --release -p amac-bench --bin repro -- check --smoke  # CI blocking gate
//! ```

use amac_bench::engine::{default_jobs, TrialRunner};
use amac_bench::experiments::{self, ExperimentSpec, LabeledOutlier};
use amac_mac::trace::TraceKind;
use amac_mac::{CounterObserver, TraceObserver};
use amac_store::{replay_into, replay_validate, TraceReader};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn usage_exit() -> ! {
    eprintln!(
        "usage: repro [EXPERIMENT ...] [--list] [--markdown] [--smoke] [--trials N] [--jobs J] \
         [--target-ci FRAC] [--max-trials M] [--dump-traces DIR] [--plots] [--json DIR] \
         [--record DIR] [--metrics DIR] [--chrome-trace FILE] [--shards K] [--shard-threads T]"
    );
    eprintln!(
        "       repro replay FILE [FILE ...] \
         [--observer validator|counter|trace|check|metrics|spans] [--json DIR]"
    );
    eprintln!(
        "       repro check [SCENARIO ...] [--nodes N] [--crashes C] [--messages K] \
         [--depth D|full] [--max-schedules M] [--broken] [--fixture PATH] [--smoke] [--json DIR]"
    );
    eprintln!(
        "check scenarios: {} (default: all certified variants)",
        amac_bench::check::SCENARIOS.join(", ")
    );
    eprintln!("experiment ids:");
    for spec in experiments::registry() {
        eprintln!("  {:<18} {} ({})", spec.id, spec.summary, spec.label);
    }
    std::process::exit(2);
}

fn positive_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    args.next()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a positive integer");
            usage_exit()
        })
}

fn fraction_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> f64 {
    args.next()
        .and_then(|v| v.parse().ok())
        .filter(|&f: &f64| f > 0.0 && f < 1.0)
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a fraction in (0, 1), e.g. 0.05");
            usage_exit()
        })
}

fn dir_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> PathBuf {
    PathBuf::from(args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a directory");
        usage_exit()
    }))
}

fn count_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a non-negative integer");
        usage_exit()
    })
}

fn depth_arg(args: &mut impl Iterator<Item = String>) -> Option<usize> {
    match args.next().as_deref() {
        Some("full") => None,
        Some(v) => match v.parse::<usize>() {
            Ok(d) if d >= 1 => Some(d),
            _ => {
                eprintln!("--depth needs a positive integer or `full`");
                usage_exit()
            }
        },
        None => {
            eprintln!("--depth needs a positive integer or `full`");
            usage_exit()
        }
    }
}

fn main() {
    let mut markdown = false;
    let mut smoke = false;
    let mut trials = 1usize;
    let mut jobs = default_jobs();
    let mut target_ci: Option<f64> = None;
    let mut max_trials: Option<usize> = None;
    let mut dump_traces: Option<PathBuf> = None;
    let mut plots = false;
    let mut json_dir: Option<PathBuf> = None;
    let mut record_dir: Option<PathBuf> = None;
    let mut metrics_dir: Option<PathBuf> = None;
    let mut chrome_trace: Option<PathBuf> = None;
    let mut shards = 0usize;
    let mut shard_threads = 0usize;
    let mut replay_mode = false;
    let mut replay_files: Vec<PathBuf> = Vec::new();
    let mut observer = "validator".to_string();
    let mut check_mode = false;
    let mut check_scenarios: Vec<String> = Vec::new();
    let mut check_opts = amac_bench::check::CheckOptions::default();
    let mut check_fixture: Option<PathBuf> = None;
    let mut selected: Vec<&'static ExperimentSpec> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if check_mode {
            match arg.as_str() {
                "--nodes" => check_opts.nodes = positive_arg(&mut args, "--nodes"),
                "--crashes" => check_opts.crashes = count_arg(&mut args, "--crashes"),
                "--messages" => check_opts.messages = positive_arg(&mut args, "--messages"),
                "--depth" => check_opts.depth = depth_arg(&mut args),
                "--max-schedules" => {
                    check_opts.max_schedules = positive_arg(&mut args, "--max-schedules") as u64;
                }
                "--broken" => check_opts.broken = true,
                "--fixture" => check_fixture = Some(dir_arg(&mut args, "--fixture")),
                "--smoke" => smoke = true,
                "--json" => json_dir = Some(dir_arg(&mut args, "--json")),
                other if !other.starts_with('-') => check_scenarios.push(other.to_string()),
                other => {
                    eprintln!("unknown check argument: {other}");
                    usage_exit()
                }
            }
            continue;
        }
        match arg.as_str() {
            "--markdown" => markdown = true,
            "--smoke" => smoke = true,
            "--trials" => trials = positive_arg(&mut args, "--trials"),
            "--jobs" => jobs = positive_arg(&mut args, "--jobs"),
            "--target-ci" => target_ci = Some(fraction_arg(&mut args, "--target-ci")),
            "--max-trials" => max_trials = Some(positive_arg(&mut args, "--max-trials")),
            "--dump-traces" => dump_traces = Some(dir_arg(&mut args, "--dump-traces")),
            "--plots" => plots = true,
            "--json" => json_dir = Some(dir_arg(&mut args, "--json")),
            "--record" => record_dir = Some(dir_arg(&mut args, "--record")),
            "--metrics" => metrics_dir = Some(dir_arg(&mut args, "--metrics")),
            "--chrome-trace" => chrome_trace = Some(dir_arg(&mut args, "--chrome-trace")),
            "--shards" => shards = count_arg(&mut args, "--shards"),
            "--shard-threads" => shard_threads = count_arg(&mut args, "--shard-threads"),
            "--observer" => {
                observer = args.next().unwrap_or_else(|| {
                    eprintln!(
                        "--observer needs one of: validator, counter, trace, check, metrics, spans"
                    );
                    usage_exit()
                });
                if !matches!(
                    observer.as_str(),
                    "validator" | "counter" | "trace" | "check" | "metrics" | "spans"
                ) {
                    eprintln!("unknown observer: {observer}");
                    usage_exit()
                }
            }
            "--list" => {
                for spec in experiments::registry() {
                    let mode = if spec.deterministic {
                        "deterministic"
                    } else {
                        "stochastic"
                    };
                    println!(
                        "{:<18} {:<7} {} [{mode}]",
                        spec.id, spec.label, spec.summary
                    );
                    println!("{:<18} {:<7} {}", "", "", spec.detail);
                }
                return;
            }
            other if !other.starts_with('-') => {
                if replay_mode {
                    replay_files.push(PathBuf::from(other));
                } else if other == "replay" && selected.is_empty() {
                    replay_mode = true;
                } else if other == "check" && selected.is_empty() {
                    check_mode = true;
                } else {
                    match experiments::find(other) {
                        // Dedup: a repeated id would run twice and overwrite
                        // its own --json/--dump-traces outputs.
                        Some(spec) => {
                            if !selected.iter().any(|s| s.id == spec.id) {
                                selected.push(spec);
                            }
                        }
                        None => {
                            eprintln!("unknown experiment: {other}");
                            usage_exit()
                        }
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage_exit()
            }
        }
    }
    if replay_mode {
        if replay_files.is_empty() {
            eprintln!("replay needs at least one trace FILE");
            usage_exit()
        }
        run_replay(&replay_files, &observer, json_dir.as_deref());
        return;
    }
    if check_mode {
        run_check(
            &check_scenarios,
            &check_opts,
            smoke,
            check_fixture.as_deref(),
            json_dir.as_deref(),
        );
        return;
    }

    let specs: Vec<&'static ExperimentSpec> = if selected.is_empty() {
        experiments::registry().iter().collect()
    } else {
        selected
    };

    if record_dir.is_some() || metrics_dir.is_some() || chrome_trace.is_some() {
        record_canonical(
            &specs,
            smoke,
            shards,
            shard_threads,
            record_dir.as_deref(),
            metrics_dir.as_deref(),
            chrome_trace.as_deref(),
            json_dir.as_deref(),
        );
        return;
    }

    let mut runner = TrialRunner::new(trials, jobs)
        .with_trace_capture(dump_traces.is_some())
        .with_plots(plots)
        .with_shards(shards)
        .with_shard_threads(shard_threads);
    if let Some(frac) = target_ci {
        // Adaptive mode needs headroom above the floor; default the cap to
        // 8x the floor when --max-trials is not given.
        runner = runner
            .with_max_trials(max_trials.unwrap_or(8 * runner.trials()))
            .with_target_ci(frac);
    } else if let Some(max) = max_trials {
        if max > trials {
            eprintln!("--max-trials only has an effect together with --target-ci");
            usage_exit()
        }
    }

    let mode = if smoke { "smoke" } else { "full" };
    let stochastic_detail = if runner.adaptive() {
        format!(
            "{mode}, adaptive {}..{} trials (target ci {:.0}%), {} job(s)",
            runner.trials(),
            runner.max_trials(),
            runner.target_ci().unwrap_or(0.0) * 100.0,
            runner.jobs()
        )
    } else {
        format!(
            "{mode}, {} trial(s), {} job(s)",
            runner.trials(),
            runner.jobs()
        )
    };
    // Deterministic experiments clamp the runner to a single trial (their
    // module-level DETERMINISTIC const); report the effective count.
    let deterministic_detail = format!("{mode}, deterministic: 1 trial");

    let total = specs.len();
    let mut tables = Vec::new();
    let mut captures: Vec<(&'static str, Vec<LabeledOutlier>)> = Vec::new();
    let mut json_docs: Vec<(&'static str, String)> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let detail = if spec.deterministic {
            &deterministic_detail
        } else {
            &stochastic_detail
        };
        eprintln!(
            "[{}/{total}] {:<7}{} ({detail}) ...",
            i + 1,
            spec.label,
            spec.summary
        );
        let started = Instant::now();
        let out = spec.run(smoke, &runner);
        if json_dir.is_some() {
            json_docs.push((
                spec.id,
                amac_bench::json::experiment_json(
                    spec.id,
                    &out.table,
                    &runner,
                    smoke,
                    started.elapsed().as_secs_f64(),
                ),
            ));
        }
        captures.push((spec.label, out.outliers));
        tables.push(out.table);
    }

    for t in &tables {
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            println!("{t}");
        }
    }
    if let Some(dir) = &dump_traces {
        dump_outlier_traces(dir, &captures);
    }
    if let Some(dir) = &json_dir {
        write_json_results(dir, &json_docs);
    }
    eprintln!("done: {} tables ({stochastic_detail})", tables.len());
}

/// Keeps filenames portable: anything outside `[A-Za-z0-9._=-]` becomes `_`.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || "._=-".contains(c) {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes one `BENCH_<id>.json` per experiment under `dir`.
fn write_json_results(dir: &Path, docs: &[(&'static str, String)]) {
    let named: Vec<(String, String)> = docs
        .iter()
        .map(|(id, doc)| (format!("BENCH_{}.json", sanitize(id)), doc.clone()))
        .collect();
    write_named_json(dir, &named);
}

/// Writes pre-named JSON documents under `dir`.
fn write_named_json(dir: &Path, docs: &[(String, String)]) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    for (name, doc) in docs {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    eprintln!(
        "wrote {} machine-readable result file(s) to {}",
        docs.len(),
        dir.display()
    );
}

/// `--record DIR` / `--metrics DIR` / `--chrome-trace FILE`: runs each
/// selected experiment's canonical fixed-seed execution once with the
/// requested observers attached (`amac_bench::record`). Recording prints
/// the live run's summary — the exact block a later `repro replay` must
/// reproduce; metrics land as `METRICS_<id>.json` under the metrics
/// directory; the chrome trace is written by the harness as the run
/// finishes.
#[allow(clippy::too_many_arguments)]
fn record_canonical(
    specs: &[&'static ExperimentSpec],
    smoke: bool,
    shards: usize,
    shard_threads: usize,
    record_dir: Option<&Path>,
    metrics_dir: Option<&Path>,
    chrome_trace: Option<&Path>,
    json_dir: Option<&Path>,
) {
    if chrome_trace.is_some() && specs.len() != 1 {
        eprintln!("--chrome-trace needs exactly one experiment (later runs would overwrite it)");
        usage_exit()
    }
    for dir in [record_dir, metrics_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let mut json_docs: Vec<(String, String)> = Vec::new();
    let mut metrics_docs: Vec<(String, String)> = Vec::new();
    for spec in specs {
        let started = Instant::now();
        let opts = amac_bench::CanonicalOpts {
            smoke,
            shards,
            shard_threads,
            record: record_dir.map(Path::to_path_buf),
            metrics: metrics_dir.is_some(),
            chrome_trace: chrome_trace.map(Path::to_path_buf),
        };
        let run = spec.canonical(&opts);
        if let Some(recorded) = &run.trace {
            println!("recorded {}", recorded.path.display());
            println!("{}", recorded.summary);
            if json_dir.is_some() {
                json_docs.push((
                    format!("TRACE_{}.json", sanitize(spec.id)),
                    amac_bench::json::trace_json(
                        "record",
                        &recorded.path.display().to_string(),
                        &recorded.summary,
                        started.elapsed().as_secs_f64(),
                    ),
                ));
            }
        }
        if let Some(report) = &run.metrics {
            metrics_docs.push((
                format!("METRICS_{}.json", sanitize(spec.id)),
                report.to_json(spec.id),
            ));
        }
        if let Some(path) = chrome_trace {
            println!("chrome trace {}", path.display());
        }
    }
    if let Some(out) = metrics_dir {
        write_named_json(out, &metrics_docs);
    }
    if let Some(out) = json_dir {
        write_named_json(out, &json_docs);
    }
    if let Some(dir) = record_dir {
        eprintln!(
            "recorded {} canonical trace(s) to {}",
            specs.len(),
            dir.display()
        );
    }
}

/// `check [SCENARIO ...]`: bounded exhaustive exploration via
/// `amac-check`. Certified scenarios are expected clean and (without a
/// schedule cap cut-off) exhausted; `--broken` inverts the expectation —
/// the run must find, shrink, and (with `--fixture`) persist a
/// counterexample. Any unexpected verdict exits 1 so CI can gate on it.
fn run_check(
    scenarios: &[String],
    opts: &amac_bench::check::CheckOptions,
    smoke: bool,
    fixture: Option<&Path>,
    json_dir: Option<&Path>,
) {
    use amac_bench::check;
    if smoke {
        let cases = check::smoke_suite();
        let mut failed = 0usize;
        for case in &cases {
            println!("[{}] {}", if case.ok { "ok" } else { "FAIL" }, case.label);
            print!("{}", check::render(&case.report, &case.opts));
            if !case.ok {
                failed += 1;
            }
        }
        eprintln!(
            "check smoke: {}/{} cases ok",
            cases.len() - failed,
            cases.len()
        );
        if failed > 0 {
            std::process::exit(1);
        }
        return;
    }

    let ids: Vec<String> = if scenarios.is_empty() {
        check::SCENARIOS.iter().map(|s| (*s).to_string()).collect()
    } else {
        scenarios.to_vec()
    };
    if fixture.is_some() && ids.len() > 1 {
        eprintln!("--fixture needs exactly one scenario (later runs would overwrite the file)");
        usage_exit()
    }
    let mut json_docs: Vec<(String, String)> = Vec::new();
    let mut unexpected = 0usize;
    for id in &ids {
        let started = Instant::now();
        let Some(report) = check::run(id, opts, fixture) else {
            eprintln!(
                "unknown check scenario `{id}` (or unsupported: --broken applies to consensus only)"
            );
            usage_exit()
        };
        print!("{}", check::render(&report, opts));
        let ok = if opts.broken {
            report.counterexample.is_some()
        } else {
            report.is_clean()
        };
        if !ok {
            unexpected += 1;
        }
        if json_dir.is_some() {
            json_docs.push((
                format!("CHECK_{}.json", sanitize(id)),
                amac_bench::json::check_json(&report, opts, started.elapsed().as_secs_f64()),
            ));
        }
    }
    if let Some(out) = json_dir {
        write_named_json(out, &json_docs);
    }
    if unexpected > 0 {
        eprintln!("{unexpected} scenario(s) ended with an unexpected verdict");
        std::process::exit(1);
    }
}

fn replay_fail(path: &Path, e: amac_store::StoreError) -> ! {
    eprintln!("cannot replay {}: {e}", path.display());
    std::process::exit(1);
}

/// `replay FILE...`: re-reads stored traces and feeds them to the chosen
/// observer. Corrupt or truncated files abort with exit code 1; recorded
/// *violations* do not (inspecting them is what replay is for — the count
/// is reported on stderr instead).
fn run_replay(files: &[PathBuf], observer: &str, json_dir: Option<&Path>) {
    let mut json_docs: Vec<(String, String)> = Vec::new();
    let mut invalid = 0usize;
    for path in files {
        let started = Instant::now();
        let mut reader = match TraceReader::open(path) {
            Ok(r) => r,
            Err(e) => replay_fail(path, e),
        };
        // The metrics/spans observers print a machine-readable JSON
        // document; keep stdout clean so it can be redirected to a file.
        if !matches!(observer, "metrics" | "spans") {
            println!("replayed {}", path.display());
        }
        match observer {
            "validator" => match replay_validate(reader) {
                Ok(summary) => {
                    println!("{summary}");
                    if !summary.validation.is_ok() {
                        invalid += 1;
                    }
                    if json_dir.is_some() {
                        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
                        json_docs.push((
                            format!("REPLAY_{}.json", sanitize(stem)),
                            amac_bench::json::trace_json(
                                "replay",
                                &path.display().to_string(),
                                &summary,
                                started.elapsed().as_secs_f64(),
                            ),
                        ));
                    }
                }
                Err(e) => replay_fail(path, e),
            },
            "counter" => {
                let header = *reader.header();
                let mut counter = CounterObserver::new();
                match replay_into(&mut reader, &mut counter) {
                    Ok(trailer) => {
                        println!("  header: {header}");
                        println!(
                            "  counts: bcast={} rcv={} ack={} abort={} faults={}",
                            counter.count(TraceKind::Bcast),
                            counter.count(TraceKind::Rcv),
                            counter.count(TraceKind::Ack),
                            counter.count(TraceKind::Abort),
                            counter.faults()
                        );
                        println!("  quiescent: {}", trailer.quiescent);
                    }
                    Err(e) => replay_fail(path, e),
                }
            }
            "trace" => {
                let header = *reader.header();
                let mut tracer = TraceObserver::new();
                match replay_into(&mut reader, &mut tracer) {
                    Ok(trailer) => {
                        println!("  header: {header}");
                        println!("  quiescent: {}", trailer.quiescent);
                        println!("{}", tracer.into_trace());
                    }
                    Err(e) => replay_fail(path, e),
                }
            }
            // Deterministic sim-time metrics rebuilt from the stored
            // stream alone: the header carries F_prog/F_ack, so the
            // latency/slack histograms come out exactly as a live
            // `--metrics` run of the same execution would produce them.
            "metrics" => {
                let header = *reader.header();
                let mut metrics = amac_obs::MetricsObserver::new(header.config());
                match replay_into(&mut reader, &mut metrics) {
                    Ok(_trailer) => {
                        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
                        let doc = metrics.into_report().to_json(stem);
                        print!("{doc}");
                        if json_dir.is_some() {
                            json_docs.push((format!("METRICS_{}.json", sanitize(stem)), doc));
                        }
                    }
                    Err(e) => replay_fail(path, e),
                }
            }
            // Span timeline rebuilt from the stored stream: prints the
            // Perfetto-loadable Chrome trace-event JSON (redirect or use
            // --json to capture it as a file).
            "spans" => {
                let mut spans = amac_obs::SpanObserver::new();
                match replay_into(&mut reader, &mut spans) {
                    Ok(_trailer) => {
                        let doc = spans.to_chrome_json();
                        print!("{doc}");
                        if json_dir.is_some() {
                            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
                            json_docs.push((format!("SPANS_{}.json", sanitize(stem)), doc));
                        }
                    }
                    Err(e) => replay_fail(path, e),
                }
            }
            // Counterexample fixtures: MAC conformance plus the consensus
            // disagreement reconstructed from the stored stream alone.
            "check" => {
                drop(reader);
                match amac_check::check_fixture(path) {
                    Ok(check) => {
                        println!("  mac violations: {}", check.mac_violations);
                        match &check.estimate_verdict {
                            Some(v) => println!("  reconstructed consensus: VIOLATION — {v}"),
                            None => println!("  reconstructed consensus: agreement holds"),
                        }
                        if !check.is_clean() {
                            invalid += 1;
                        }
                    }
                    Err(e) => replay_fail(path, e),
                }
            }
            other => {
                eprintln!("unknown observer: {other}");
                usage_exit()
            }
        }
    }
    if let Some(out) = json_dir {
        write_named_json(out, &json_docs);
    }
    eprintln!(
        "replayed {} trace(s) ({})",
        files.len(),
        if observer == "check" {
            format!("observer: check, {invalid} with violations")
        } else if observer != "validator" {
            format!("observer: {observer}")
        } else if invalid == 0 {
            "all validated ok".to_string()
        } else {
            format!("{invalid} with violations")
        }
    );
}

/// Writes one annotated trace file per captured outlier and prints a
/// validation summary: the post-mortem record of each sweep point's
/// min/median/max execution.
fn dump_outlier_traces(dir: &Path, captures: &[(&'static str, Vec<LabeledOutlier>)]) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let mut written = 0usize;
    let mut invalid = 0usize;
    for (experiment, outliers) in captures {
        for o in outliers {
            let name = format!(
                "{experiment}_{}_{}_trial{}.txt",
                sanitize(&o.label),
                o.outlier.role,
                o.outlier.trial
            );
            let verdict = match &o.outlier.validation {
                Some(v) => {
                    if !v.is_ok() {
                        invalid += 1;
                    }
                    v.to_string()
                }
                None => "not validated".to_string(),
            };
            let body = format!(
                "experiment: {experiment}\npoint: {}\nrole: {}\ntrial: {}\nmeasured: {}\nevents: {}\nlast event at: t={}\nvalidation: {verdict}\n\n{}",
                o.label,
                o.outlier.role,
                o.outlier.trial,
                o.outlier.value,
                o.outlier.trace.len(),
                o.outlier
                    .trace
                    .last_time()
                    .map(|t| t.ticks().to_string())
                    .unwrap_or_else(|| "-".to_string()),
                o.outlier.trace
            );
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            written += 1;
        }
    }
    eprintln!(
        "dumped {written} outlier trace(s) to {} ({})",
        dir.display(),
        if invalid == 0 {
            "all validated ok".to_string()
        } else {
            format!("{invalid} with violations")
        }
    );
}
