//! `repro` — regenerate every table and figure of the paper in one run.
//!
//! Prints each experiment's table to stdout (plain text) and, with
//! `--markdown`, emits the EXPERIMENTS.md dataset instead. With `--smoke`,
//! runs every experiment at a tiny, seconds-scale parameterisation — the
//! same code paths as the full run — so CI can verify that Figure 1
//! regeneration still works without paying for the full sweeps.
//!
//! `--trials N` runs `N` independent trials per experiment (tables then
//! report mean ± 95% CI per sweep point) and `--jobs J` fans `(sweep
//! point, trial)` cells over `J` worker threads (default: one per core).
//! `--target-ci FRAC` switches to adaptive precision: each sweep point
//! stops recruiting trials once its 95% CI half-width falls below `FRAC`
//! of its mean (floor `--trials`, cap `--max-trials`, default `8×trials`).
//! `--dump-traces DIR` re-runs the min/median/max trial of every sweep
//! point with MAC-trace recording, re-validates those executions, and
//! writes one annotated trace file per outlier under `DIR`.
//!
//! Output is **byte-identical for any `J`** — including adaptive trial
//! counts: trial `i` is seeded by `SimRng::split(i)`, aggregates fold in
//! `(point, trial)` order, and adaptive stop decisions happen at fixed
//! batch boundaries.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p amac-bench --bin repro            # text tables
//! cargo run --release -p amac-bench --bin repro -- --markdown > EXPERIMENTS.data.md
//! cargo run --release -p amac-bench --bin repro -- --smoke  # CI fast path
//! cargo run --release -p amac-bench --bin repro -- --trials 32 --jobs 8
//! cargo run --release -p amac-bench --bin repro -- --trials 8 --target-ci 0.05 --max-trials 128
//! cargo run --release -p amac-bench --bin repro -- --trials 8 --dump-traces traces/
//! ```

use amac_bench::engine::{default_jobs, TrialRunner};
use amac_bench::experiments::{self, LabeledOutlier};
use std::path::{Path, PathBuf};

fn usage_exit() -> ! {
    eprintln!(
        "usage: repro [--markdown] [--smoke] [--trials N] [--jobs J] \
         [--target-ci FRAC] [--max-trials M] [--dump-traces DIR]"
    );
    std::process::exit(2);
}

fn positive_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    args.next()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a positive integer");
            usage_exit()
        })
}

fn fraction_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> f64 {
    args.next()
        .and_then(|v| v.parse().ok())
        .filter(|&f: &f64| f > 0.0 && f < 1.0)
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a fraction in (0, 1), e.g. 0.05");
            usage_exit()
        })
}

fn main() {
    let mut markdown = false;
    let mut smoke = false;
    let mut trials = 1usize;
    let mut jobs = default_jobs();
    let mut target_ci: Option<f64> = None;
    let mut max_trials: Option<usize> = None;
    let mut dump_traces: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--markdown" => markdown = true,
            "--smoke" => smoke = true,
            "--trials" => trials = positive_arg(&mut args, "--trials"),
            "--jobs" => jobs = positive_arg(&mut args, "--jobs"),
            "--target-ci" => target_ci = Some(fraction_arg(&mut args, "--target-ci")),
            "--max-trials" => max_trials = Some(positive_arg(&mut args, "--max-trials")),
            "--dump-traces" => {
                dump_traces = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--dump-traces needs a directory");
                    usage_exit()
                })))
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage_exit()
            }
        }
    }
    let mut runner = TrialRunner::new(trials, jobs).with_trace_capture(dump_traces.is_some());
    if let Some(frac) = target_ci {
        // Adaptive mode needs headroom above the floor; default the cap to
        // 8x the floor when --max-trials is not given.
        runner = runner
            .with_max_trials(max_trials.unwrap_or(8 * runner.trials()))
            .with_target_ci(frac);
    } else if let Some(max) = max_trials {
        if max > trials {
            eprintln!("--max-trials only has an effect together with --target-ci");
            usage_exit()
        }
    }

    let mode = if smoke { "smoke" } else { "full" };
    let stochastic_detail = if runner.adaptive() {
        format!(
            "{mode}, adaptive {}..{} trials (target ci {:.0}%), {} job(s)",
            runner.trials(),
            runner.max_trials(),
            runner.target_ci().unwrap_or(0.0) * 100.0,
            runner.jobs()
        )
    } else {
        format!(
            "{mode}, {} trial(s), {} job(s)",
            runner.trials(),
            runner.jobs()
        )
    };
    // Deterministic experiments clamp the runner to a single trial (their
    // module-level DETERMINISTIC const); report the effective count.
    let deterministic_detail = format!("{mode}, deterministic: 1 trial");
    let detail_for = |deterministic: bool| {
        if deterministic {
            &deterministic_detail
        } else {
            &stochastic_detail
        }
    };
    let detail = &stochastic_detail;
    let mut tables = Vec::new();
    let mut captures: Vec<(&'static str, Vec<LabeledOutlier>)> = Vec::new();

    eprintln!(
        "[1/7] F1-GG    standard model, G' = G ({}) ...",
        detail_for(experiments::fig1_gg::DETERMINISTIC)
    );
    {
        let res = pick(
            smoke,
            &runner,
            experiments::fig1_gg::run_smoke_with,
            experiments::fig1_gg::run_default_with,
        );
        captures.push(("F1-GG", res.outliers));
        tables.push(res.table);
    }
    eprintln!("[2/7] F1-RR    standard model, r-restricted G' ({detail}) ...");
    {
        let res = pick(
            smoke,
            &runner,
            experiments::fig1_r_restricted::run_smoke_with,
            experiments::fig1_r_restricted::run_default_with,
        );
        captures.push(("F1-RR", res.outliers));
        tables.push(res.table);
    }
    eprintln!(
        "[3/7] F1-ARB   standard model, arbitrary G' ({}) ...",
        detail_for(experiments::fig1_arbitrary::DETERMINISTIC)
    );
    {
        let res = pick(
            smoke,
            &runner,
            experiments::fig1_arbitrary::run_smoke_with,
            experiments::fig1_arbitrary::run_default_with,
        );
        captures.push(("F1-ARB", res.outliers));
        tables.push(res.table);
    }
    eprintln!(
        "[4/7] LB       lower bounds (Lemma 3.18 + Figure 2) ({}) ...",
        detail_for(experiments::lower_bounds::DETERMINISTIC)
    );
    {
        let res = pick(
            smoke,
            &runner,
            experiments::lower_bounds::run_smoke_with,
            experiments::lower_bounds::run_default_with,
        );
        captures.push(("LB", res.outliers));
        tables.push(res.table);
    }
    eprintln!("[5/7] F1-ENH   enhanced model, FMMB vs BMMB ({detail}) ...");
    {
        let res = pick(
            smoke,
            &runner,
            experiments::fig1_fmmb::run_smoke_with,
            experiments::fig1_fmmb::run_default_with,
        );
        captures.push(("F1-ENH", res.outliers));
        tables.push(res.table);
    }
    eprintln!("[6/7] SUB-*    FMMB subroutines ({detail}) ...");
    {
        let res = pick(
            smoke,
            &runner,
            experiments::subroutines::run_smoke_with,
            experiments::subroutines::run_default_with,
        );
        captures.push(("SUB", res.outliers));
        tables.push(res.table);
    }
    eprintln!("[7/7] ABL      abort-interface ablation ({detail}) ...");
    {
        let res = pick(
            smoke,
            &runner,
            experiments::ablation_abort::run_smoke_with,
            experiments::ablation_abort::run_default_with,
        );
        captures.push(("ABL", res.outliers));
        tables.push(res.table);
    }

    for t in &tables {
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            println!("{t}");
        }
    }
    if let Some(dir) = &dump_traces {
        dump_outlier_traces(dir, &captures);
    }
    eprintln!("done: {} tables ({detail})", tables.len());
}

fn pick<R>(
    smoke: bool,
    runner: &TrialRunner,
    fast: impl FnOnce(&TrialRunner) -> R,
    full: impl FnOnce(&TrialRunner) -> R,
) -> R {
    if smoke {
        fast(runner)
    } else {
        full(runner)
    }
}

/// Keeps filenames portable: anything outside `[A-Za-z0-9._=-]` becomes `_`.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || "._=-".contains(c) {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes one annotated trace file per captured outlier and prints a
/// validation summary: the post-mortem record of each sweep point's
/// min/median/max execution.
fn dump_outlier_traces(dir: &Path, captures: &[(&'static str, Vec<LabeledOutlier>)]) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let mut written = 0usize;
    let mut invalid = 0usize;
    for (experiment, outliers) in captures {
        for o in outliers {
            let name = format!(
                "{experiment}_{}_{}_trial{}.txt",
                sanitize(&o.label),
                o.outlier.role,
                o.outlier.trial
            );
            let verdict = match &o.outlier.validation {
                Some(v) => {
                    if !v.is_ok() {
                        invalid += 1;
                    }
                    v.to_string()
                }
                None => "not validated".to_string(),
            };
            let body = format!(
                "experiment: {experiment}\npoint: {}\nrole: {}\ntrial: {}\nmeasured: {}\nevents: {}\nlast event at: t={}\nvalidation: {verdict}\n\n{}",
                o.label,
                o.outlier.role,
                o.outlier.trial,
                o.outlier.value,
                o.outlier.trace.len(),
                o.outlier
                    .trace
                    .last_time()
                    .map(|t| t.ticks().to_string())
                    .unwrap_or_else(|| "-".to_string()),
                o.outlier.trace
            );
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            written += 1;
        }
    }
    eprintln!(
        "dumped {written} outlier trace(s) to {} ({})",
        dir.display(),
        if invalid == 0 {
            "all validated ok".to_string()
        } else {
            format!("{invalid} with violations")
        }
    );
}
