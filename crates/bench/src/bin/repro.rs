//! `repro` — regenerate every table and figure of the paper in one run.
//!
//! Prints each experiment's table to stdout (plain text) and, with
//! `--markdown`, emits the EXPERIMENTS.md dataset instead.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p amac-bench --bin repro            # text tables
//! cargo run --release -p amac-bench --bin repro -- --markdown > EXPERIMENTS.data.md
//! ```

use amac_bench::experiments;

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    let mut tables = Vec::new();

    eprintln!("[1/7] F1-GG    standard model, G' = G ...");
    tables.push(experiments::fig1_gg::run_default().table);
    eprintln!("[2/7] F1-RR    standard model, r-restricted G' ...");
    tables.push(experiments::fig1_r_restricted::run_default().table);
    eprintln!("[3/7] F1-ARB   standard model, arbitrary G' ...");
    tables.push(experiments::fig1_arbitrary::run_default().table);
    eprintln!("[4/7] LB       lower bounds (Lemma 3.18 + Figure 2) ...");
    tables.push(experiments::lower_bounds::run_default().table);
    eprintln!("[5/7] F1-ENH   enhanced model, FMMB vs BMMB ...");
    tables.push(experiments::fig1_fmmb::run_default().table);
    eprintln!("[6/7] SUB-*    FMMB subroutines ...");
    tables.push(experiments::subroutines::run_default().table);
    eprintln!("[7/7] ABL      abort-interface ablation ...");
    tables.push(experiments::ablation_abort::run_default().table);

    for t in &tables {
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            println!("{t}");
        }
    }
    eprintln!("done: {} tables", tables.len());
}
