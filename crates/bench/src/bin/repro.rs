//! `repro` — regenerate every table and figure of the paper in one run.
//!
//! Prints each experiment's table to stdout (plain text) and, with
//! `--markdown`, emits the EXPERIMENTS.md dataset instead. With `--smoke`,
//! runs every experiment at a tiny, seconds-scale parameterisation — the
//! same code paths as the full run — so CI can verify that Figure 1
//! regeneration still works without paying for the full sweeps.
//!
//! `--trials N` runs `N` independent trials per experiment (tables then
//! report mean ± 95% CI per sweep point) and `--jobs J` fans the trials
//! over `J` worker threads (default: one per core). Output is
//! **byte-identical for any `J`**: trial `i` is seeded by
//! `SimRng::split(i)` and aggregates fold in trial order.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p amac-bench --bin repro            # text tables
//! cargo run --release -p amac-bench --bin repro -- --markdown > EXPERIMENTS.data.md
//! cargo run --release -p amac-bench --bin repro -- --smoke  # CI fast path
//! cargo run --release -p amac-bench --bin repro -- --trials 32 --jobs 8
//! ```

use amac_bench::engine::{default_jobs, TrialRunner};
use amac_bench::experiments;

fn usage_exit() -> ! {
    eprintln!("usage: repro [--markdown] [--smoke] [--trials N] [--jobs J]");
    std::process::exit(2);
}

fn positive_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    args.next()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a positive integer");
            usage_exit()
        })
}

fn main() {
    let mut markdown = false;
    let mut smoke = false;
    let mut trials = 1usize;
    let mut jobs = default_jobs();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--markdown" => markdown = true,
            "--smoke" => smoke = true,
            "--trials" => trials = positive_arg(&mut args, "--trials"),
            "--jobs" => jobs = positive_arg(&mut args, "--jobs"),
            other => {
                eprintln!("unknown argument: {other}");
                usage_exit()
            }
        }
    }
    let runner = TrialRunner::new(trials, jobs);

    let mode = if smoke { "smoke" } else { "full" };
    let stochastic_detail = format!(
        "{mode}, {} trial(s), {} job(s)",
        runner.trials(),
        runner.jobs()
    );
    // Deterministic experiments clamp the runner to a single trial (their
    // module-level DETERMINISTIC const); report the effective count.
    let deterministic_detail = format!("{mode}, deterministic: 1 trial");
    let detail_for = |deterministic: bool| {
        if deterministic {
            &deterministic_detail
        } else {
            &stochastic_detail
        }
    };
    let detail = &stochastic_detail;
    let mut tables = Vec::new();

    eprintln!(
        "[1/7] F1-GG    standard model, G' = G ({}) ...",
        detail_for(experiments::fig1_gg::DETERMINISTIC)
    );
    tables.push(
        pick(
            smoke,
            &runner,
            experiments::fig1_gg::run_smoke_with,
            experiments::fig1_gg::run_default_with,
        )
        .table,
    );
    eprintln!("[2/7] F1-RR    standard model, r-restricted G' ({detail}) ...");
    tables.push(
        pick(
            smoke,
            &runner,
            experiments::fig1_r_restricted::run_smoke_with,
            experiments::fig1_r_restricted::run_default_with,
        )
        .table,
    );
    eprintln!(
        "[3/7] F1-ARB   standard model, arbitrary G' ({}) ...",
        detail_for(experiments::fig1_arbitrary::DETERMINISTIC)
    );
    tables.push(
        pick(
            smoke,
            &runner,
            experiments::fig1_arbitrary::run_smoke_with,
            experiments::fig1_arbitrary::run_default_with,
        )
        .table,
    );
    eprintln!(
        "[4/7] LB       lower bounds (Lemma 3.18 + Figure 2) ({}) ...",
        detail_for(experiments::lower_bounds::DETERMINISTIC)
    );
    tables.push(
        pick(
            smoke,
            &runner,
            experiments::lower_bounds::run_smoke_with,
            experiments::lower_bounds::run_default_with,
        )
        .table,
    );
    eprintln!("[5/7] F1-ENH   enhanced model, FMMB vs BMMB ({detail}) ...");
    tables.push(
        pick(
            smoke,
            &runner,
            experiments::fig1_fmmb::run_smoke_with,
            experiments::fig1_fmmb::run_default_with,
        )
        .table,
    );
    eprintln!("[6/7] SUB-*    FMMB subroutines ({detail}) ...");
    tables.push(
        pick(
            smoke,
            &runner,
            experiments::subroutines::run_smoke_with,
            experiments::subroutines::run_default_with,
        )
        .table,
    );
    eprintln!("[7/7] ABL      abort-interface ablation ({detail}) ...");
    tables.push(
        pick(
            smoke,
            &runner,
            experiments::ablation_abort::run_smoke_with,
            experiments::ablation_abort::run_default_with,
        )
        .table,
    );

    for t in &tables {
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            println!("{t}");
        }
    }
    eprintln!("done: {} tables ({detail})", tables.len());
}

fn pick<R>(
    smoke: bool,
    runner: &TrialRunner,
    fast: impl FnOnce(&TrialRunner) -> R,
    full: impl FnOnce(&TrialRunner) -> R,
) -> R {
    if smoke {
        fast(runner)
    } else {
        full(runner)
    }
}
