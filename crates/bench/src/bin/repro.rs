//! `repro` — regenerate every table and figure of the paper in one run.
//!
//! Prints each experiment's table to stdout (plain text) and, with
//! `--markdown`, emits the EXPERIMENTS.md dataset instead. With `--smoke`,
//! runs every experiment at a tiny, seconds-scale parameterisation — the
//! same code paths as the full run — so CI can verify that Figure 1
//! regeneration still works without paying for the full sweeps.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p amac-bench --bin repro            # text tables
//! cargo run --release -p amac-bench --bin repro -- --markdown > EXPERIMENTS.data.md
//! cargo run --release -p amac-bench --bin repro -- --smoke  # CI fast path
//! ```

use amac_bench::experiments;

fn main() {
    let mut markdown = false;
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--markdown" => markdown = true,
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: repro [--markdown] [--smoke]");
                std::process::exit(2);
            }
        }
    }

    let mode = if smoke { "smoke" } else { "full" };
    let mut tables = Vec::new();

    eprintln!("[1/7] F1-GG    standard model, G' = G ({mode}) ...");
    tables.push(
        pick(
            smoke,
            experiments::fig1_gg::run_smoke,
            experiments::fig1_gg::run_default,
        )
        .table,
    );
    eprintln!("[2/7] F1-RR    standard model, r-restricted G' ({mode}) ...");
    tables.push(
        pick(
            smoke,
            experiments::fig1_r_restricted::run_smoke,
            experiments::fig1_r_restricted::run_default,
        )
        .table,
    );
    eprintln!("[3/7] F1-ARB   standard model, arbitrary G' ({mode}) ...");
    tables.push(
        pick(
            smoke,
            experiments::fig1_arbitrary::run_smoke,
            experiments::fig1_arbitrary::run_default,
        )
        .table,
    );
    eprintln!("[4/7] LB       lower bounds (Lemma 3.18 + Figure 2) ({mode}) ...");
    tables.push(
        pick(
            smoke,
            experiments::lower_bounds::run_smoke,
            experiments::lower_bounds::run_default,
        )
        .table,
    );
    eprintln!("[5/7] F1-ENH   enhanced model, FMMB vs BMMB ({mode}) ...");
    tables.push(
        pick(
            smoke,
            experiments::fig1_fmmb::run_smoke,
            experiments::fig1_fmmb::run_default,
        )
        .table,
    );
    eprintln!("[6/7] SUB-*    FMMB subroutines ({mode}) ...");
    tables.push(
        pick(
            smoke,
            experiments::subroutines::run_smoke,
            experiments::subroutines::run_default,
        )
        .table,
    );
    eprintln!("[7/7] ABL      abort-interface ablation ({mode}) ...");
    tables.push(
        pick(
            smoke,
            experiments::ablation_abort::run_smoke,
            experiments::ablation_abort::run_default,
        )
        .table,
    );

    for t in &tables {
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            println!("{t}");
        }
    }
    eprintln!("done: {} tables ({mode})", tables.len());
}

fn pick<R>(smoke: bool, fast: impl FnOnce() -> R, full: impl FnOnce() -> R) -> R {
    if smoke {
        fast()
    } else {
        full()
    }
}
