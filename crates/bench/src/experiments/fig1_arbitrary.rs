//! `F1-ARB` — Figure 1, standard model, arbitrary `G′`:
//! BMMB completes in `O((D + k)·F_ack)` (Theorem 3.1).
//!
//! The workload is a line `G` augmented with long-range unreliable
//! shortcuts (unreliability *covering distance in `G`*, which the paper's
//! discussion identifies as the harmful structure). The sweep verifies the
//! Theorem 3.1 upper bound and contrasts three per-hop slopes: `G′ = G`
//! (`Θ(F_prog)`), random shortcuts under the generic lazy scheduler, and
//! the crafted Figure 2 adversary (`Θ(F_ack)`).
//!
//! **Reproduction finding**: random long-range unreliability under a
//! generic worst-case scheduler does *not* slow BMMB below the reliable
//! case — every delivered message is useful MMB payload. Attaining the
//! `Θ((D+k)·F_ack)` regime requires the paper's carefully crafted
//! schedule (Section 3.3), underscoring that the lower bound is about the
//! *structure* of unreliability, not its quantity.

use super::{LabeledOutlier, SweepPoint};
use crate::engine::{CellResult, TrialRunner};
use crate::fit::{proportional_fit, ProportionalFit};
use crate::table::{ci_cell, mean_cell, Table};
use amac_core::{bounds, run_bmmb, Assignment, MmbReport, RunOptions};
use amac_graph::{generators, NodeId};
use amac_mac::policies::LazyPolicy;
use amac_mac::MacConfig;

/// Results of the `F1-ARB` experiment.
#[derive(Clone, Debug)]
pub struct Fig1Arbitrary {
    /// Sweep of `D` at fixed `k` (measured vs `(D+k)·F_ack`).
    pub d_sweep: Vec<SweepPoint>,
    /// Sweep of `k` at fixed `D`.
    pub k_sweep: Vec<SweepPoint>,
    /// Proportional fit of measured vs the Theorem 3.1 bound.
    pub bound_fit: ProportionalFit,
    /// Slope of completion time vs `D` on the pure-line baseline (no
    /// unreliable edges), for contrast — `Θ(F_prog)` per hop.
    pub reliable_d_slope: f64,
    /// Slope of completion time vs `D` with random long-range unreliable
    /// edges under the generic lazy scheduler (a reproduction finding:
    /// random unreliability does not by itself slow BMMB — any delivered
    /// message is useful payload).
    pub arbitrary_d_slope: f64,
    /// Slope of completion time vs `D` under the crafted Figure 2
    /// adversary — `Θ(F_ack)` per hop, realizing the worst case.
    pub adversarial_d_slope: f64,
    /// Captured outlier traces per sweep point (empty unless the runner
    /// has trace capture enabled).
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table.
    pub table: Table,
}

/// This workload (evenly spaced shortcuts, lazy scheduler, Fig 2
/// adversary) has no randomness: [`run`] clamps the runner to a single
/// trial. Flip this (and drop the clamp) if the experiment ever gains
/// per-trial sampling; `repro` derives its progress labels from it.
pub const DETERMINISTIC: bool = true;

fn measure(
    d: usize,
    k: usize,
    config: MacConfig,
    shortcuts: usize,
    options: &RunOptions,
) -> MmbReport {
    let g = generators::line(d + 1).expect("d >= 1");
    let dual = generators::long_range_augment(g, shortcuts).expect("valid augment");
    let assignment = Assignment::all_at(NodeId::new(0), k);
    run_bmmb(
        &dual,
        config,
        &assignment,
        LazyPolicy::new().prefer_duplicates(),
        options,
    )
}

/// Runs the experiment: `shortcut_fraction` of `D` long-range unreliable
/// edges are added to each line. The workload (evenly spaced shortcuts,
/// lazy scheduler) is deterministic, so the runner is clamped to a single
/// trial; the sweep points fan out over the worker pool as cells.
pub fn run(
    config: MacConfig,
    ds: &[usize],
    fixed_k: usize,
    ks: &[usize],
    fixed_d: usize,
    shortcut_fraction: f64,
    runner: &TrialRunner,
) -> Fig1Arbitrary {
    let runner = if DETERMINISTIC {
        runner.deterministic()
    } else {
        *runner
    };
    let shortcuts = |d: usize| ((d as f64 * shortcut_fraction).ceil() as usize).max(1);
    let point_params = |point: usize| {
        if point < ds.len() {
            (ds[point], fixed_k)
        } else {
            (fixed_d, ks[point - ds.len()])
        }
    };
    let widths = vec![1usize; ds.len() + ks.len()];
    let shards = runner.shards();
    let shard_threads = runner.effective_shard_threads();
    let run = runner.run_sweep(
        0,
        &widths,
        |_trial| (),
        |_, cell| {
            let (d, k) = point_params(cell.point);
            let report = measure(
                d,
                k,
                config,
                shortcuts(d),
                &super::cell_options(cell.capture_requested(), shards, shard_threads),
            );
            CellResult::scalar(report.completion_ticks() as f64)
                .with_capture(super::mmb_capture(&report))
                .with_shard_stats(report.shard_stats.clone())
        },
    );
    let label = |i: usize| {
        let (d, k) = point_params(i);
        if i < ds.len() {
            format!("D={d}")
        } else {
            format!("k={k}")
        }
    };
    let outliers = super::collect_outliers(&run, label);
    let (d_points, k_points) = run.points().split_at(ds.len());
    let d_sweep: Vec<SweepPoint> = ds
        .iter()
        .zip(d_points)
        .map(|(&d, p)| {
            SweepPoint::from_aggregate(
                d,
                p.primary(),
                bounds::bmmb_arbitrary(d, fixed_k, &config).ticks(),
            )
        })
        .collect();
    let k_sweep: Vec<SweepPoint> = ks
        .iter()
        .zip(k_points)
        .map(|(&k, p)| {
            SweepPoint::from_aggregate(
                k,
                p.primary(),
                bounds::bmmb_arbitrary(fixed_d, k, &config).ticks(),
            )
        })
        .collect();
    let bound_fit = proportional_fit(
        &d_sweep
            .iter()
            .chain(&k_sweep)
            .map(SweepPoint::as_fit_point)
            .collect::<Vec<_>>(),
    );

    // Slope contrast. Three per-hop slopes over the same D values:
    //  * reliable-only line (`G' = G`): Θ(F_prog) per hop;
    //  * line + random long-range shortcuts under the generic lazy
    //    scheduler: *not* slower — a reproduction finding: every delivered
    //    message is useful MMB payload, so random unreliability cannot by
    //    itself realize the worst case;
    //  * the crafted Figure 2 adversary (amac-lower): Θ(F_ack) per hop —
    //    the structure that actually attains the Θ((D+k)·F_ack) regime.
    let arbitrary_d_slope = crate::fit::linear_fit(
        &d_sweep
            .iter()
            .map(SweepPoint::as_param_point)
            .collect::<Vec<_>>(),
    )
    .slope;
    let reliable_d_slope = {
        let pts: Vec<(f64, f64)> = ds
            .iter()
            .map(|&d| {
                let dual = amac_graph::DualGraph::reliable(generators::line(d + 1).unwrap());
                let report = run_bmmb(
                    &dual,
                    config,
                    &Assignment::all_at(NodeId::new(0), fixed_k),
                    LazyPolicy::new().prefer_duplicates(),
                    &RunOptions::fast(),
                );
                (d as f64, report.completion_ticks() as f64)
            })
            .collect();
        crate::fit::linear_fit(&pts).slope
    };
    let adversarial_d_slope = {
        let pts: Vec<(f64, f64)> = ds
            .iter()
            .map(|&d| {
                let r = amac_lower::run_dual_line(d.max(2), config, &RunOptions::fast());
                (d as f64, r.completion_ticks as f64)
            })
            .collect();
        crate::fit::linear_fit(&pts).slope
    };

    let mut table = Table::new(
        format!("F1-ARB  BMMB, arbitrary G' (line + long-range shortcuts, {config})"),
        &["sweep", "value", "measured", "ci95", "(D+k)*Fa", "ratio"],
    );
    for p in &d_sweep {
        table.row([
            format!("D (k={fixed_k})"),
            p.param.to_string(),
            mean_cell(&p.measured),
            ci_cell(&p.measured),
            p.bound.to_string(),
            format!("{:.2}", p.ratio()),
        ]);
    }
    for p in &k_sweep {
        table.row([
            format!("k (D={fixed_d})"),
            p.param.to_string(),
            mean_cell(&p.measured),
            ci_cell(&p.measured),
            p.bound.to_string(),
            format!("{:.2}", p.ratio()),
        ]);
    }
    table.note("deterministic workload: measured once (extra trials would repeat the same value)");
    table.note(format!(
        "measured <= {:.2} x (D+k)*F_ack across all points (Theorem 3.1)",
        bound_fit.max_ratio
    ));
    table.note(format!(
        "per-hop slope at k={fixed_k}: {reliable_d_slope:.1} (G'=G), {arbitrary_d_slope:.1} (random shortcuts), {adversarial_d_slope:.1} (Fig 2 adversary); F_prog={}, F_ack={}",
        config.f_prog(), config.f_ack()
    ));
    table.note(
        "finding: random long-range unreliability alone does not slow BMMB — \
         realizing Θ((D+k)·F_ack) requires the crafted Fig 2 schedule",
    );

    super::append_plots(&mut table, &runner, &run, label);
    super::append_shard_note(&mut table, &run);

    Fig1Arbitrary {
        d_sweep,
        k_sweep,
        bound_fit,
        reliable_d_slope,
        arbitrary_d_slope,
        adversarial_d_slope,
        outliers,
        table,
    }
}

/// Default parameterisation at an explicit trial/job count.
pub fn run_default_with(runner: &TrialRunner) -> Fig1Arbitrary {
    let config = MacConfig::from_ticks(2, 64);
    run(
        config,
        &[8, 16, 32, 64],
        4,
        &[1, 2, 4, 8, 16],
        24,
        0.5,
        runner,
    )
}

/// Default parameterisation used by `cargo bench` (single trial).
pub fn run_default() -> Fig1Arbitrary {
    run_default_with(&TrialRunner::single())
}

/// Smoke parameterisation at an explicit trial/job count.
pub fn run_smoke_with(runner: &TrialRunner) -> Fig1Arbitrary {
    run(
        MacConfig::from_ticks(2, 32),
        &[4, 8],
        2,
        &[1, 2],
        6,
        0.5,
        runner,
    )
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI: the
/// same code paths as [`run_default`], tiny sweeps, single trial.
pub fn run_smoke() -> Fig1Arbitrary {
    run_smoke_with(&TrialRunner::single())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_holds_with_constant() {
        let res = run(
            MacConfig::from_ticks(2, 48),
            &[8, 16],
            3,
            &[2, 6],
            10,
            0.5,
            &TrialRunner::single(),
        );
        assert!(
            res.bound_fit.max_ratio <= 2.0,
            "worst ratio {:.2} breaks the O((D+k)F_ack) claim",
            res.bound_fit.max_ratio
        );
    }

    #[test]
    fn long_range_unreliability_slows_the_pipeline() {
        // With k >= 2 the adversary can feed old messages over shortcuts,
        // degrading the per-hop slope from Θ(F_prog) toward Θ(F_ack).
        let res = run(
            MacConfig::from_ticks(2, 64),
            &[16, 32, 48],
            4,
            &[4],
            24,
            0.5,
            &TrialRunner::single(),
        );
        assert!(
            res.adversarial_d_slope > 2.0 * res.reliable_d_slope,
            "the Fig 2 adversary should slow the per-hop slope well past F_prog: {:.1} vs {:.1}",
            res.adversarial_d_slope,
            res.reliable_d_slope
        );
    }
}
