//! One module per experiment in the reproduction plan (see DESIGN.md §5).
//!
//! | id | module | paper artifact |
//! |---|---|---|
//! | `F1-GG` | [`fig1_gg`] | Fig. 1 standard/`G′=G`: `O(D·F_prog + k·F_ack)` |
//! | `F1-RR` | [`fig1_r_restricted`] | Fig. 1 standard/`r`-restricted: Thm 3.2/3.16 |
//! | `F1-ARB` | [`fig1_arbitrary`] | Fig. 1 standard/arbitrary: Thm 3.1 upper bound |
//! | `F1-LB-K` | [`lower_bounds`] | Lemma 3.18 choke star `Ω(k·F_ack)` |
//! | `F2-LB-D` | [`lower_bounds`] | Fig. 2 + Lemmas 3.19–3.20 `Ω(D·F_ack)` |
//! | `F1-ENH` | [`fig1_fmmb`] | Fig. 1 enhanced/grey-zone: Thm 4.1 |
//! | `SUB-MIS` | [`subroutines`] | Lemma 4.5 MIS in `O(log³ n)` rounds |
//! | `SUB-GATHER` | [`subroutines`] | Lemma 4.6 gather in `O(k + log n)` periods |
//! | `SUB-SPREAD` | [`subroutines`] | Lemmas 4.7–4.8 spread in `O((D+k) log n)` rounds |
//! | `ABL-ABORT` | [`ablation_abort`] | ablation: FMMB without the abort interface |
//! | `CONS` | [`consensus_crash`] | NR18/ZT24 crash-tolerant consensus on the aMAC layer |
//! | `ELECT` | [`election`] | NR18 wake-up/leader election via broadcast back-off |
//! | `SCALE` | [`scale`] | runtime throughput + streaming-validation memory at n ≤ 10⁶, sharded or sequential |

pub mod ablation_abort;
pub mod consensus_crash;
pub mod election;
pub mod fig1_arbitrary;
pub mod fig1_fmmb;
pub mod fig1_gg;
pub mod fig1_r_restricted;
pub mod lower_bounds;
pub mod scale;
pub mod subroutines;

use crate::engine::TrialStats;
use crate::engine::{CellCapture, OutlierTrace, SweepRun, TrialRunner};
use crate::table::Table;
use amac_core::{FmmbReport, MmbReport, RunOptions};
use amac_sim::stats::Aggregate;
use amac_sim::Time;

/// A captured outlier execution labeled with the sweep point it belongs to
/// (e.g. `"D=32"`), as exposed by each experiment's result struct and
/// dumped by `repro --dump-traces`.
#[derive(Clone, Debug)]
pub struct LabeledOutlier {
    /// Human-readable sweep-point label.
    pub label: String,
    /// The captured min/median/max trial: trace + validation verdict.
    pub outlier: OutlierTrace,
}

/// Run options for one sweep cell: the fast no-validation path normally,
/// the trace-capturing path when the engine is replaying an outlier.
/// `shards` comes from the runner (`--shards K`): every cell of every
/// experiment runs the sharded event queue, so per-shard diagnostics are
/// available suite-wide, not just for `scale`. `threads` is the runner's
/// *effective* shard worker-thread count
/// ([`TrialRunner::effective_shard_threads`]) — already capped against
/// `--jobs` oversubscription, and output-invariant either way.
pub(crate) fn cell_options(capture: bool, shards: usize, threads: usize) -> RunOptions {
    let options = if capture {
        RunOptions::fast().capturing_trace()
    } else {
        RunOptions::fast()
    };
    options.with_shards(shards).with_shard_threads(threads)
}

/// Appends the sweep's merged sharded-queue diagnostics as a table note —
/// the uniform way every experiment surfaces `ShardStats` in its table
/// and `BENCH_<id>.json` when `--shards K` is set. No-op on sequential
/// runs, so tables stay byte-identical without `--shards`. (`scale` skips
/// this: it reports the same diagnostics as dedicated per-point columns.)
pub(crate) fn append_shard_note(table: &mut Table, run: &SweepRun) {
    if let Some(stats) = run.shard_stats() {
        table.note(format!(
            "shards: {} x {}-tick windows; {} barrier(s), {} outboxed, {} lookahead miss(es), \
             peak shard q {}, barrier slack {} tick(s)",
            stats.shards,
            stats.window_ticks,
            stats.barriers,
            stats.outboxed,
            stats.lookahead_misses,
            stats.max_peak_pending(),
            stats.total_slack_ticks(),
        ));
    }
}

/// Bundles a BMMB report's kept trace (if any) for the engine.
pub(crate) fn mmb_capture(report: &MmbReport) -> Option<CellCapture> {
    report.trace.clone().map(|trace| CellCapture {
        trace,
        validation: report.validation.clone(),
    })
}

/// Bundles an FMMB report's kept trace (if any) for the engine.
pub(crate) fn fmmb_capture(report: &FmmbReport) -> Option<CellCapture> {
    report.trace.clone().map(|trace| CellCapture {
        trace,
        validation: report.validation.clone(),
    })
}

/// Flattens a sweep's captured outliers, labeling each with its point.
pub(crate) fn collect_outliers(
    run: &SweepRun,
    label: impl Fn(usize) -> String,
) -> Vec<LabeledOutlier> {
    run.points()
        .iter()
        .enumerate()
        .flat_map(|(i, point)| {
            point
                .outliers()
                .iter()
                .cloned()
                .map(move |outlier| (i, outlier))
        })
        .map(|(i, outlier)| LabeledOutlier {
            label: label(i),
            outlier,
        })
        .collect()
}

/// The per-point trial-count phrase for table footnotes: a fixed count in
/// fixed mode, the observed `min..max` range plus the stopping rule in
/// adaptive mode. Deterministic, so footnotes stay byte-identical across
/// `--jobs`.
pub(crate) fn trials_phrase(runner: &TrialRunner, run: &SweepRun) -> String {
    if runner.adaptive() {
        let (lo, hi) = (run.min_trials(), run.max_trials());
        let target = runner.target_ci().expect("adaptive implies a target") * 100.0;
        let range = if lo == hi {
            format!("{lo}")
        } else {
            format!("{lo}..{hi}")
        };
        format!(
            "adaptive: {range} trial(s) per point (target ci {target:.0}% of mean, floor {}, cap {})",
            runner.trials(),
            runner.max_trials()
        )
    } else {
        format!("{} trial(s) per point", runner.trials())
    }
}

/// One measured sweep point: a driving parameter, the completion-time
/// aggregate over the trials, and the paper's bound evaluated at that
/// point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value (`D`, `k`, `r`, `n`, or `F_ack`).
    pub param: usize,
    /// Completion-time statistics over the trials, in ticks.
    pub measured: TrialStats,
    /// The bound formula evaluated at this point, in ticks.
    pub bound: u64,
}

impl SweepPoint {
    /// Builds a sweep point from a finished trial aggregate.
    pub fn from_aggregate(param: usize, aggregate: &Aggregate, bound: u64) -> SweepPoint {
        SweepPoint {
            param,
            measured: TrialStats::from_aggregate(aggregate),
            bound,
        }
    }

    /// Mean completion time over the trials, in ticks.
    pub fn mean(&self) -> f64 {
        self.measured.mean
    }

    /// `mean / bound`.
    pub fn ratio(&self) -> f64 {
        self.measured.mean / self.bound as f64
    }

    /// As a `(bound, mean)` float pair for proportional fitting.
    pub fn as_fit_point(&self) -> (f64, f64) {
        (self.bound as f64, self.measured.mean)
    }

    /// As a `(param, mean)` float pair for linear fitting.
    pub fn as_param_point(&self) -> (f64, f64) {
        (self.param as f64, self.measured.mean)
    }
}

pub(crate) fn ticks_or_end(completion: Option<Time>, end: Time) -> u64 {
    completion.map(amac_sim::Time::ticks).unwrap_or(end.ticks())
}

/// Appends one distribution-plot footnote per sweep point (primary lane,
/// labeled like the outliers) when the runner has plots enabled —
/// degenerate distributions (single trial, zero spread) are skipped.
pub(crate) fn append_plots(
    table: &mut Table,
    runner: &TrialRunner,
    run: &SweepRun,
    label: impl Fn(usize) -> String,
) {
    if !runner.plots() {
        return;
    }
    let mut any = false;
    for (i, point) in run.points().iter().enumerate() {
        if let Some(line) = crate::plot::point_line(&label(i), point.primary()) {
            table.note(line);
            any = true;
        }
    }
    if !any {
        table.note("dist: all points degenerate (single trial or zero spread), nothing to plot");
    }
}

/// The uniform per-experiment output consumed by the `repro` binary: the
/// rendered table plus any captured outlier traces.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Rendered result table.
    pub table: Table,
    /// Captured min/median/max traces (empty without trace capture).
    pub outliers: Vec<LabeledOutlier>,
}

/// One registry entry: everything `repro` needs to list, select, and run
/// an experiment.
#[derive(Clone, Copy)]
pub struct ExperimentSpec {
    /// Stable machine id — the `repro` subcommand name and the
    /// `BENCH_<id>.json` stem.
    pub id: &'static str,
    /// Short table label (e.g. `F1-GG`).
    pub label: &'static str,
    /// One-line progress description.
    pub summary: &'static str,
    /// One-line description of what the experiment measures and against
    /// which paper artifact — printed by `repro --list`.
    pub detail: &'static str,
    /// `true` for workloads with no per-trial randomness (the runner is
    /// clamped to a single trial).
    pub deterministic: bool,
    run: fn(bool, &TrialRunner) -> ExperimentOutput,
    canonical: fn(&crate::record::CanonicalOpts) -> crate::record::CanonicalRun,
}

impl ExperimentSpec {
    /// Runs the experiment (`smoke` picks the seconds-scale
    /// parameterisation) on the given engine.
    pub fn run(&self, smoke: bool, runner: &TrialRunner) -> ExperimentOutput {
        (self.run)(smoke, runner)
    }

    /// Runs the experiment's canonical execution with the given options —
    /// see [`crate::record`]. Recording, metrics, and chrome-trace export
    /// are all opt-in through [`CanonicalOpts`](crate::record::CanonicalOpts).
    pub fn canonical(&self, opts: &crate::record::CanonicalOpts) -> crate::record::CanonicalRun {
        (self.canonical)(opts)
    }

    /// Records the experiment's canonical execution (`smoke` picks the
    /// small parameterisation) to `dir/<id>.amactrace` — see
    /// [`crate::record`]. A non-zero `shards` records through the sharded
    /// event queue and a non-zero `shard_threads` drains it on scoped
    /// worker threads; the bytes are identical by construction either way.
    pub fn record(
        &self,
        dir: &std::path::Path,
        smoke: bool,
        shards: usize,
        shard_threads: usize,
    ) -> crate::record::RecordedTrace {
        let run = (self.canonical)(&crate::record::CanonicalOpts::recording(
            dir,
            smoke,
            shards,
            shard_threads,
        ));
        run.trace.expect("recording was requested")
    }
}

macro_rules! adapter {
    ($name:ident, $module:ident) => {
        fn $name(smoke: bool, runner: &TrialRunner) -> ExperimentOutput {
            let res = if smoke {
                $module::run_smoke_with(runner)
            } else {
                $module::run_default_with(runner)
            };
            ExperimentOutput {
                table: res.table,
                outliers: res.outliers,
            }
        }
    };
}

adapter!(run_fig1_gg, fig1_gg);
adapter!(run_fig1_r_restricted, fig1_r_restricted);
adapter!(run_fig1_arbitrary, fig1_arbitrary);
adapter!(run_lower_bounds, lower_bounds);
adapter!(run_fig1_fmmb, fig1_fmmb);
adapter!(run_subroutines, subroutines);
adapter!(run_ablation_abort, ablation_abort);
adapter!(run_consensus_crash, consensus_crash);
adapter!(run_election, election);
adapter!(run_scale, scale);

/// Every experiment in suite order. `repro` runs the whole list by
/// default, or the subset named on its command line.
pub fn registry() -> &'static [ExperimentSpec] {
    &[
        ExperimentSpec {
            id: "fig1_gg",
            label: "F1-GG",
            summary: "standard model, G' = G",
            detail: "BMMB on reliable lines: completion tracks O(D*F_prog + k*F_ack) (Fig. 1, KLN11 row)",
            deterministic: fig1_gg::DETERMINISTIC,
            run: run_fig1_gg,
            canonical: crate::record::fig1_gg,
        },
        ExperimentSpec {
            id: "fig1_r_restricted",
            label: "F1-RR",
            summary: "standard model, r-restricted G'",
            detail: "BMMB under r-restricted unreliable augmentation: Thm 3.2/3.16 bound, exact t1 deadline",
            deterministic: false,
            run: run_fig1_r_restricted,
            canonical: crate::record::fig1_r_restricted,
        },
        ExperimentSpec {
            id: "fig1_arbitrary",
            label: "F1-ARB",
            summary: "standard model, arbitrary G'",
            detail: "BMMB with arbitrary unreliable links: the O((D+k)*F_ack) slowdown of Thm 3.1",
            deterministic: fig1_arbitrary::DETERMINISTIC,
            run: run_fig1_arbitrary,
            canonical: crate::record::fig1_arbitrary,
        },
        ExperimentSpec {
            id: "lower_bounds",
            label: "LB",
            summary: "lower bounds (Lemma 3.18 + Figure 2)",
            detail: "choke-star Omega(k*F_ack) and grey-zone Omega(D*F_ack) adversary constructions",
            deterministic: lower_bounds::DETERMINISTIC,
            run: run_lower_bounds,
            canonical: crate::record::lower_bounds,
        },
        ExperimentSpec {
            id: "fig1_fmmb",
            label: "F1-ENH",
            summary: "enhanced model, FMMB vs BMMB",
            detail: "FMMB (MIS + gather + spread) beats BMMB on grey-zone duals: Thm 4.1 regime",
            deterministic: false,
            run: run_fig1_fmmb,
            canonical: crate::record::fig1_fmmb,
        },
        ExperimentSpec {
            id: "subroutines",
            label: "SUB-*",
            summary: "FMMB subroutines",
            detail: "MIS O(log^3 n) rounds, gather O(k+log n) periods, spread O((D+k) log n) rounds",
            deterministic: false,
            run: run_subroutines,
            canonical: crate::record::subroutines,
        },
        ExperimentSpec {
            id: "ablation_abort",
            label: "ABL",
            summary: "abort-interface ablation",
            detail: "FMMB with the enhanced-layer abort disabled: what the interface buys (and costs)",
            deterministic: false,
            run: run_ablation_abort,
            canonical: crate::record::ablation_abort,
        },
        ExperimentSpec {
            id: "consensus_crash",
            label: "CONS",
            summary: "crash-tolerant consensus (NR18), crash-fraction sweep",
            detail: "timed flooding consensus under node crashes: agreement/validity, (f+1)-phase deadline",
            deterministic: false,
            run: run_consensus_crash,
            canonical: crate::record::consensus_crash,
        },
        ExperimentSpec {
            id: "election",
            label: "ELECT",
            summary: "leader election via broadcast back-off, grey zone",
            detail: "randomized wake-up/election: convergence vs W + 2(D+1)(F_prog+1), claimant suppression",
            deterministic: false,
            run: run_election,
            canonical: crate::record::election,
        },
        ExperimentSpec {
            id: "scale",
            label: "SCALE",
            summary: "runtime throughput + streaming validation, n up to 1M",
            detail: "BMMB floods on 1k..1M-node grid duals (sharded with --shards K): events/s, validator and shard peaks",
            deterministic: scale::DETERMINISTIC,
            run: run_scale,
            canonical: crate::record::scale,
        },
    ]
}

/// Looks an experiment up by its registry [`id`](ExperimentSpec::id).
pub fn find(id: &str) -> Option<&'static ExperimentSpec> {
    registry().iter().find(|spec| spec.id == id)
}
