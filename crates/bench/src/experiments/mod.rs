//! One module per experiment in the reproduction plan (see DESIGN.md §5).
//!
//! | id | module | paper artifact |
//! |---|---|---|
//! | `F1-GG` | [`fig1_gg`] | Fig. 1 standard/`G′=G`: `O(D·F_prog + k·F_ack)` |
//! | `F1-RR` | [`fig1_r_restricted`] | Fig. 1 standard/`r`-restricted: Thm 3.2/3.16 |
//! | `F1-ARB` | [`fig1_arbitrary`] | Fig. 1 standard/arbitrary: Thm 3.1 upper bound |
//! | `F1-LB-K` | [`lower_bounds`] | Lemma 3.18 choke star `Ω(k·F_ack)` |
//! | `F2-LB-D` | [`lower_bounds`] | Fig. 2 + Lemmas 3.19–3.20 `Ω(D·F_ack)` |
//! | `F1-ENH` | [`fig1_fmmb`] | Fig. 1 enhanced/grey-zone: Thm 4.1 |
//! | `SUB-MIS` | [`subroutines`] | Lemma 4.5 MIS in `O(log³ n)` rounds |
//! | `SUB-GATHER` | [`subroutines`] | Lemma 4.6 gather in `O(k + log n)` periods |
//! | `SUB-SPREAD` | [`subroutines`] | Lemmas 4.7–4.8 spread in `O((D+k) log n)` rounds |
//! | `ABL-ABORT` | [`ablation_abort`] | ablation: FMMB without the abort interface |

pub mod ablation_abort;
pub mod fig1_arbitrary;
pub mod fig1_fmmb;
pub mod fig1_gg;
pub mod fig1_r_restricted;
pub mod lower_bounds;
pub mod subroutines;

use crate::engine::TrialStats;
use amac_sim::stats::Aggregate;
use amac_sim::Time;

/// One measured sweep point: a driving parameter, the completion-time
/// aggregate over the trials, and the paper's bound evaluated at that
/// point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value (`D`, `k`, `r`, `n`, or `F_ack`).
    pub param: usize,
    /// Completion-time statistics over the trials, in ticks.
    pub measured: TrialStats,
    /// The bound formula evaluated at this point, in ticks.
    pub bound: u64,
}

impl SweepPoint {
    /// Builds a sweep point from a finished trial aggregate.
    pub fn from_aggregate(param: usize, aggregate: &Aggregate, bound: u64) -> SweepPoint {
        SweepPoint {
            param,
            measured: TrialStats::from_aggregate(aggregate),
            bound,
        }
    }

    /// Mean completion time over the trials, in ticks.
    pub fn mean(&self) -> f64 {
        self.measured.mean
    }

    /// `mean / bound`.
    pub fn ratio(&self) -> f64 {
        self.measured.mean / self.bound as f64
    }

    /// As a `(bound, mean)` float pair for proportional fitting.
    pub fn as_fit_point(&self) -> (f64, f64) {
        (self.bound as f64, self.measured.mean)
    }

    /// As a `(param, mean)` float pair for linear fitting.
    pub fn as_param_point(&self) -> (f64, f64) {
        (self.param as f64, self.measured.mean)
    }
}

pub(crate) fn ticks_or_end(completion: Option<Time>, end: Time) -> u64 {
    completion.map(|t| t.ticks()).unwrap_or(end.ticks())
}
