//! `F1-RR` — Figure 1, standard model, `r`-restricted `G′`:
//! BMMB completes in `O(D·F_prog + r·k·F_ack)` (Theorem 3.2), concretely
//! by the Theorem 3.16 deadline
//! `t₁ = (D + (r+1)k − 2)·F_prog + r(k−1)·F_ack`.
//!
//! Workload: a line `G` with random unreliable edges of `G`-span at most
//! `r`, swept over `r` — interpolating between the `G′ = G` cell (`r = 1`)
//! and the arbitrary-`G′` regime (`r = D`). Theorem 3.16 is an *exact*
//! deadline, so each measured completion must not exceed it; the sweep
//! also shows the measured time degrading as `r` grows, matching the
//! paper's insight that the *reach* of unreliability (not its quantity)
//! is what hurts.

use super::{LabeledOutlier, SweepPoint};
use crate::engine::{CellResult, TrialRunner};
use crate::table::{ci_cell, mean_cell, Table};
use amac_core::{bounds, run_bmmb, Assignment, MmbReport, RunOptions};
use amac_graph::{generators, NodeId};
use amac_mac::policies::LazyPolicy;
use amac_mac::MacConfig;
use amac_sim::SimRng;

/// Results of the `F1-RR` experiment.
#[derive(Clone, Debug)]
pub struct Fig1RRestricted {
    /// Sweep of `r` at fixed `D`, `k`; bound is the exact `t₁`.
    pub r_sweep: Vec<SweepPoint>,
    /// `true` iff every measured time — in **every trial**, not just the
    /// mean — is within the exact Theorem 3.16 deadline.
    pub within_exact_bound: bool,
    /// Captured outlier traces per sweep point (empty unless the runner
    /// has trace capture enabled).
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table.
    pub table: Table,
}

fn measure(
    config: MacConfig,
    d: usize,
    k: usize,
    r: usize,
    p: f64,
    seed: u64,
    options: &RunOptions,
) -> MmbReport {
    let g = generators::line(d + 1).expect("d >= 1");
    let mut rng = SimRng::seed(seed ^ (r as u64).wrapping_mul(0x9E37));
    let dual = generators::r_restricted_augment(g, r, p, &mut rng).expect("valid parameters");
    debug_assert!(dual.check_r_restricted(r).is_ok());
    let assignment = Assignment::all_at(NodeId::new(0), k);
    run_bmmb(
        &dual,
        config,
        &assignment,
        LazyPolicy::new().prefer_duplicates(),
        options,
    )
}

/// Runs the experiment. Each trial samples its own `r`-restricted
/// augmentation (from the trial's split seed), so the aggregate spans the
/// topology distribution, and the exact Theorem 3.16 deadline is checked
/// on every trial individually. Each `(r, trial)` pair is its own engine
/// cell, so the `r` points of one trial run concurrently.
pub fn run(
    config: MacConfig,
    d: usize,
    k: usize,
    rs: &[usize],
    edge_probability: f64,
    seed: u64,
    runner: &TrialRunner,
) -> Fig1RRestricted {
    let widths = vec![1usize; rs.len()];
    let shards = runner.shards();
    let shard_threads = runner.effective_shard_threads();
    let run = runner.run_sweep(
        seed,
        &widths,
        |_trial| (),
        |_, cell| {
            let report = measure(
                config,
                d,
                k,
                rs[cell.point],
                edge_probability,
                cell.seed(seed),
                &super::cell_options(cell.capture_requested(), shards, shard_threads),
            );
            CellResult::scalar(report.completion_ticks() as f64)
                .with_capture(super::mmb_capture(&report))
                .with_shard_stats(report.shard_stats.clone())
        },
    );
    let label = |i: usize| format!("r={}", rs[i]);
    let outliers = super::collect_outliers(&run, label);
    // Integer-tick note: a discrete simulator realizes a progress window
    // of F_prog + 1 ticks ("strictly longer than F_prog"), so the exact
    // t1 deadline is evaluated at that effective constant.
    let effective = MacConfig::from_ticks(config.f_prog().ticks() + 1, config.f_ack().ticks());
    let r_sweep: Vec<SweepPoint> = rs
        .iter()
        .zip(run.points())
        .map(|(&r, p)| {
            SweepPoint::from_aggregate(
                r,
                p.primary(),
                bounds::bmmb_r_restricted_exact(d, k, r, &effective).ticks(),
            )
        })
        .collect();
    let within_exact_bound = r_sweep.iter().all(|p| p.measured.max <= p.bound as f64);

    let mut table = Table::new(
        format!("F1-RR  BMMB, r-restricted G' (line D={d}, k={k}, {config})"),
        &[
            "r",
            "measured",
            "ci95",
            "exact t1 (Thm 3.16)",
            "ratio",
            "O-form D*Fp+r*k*Fa",
        ],
    );
    for p in &r_sweep {
        table.row([
            p.param.to_string(),
            mean_cell(&p.measured),
            ci_cell(&p.measured),
            p.bound.to_string(),
            format!("{:.2}", p.ratio()),
            bounds::bmmb_r_restricted(d, k, p.param, &config)
                .ticks()
                .to_string(),
        ]);
    }
    table.note(format!(
        "{}, each on a fresh r-restricted augmentation",
        super::trials_phrase(runner, &run)
    ));
    table.note(if within_exact_bound {
        "every trial's measured time is within the exact Theorem 3.16 deadline t1".to_string()
    } else {
        "VIOLATION: some run exceeded the exact Theorem 3.16 deadline".to_string()
    });
    table.note("r=1 reproduces the G'=G cell; growing r interpolates toward (D+k)*F_ack");

    super::append_plots(&mut table, runner, &run, label);
    super::append_shard_note(&mut table, &run);

    Fig1RRestricted {
        r_sweep,
        within_exact_bound,
        outliers,
        table,
    }
}

/// Default parameterisation at an explicit trial/job count.
pub fn run_default_with(runner: &TrialRunner) -> Fig1RRestricted {
    run(
        MacConfig::from_ticks(2, 64),
        32,
        4,
        &[1, 2, 4, 8, 16],
        0.5,
        11,
        runner,
    )
}

/// Default parameterisation used by `cargo bench` (single trial).
pub fn run_default() -> Fig1RRestricted {
    run_default_with(&TrialRunner::single())
}

/// Smoke parameterisation at an explicit trial/job count.
pub fn run_smoke_with(runner: &TrialRunner) -> Fig1RRestricted {
    run(MacConfig::from_ticks(2, 32), 8, 2, &[1, 2], 0.5, 11, runner)
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI: the
/// same code paths as [`run_default`], tiny sweeps, single trial.
pub fn run_smoke() -> Fig1RRestricted {
    run_smoke_with(&TrialRunner::single())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_theorem_316_deadline_holds() {
        let res = run(
            MacConfig::from_ticks(2, 48),
            16,
            3,
            &[1, 2, 4],
            0.5,
            3,
            &TrialRunner::single(),
        );
        assert!(res.within_exact_bound, "{}", res.table);
    }

    #[test]
    fn exact_deadline_holds_on_every_trial() {
        // The Theorem 3.16 deadline is exact, so it must hold on each of
        // the per-trial topologies, not just on the mean.
        let res = run(
            MacConfig::from_ticks(2, 32),
            8,
            2,
            &[1, 2],
            0.5,
            11,
            &TrialRunner::new(4, 2),
        );
        assert!(res.within_exact_bound, "{}", res.table);
        assert!(res.r_sweep.iter().all(|p| p.measured.trials == 4));
    }

    #[test]
    fn r_one_matches_reliable_case() {
        let res = run(
            MacConfig::from_ticks(2, 48),
            16,
            3,
            &[1],
            1.0,
            3,
            &TrialRunner::single(),
        );
        let p = res.r_sweep[0];
        // With r = 1 nothing can be added: identical to the G' = G cell.
        let gg_bound = bounds::bmmb_reliable(16, 3, &MacConfig::from_ticks(2, 48)).ticks();
        assert!(p.measured.max <= (3 * gg_bound) as f64);
    }

    #[test]
    fn larger_r_is_never_dramatically_faster() {
        // Growing r adds adversarial freedom; measured time should trend
        // upward (allowing small-sample noise).
        let res = run(
            MacConfig::from_ticks(2, 64),
            24,
            4,
            &[1, 8],
            0.5,
            7,
            &TrialRunner::single(),
        );
        let t1 = res.r_sweep[0].mean();
        let t8 = res.r_sweep[1].mean();
        assert!(
            t8 * 2.0 >= t1,
            "r=8 ({t8}) should not be far below r=1 ({t1})"
        );
    }
}
