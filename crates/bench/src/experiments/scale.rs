//! `SCALE` — runtime throughput and streaming-validation memory at
//! `n ∈ {1k, 2.5k, 5k, 10k}`.
//!
//! This experiment is about the *system*, not the paper: it sweeps BMMB
//! floods over large `G′ = G` line duals with the streaming
//! [`OnlineValidator`](amac_mac::OnlineValidator) attached, and reports
//!
//! * **events/s** — wall-clock runtime throughput (the one column exempt
//!   from the byte-identity contract, like the JSON wall clock);
//! * **peak live / peak tracked** — the validator's peak in-flight state,
//!   the evidence that conformance checking no longer retains the
//!   execution: at `n = 10⁴` the validator tracks a few dozen instance
//!   records while the execution produces tens of thousands;
//! * **violations** — always 0: every sweep point is a fully validated
//!   execution.
//!
//! Before the observer refactor these sweeps were memory-bound: a
//! validated run materialized the full trace (O(events)) and re-scanned it
//! post hoc. The pre-refactor pin recorded in the table notes is the
//! anchor for the throughput trajectory in `BENCH_scale.json`.

use super::LabeledOutlier;
use crate::engine::{CellResult, TrialRunner};
use crate::table::Table;
use amac_core::{run_bmmb, Assignment, MmbReport, RunOptions};
use amac_graph::{generators, DualGraph, NodeId};
use amac_mac::policies::EagerPolicy;
use amac_mac::MacConfig;
use std::time::Instant;

/// One measured scale point.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Network size (nodes on the line).
    pub n: usize,
    /// Total runtime events processed.
    pub events: u64,
    /// MAC instances broadcast.
    pub instances: u64,
    /// Completion time of the flood, in ticks.
    pub completion: u64,
    /// Peak live instances tracked by the streaming validator.
    pub peak_live: u64,
    /// Peak live + recently-retired instance records (the validator's
    /// whole per-instance memory).
    pub peak_tracked: u64,
    /// Validation violations (must be 0).
    pub violations: u64,
    /// Wall-clock events per second (machine-dependent; exempt from the
    /// byte-identity contract).
    pub events_per_sec: f64,
}

/// Results of the `SCALE` experiment.
#[derive(Clone, Debug)]
pub struct Scale {
    /// One point per swept `n`.
    pub points: Vec<ScalePoint>,
    /// Captured outlier traces (capture replays re-run with a trace
    /// observer attached; empty otherwise).
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table. The `events/s` column is wall clock; every other
    /// cell is byte-identical across `--jobs` and machines.
    pub table: Table,
}

/// The workload is a deterministic BMMB line flood under the eager
/// scheduler: extra trials would re-measure identical values.
pub const DETERMINISTIC: bool = true;

/// Pre-refactor pin (trace-recording runtime + post-hoc validation) on the
/// n=1000, k=2 flooding workload, recorded before the observer refactor
/// landed — the anchor the ≥2× streaming-pipeline claim is measured
/// against. Machine: the CI-class box this workspace is developed on.
pub const PRE_REFACTOR_PIN_EVENTS_PER_SEC: f64 = 3_200_000.0;

/// Messages flooded per point (small and fixed: the sweep scales `n`).
const MESSAGES: usize = 2;

fn measure(n: usize, capture: bool) -> (MmbReport, f64) {
    let dual = DualGraph::reliable(generators::line(n).expect("n >= 2"));
    let assignment = Assignment::all_at(NodeId::new(0), MESSAGES);
    let config = MacConfig::from_ticks(2, 32);
    let options = if capture {
        RunOptions::default().capturing_trace()
    } else {
        RunOptions::default() // streaming validation on, no trace
    };
    let started = Instant::now();
    let report = run_bmmb(&dual, config, &assignment, EagerPolicy::new(), &options);
    (report, started.elapsed().as_secs_f64())
}

/// Runs the scale sweep over the given network sizes.
pub fn run(ns: &[usize], runner: &TrialRunner) -> Scale {
    let runner = runner.deterministic();
    // The engine sweep exists solely to serve `--dump-traces` outlier
    // capture; without capture its results would be discarded, so skip
    // the duplicate executions entirely (the measurement pass below is
    // the experiment).
    let outliers = if runner.captures_traces() {
        let widths = vec![1usize; ns.len()];
        let run = runner.run_sweep(
            0,
            &widths,
            |_trial| (),
            |_, cell| {
                let (report, _) = measure(ns[cell.point], cell.capture_requested());
                CellResult::scalar(report.completion_ticks() as f64)
                    .with_capture(super::mmb_capture(&report))
            },
        );
        super::collect_outliers(&run, |i| format!("n={}", ns[i]))
    } else {
        Vec::new()
    };

    // The wall-clock lane is measured outside the engine, sequentially and
    // after a warm-up, so worker contention never pollutes the throughput
    // numbers (and the engine's aggregates stay fully deterministic).
    let _warmup = measure(ns[0], false);
    let points: Vec<ScalePoint> = ns
        .iter()
        .map(|&n| {
            let (report, secs) = measure(n, false);
            let stats = report
                .validator_stats
                .expect("scale runs with streaming validation attached");
            let violations = report
                .validation
                .as_ref()
                .map_or(0, |v| v.violations().len() as u64);
            assert_eq!(
                report.missing, 0,
                "scale flood must complete at n={n}: {report}"
            );
            ScalePoint {
                n,
                events: report.counters.get("events"),
                instances: report.instances as u64,
                completion: report.completion_ticks(),
                peak_live: stats.peak_live as u64,
                peak_tracked: stats.peak_tracked as u64,
                violations,
                events_per_sec: report.counters.get("events") as f64 / secs.max(1e-9),
            }
        })
        .collect();

    let mut table = Table::new(
        format!("SCALE  BMMB flood, G'=G line, streaming validation (k={MESSAGES}, eager)"),
        &[
            "n",
            "events",
            "instances",
            "completion",
            "peak live",
            "peak tracked",
            "events/s",
            "violations",
        ],
    );
    for p in &points {
        table.row([
            p.n.to_string(),
            p.events.to_string(),
            p.instances.to_string(),
            p.completion.to_string(),
            p.peak_live.to_string(),
            p.peak_tracked.to_string(),
            format!("{:.2e}", p.events_per_sec),
            p.violations.to_string(),
        ]);
    }
    table.note(
        "events/s is wall clock (machine-dependent) and exempt from the byte-identity \
         contract; every other column is deterministic",
    );
    table.note(format!(
        "peak live/tracked = streaming validator state: bounded by in-flight instances, \
         not execution length (pre-refactor pipeline retained the full trace, \
         pin {PRE_REFACTOR_PIN_EVENTS_PER_SEC:.1e} events/s on n=1k)",
    ));

    Scale {
        points,
        outliers,
        table,
    }
}

/// Default parameterisation: the full 1k → 10k sweep.
pub fn run_default_with(runner: &TrialRunner) -> Scale {
    run(&[1000, 2500, 5000, 10_000], runner)
}

/// Smoke parameterisation: seconds-scale, but still driving an n=5,000
/// execution end-to-end under streaming validation (the acceptance bar
/// for the observer pipeline).
pub fn run_smoke_with(runner: &TrialRunner) -> Scale {
    run(&[1000, 5000], runner)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion of the observer refactor: an n=5,000 MMB
    /// execution completes end-to-end with the streaming validator
    /// attached, zero violations, and no full-trace retention — the
    /// validator's peak state is bounded by the in-flight instances (a
    /// small multiple of the frontier), not by the execution length.
    #[test]
    fn smoke_runs_n5000_with_bounded_validator_state() {
        let res = run_smoke_with(&TrialRunner::new(1, 2));
        assert_eq!(res.points.len(), 2);
        let big = res.points.last().unwrap();
        assert_eq!(big.n, 5000);
        assert_eq!(big.violations, 0, "streaming validation must pass");
        assert!(big.completion > 0);
        assert!(
            big.instances >= 2 * 5000 - 1,
            "every node rebroadcasts every message"
        );
        // No full-trace retention: the execution produced ~10k instances
        // (and several times as many events), while the validator's whole
        // per-instance memory stayed at a tiny fraction of that.
        assert!(
            big.peak_tracked * 20 <= big.events,
            "peak tracked {} vs {} events — validator state must be bounded by \
             in-flight instances, not execution length",
            big.peak_tracked,
            big.events
        );
        assert!(
            big.peak_live <= big.peak_tracked && big.peak_tracked < big.instances / 10,
            "peak live {} / tracked {} vs {} instances",
            big.peak_live,
            big.peak_tracked,
            big.instances
        );
    }

    // Jobs invariance of the deterministic columns lives in the
    // determinism suite (tests/determinism.rs), alongside the other
    // experiments' entries.

    #[test]
    fn capture_replays_with_valid_traces() {
        let runner = TrialRunner::new(1, 2).with_trace_capture(true);
        let res = run(&[64], &runner);
        assert!(!res.outliers.is_empty());
        for o in &res.outliers {
            assert!(!o.outlier.trace.is_empty(), "{}: empty trace", o.label);
            let v = o.outlier.validation.as_ref().expect("capture validates");
            assert!(v.is_ok(), "{}: {v}", o.label);
        }
    }
}
