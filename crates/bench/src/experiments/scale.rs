//! `SCALE` — runtime throughput and streaming-validation memory at
//! `n` up to 10⁶ (10⁵ in smoke mode), optionally on the sharded event
//! queue.
//!
//! This experiment is about the *system*, not the paper: it sweeps BMMB
//! floods over large `G′ = G` jittered-grid duals
//! ([`generators::grid_grey_zone_network`] with grey probability 0 — the
//! O(n) generator with an analytic diameter, so topology construction
//! never dominates the measurement) with the streaming
//! [`OnlineValidator`](amac_mac::OnlineValidator) attached, and reports
//!
//! * **events/s** — wall-clock runtime throughput (the one column exempt
//!   from the byte-identity contract, like the JSON wall clock);
//! * **peak live / peak tracked** — the validator's peak in-flight state,
//!   the evidence that conformance checking no longer retains the
//!   execution: at `n = 10⁵` the validator tracks a few thousand instance
//!   records while the execution produces millions of events;
//! * **shards / peak shard q / barrier slack** — the sharded engine's
//!   diagnostics when the runner carries `--shards K`: the max per-shard
//!   peak pending-event count and the total simulated-time slack shards
//!   accumulated at conservative-window barriers. Sharding never changes
//!   any other column (`tests/shard_equivalence.rs` proves byte-identical
//!   traces), so these cells are `-` in sequential runs and deterministic
//!   for a given `K`;
//! * **violations** — always 0: every sweep point is a fully validated
//!   execution.
//!
//! Before the observer refactor these sweeps were memory-bound: a
//! validated run materialized the full trace (O(events)) and re-scanned it
//! post hoc. The pre-refactor pin recorded in the table notes is the
//! anchor for the throughput trajectory in `BENCH_scale.json`.

use super::LabeledOutlier;
use crate::engine::{CellResult, TrialRunner};
use crate::table::Table;
use amac_core::{run_bmmb, Assignment, MmbReport, RunOptions};
use amac_graph::{generators, NodeId};
use amac_mac::policies::EagerPolicy;
use amac_mac::MacConfig;
use amac_sim::SimRng;
use std::time::Instant;

/// One measured scale point.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Network size (nodes on the jittered grid).
    pub n: usize,
    /// Event-queue shard count the point ran with (0 = sequential).
    pub shards: usize,
    /// Total runtime events processed.
    pub events: u64,
    /// MAC instances broadcast.
    pub instances: u64,
    /// Completion time of the flood, in ticks.
    pub completion: u64,
    /// Peak live instances tracked by the streaming validator.
    pub peak_live: u64,
    /// Peak live + recently-retired instance records (the validator's
    /// whole per-instance memory).
    pub peak_tracked: u64,
    /// Max over shards of the peak per-shard pending-event count
    /// (0 when sequential).
    pub peak_shard_pending: u64,
    /// Total simulated-time ticks of conservative-window slack accumulated
    /// at shard barriers (0 when sequential).
    pub barrier_slack: u64,
    /// Validation violations (must be 0).
    pub violations: u64,
    /// Wall-clock events per second (machine-dependent; exempt from the
    /// byte-identity contract).
    pub events_per_sec: f64,
}

/// Results of the `SCALE` experiment.
#[derive(Clone, Debug)]
pub struct Scale {
    /// One point per swept `n`.
    pub points: Vec<ScalePoint>,
    /// Aggregate wall-clock throughput over the whole sweep: total events
    /// processed divided by total measured seconds (machine-dependent).
    pub aggregate_events_per_sec: f64,
    /// Captured outlier traces (capture replays re-run with a trace
    /// observer attached; empty otherwise).
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table. The `events/s` cells (and the aggregate note) are
    /// wall clock; the shard-diagnostic columns depend on `--shards`;
    /// every other cell is byte-identical across `--jobs`, `--shards`,
    /// and machines.
    pub table: Table,
}

/// The workload is a deterministic BMMB grid flood under the eager
/// scheduler: extra trials would re-measure identical values.
pub const DETERMINISTIC: bool = true;

/// Pre-refactor pin (trace-recording runtime + post-hoc validation) on the
/// n=1000, k=2 flooding workload, recorded before the observer refactor
/// landed — the anchor the ≥2× streaming-pipeline claim is measured
/// against. Machine: the CI-class box this workspace is developed on.
pub const PRE_REFACTOR_PIN_EVENTS_PER_SEC: f64 = 3_200_000.0;

/// Messages flooded per point (small and fixed: the sweep scales `n`).
const MESSAGES: usize = 2;

/// Topology seed. Only the grid jitter flows from it (grey probability is
/// 0, so `G′ = G` and the edge set is fixed by the grid arithmetic).
const TOPOLOGY_SEED: u64 = 0x5CA1E;

fn measure(n: usize, shards: usize, capture: bool) -> (MmbReport, f64) {
    let mut rng = SimRng::seed(TOPOLOGY_SEED ^ n as u64);
    let net = generators::grid_grey_zone_network(n, 0.0, &mut rng).expect("n >= 1");
    let assignment = Assignment::all_at(NodeId::new(0), MESSAGES);
    let config = MacConfig::from_ticks(2, 32);
    let options = if capture {
        RunOptions::default().capturing_trace()
    } else {
        RunOptions::default() // streaming validation on, no trace
    }
    .with_shards(shards);
    let started = Instant::now();
    let report = run_bmmb(&net.dual, config, &assignment, EagerPolicy::new(), &options);
    (report, started.elapsed().as_secs_f64())
}

/// Runs the scale sweep over the given network sizes, on the runner's
/// shard count (0 = sequential).
pub fn run(ns: &[usize], runner: &TrialRunner) -> Scale {
    let shards = runner.shards();
    let runner = runner.deterministic();
    // The engine sweep exists solely to serve `--dump-traces` outlier
    // capture; without capture its results would be discarded, so skip
    // the duplicate executions entirely (the measurement pass below is
    // the experiment).
    let outliers = if runner.captures_traces() {
        let widths = vec![1usize; ns.len()];
        let run = runner.run_sweep(
            0,
            &widths,
            |_trial| (),
            |_, cell| {
                let (report, _) = measure(ns[cell.point], shards, cell.capture_requested());
                CellResult::scalar(report.completion_ticks() as f64)
                    .with_capture(super::mmb_capture(&report))
            },
        );
        super::collect_outliers(&run, |i| format!("n={}", ns[i]))
    } else {
        Vec::new()
    };

    // The wall-clock lane is measured outside the engine, sequentially and
    // after a warm-up, so worker contention never pollutes the throughput
    // numbers (and the engine's aggregates stay fully deterministic).
    let _warmup = measure(ns[0], shards, false);
    let mut total_events = 0u64;
    let mut total_secs = 0.0f64;
    let points: Vec<ScalePoint> = ns
        .iter()
        .map(|&n| {
            let (report, secs) = measure(n, shards, false);
            let stats = report
                .validator_stats
                .expect("scale runs with streaming validation attached");
            let violations = report
                .validation
                .as_ref()
                .map_or(0, |v| v.violations().len() as u64);
            assert_eq!(
                report.missing, 0,
                "scale flood must complete at n={n}: {report}"
            );
            let events = report.counters.get("events");
            total_events += events;
            total_secs += secs;
            let (peak_shard_pending, barrier_slack) =
                report.shard_stats.as_ref().map_or((0, 0), |s| {
                    (s.max_peak_pending() as u64, s.total_slack_ticks())
                });
            ScalePoint {
                n,
                shards,
                events,
                instances: report.instances as u64,
                completion: report.completion_ticks(),
                peak_live: stats.peak_live as u64,
                peak_tracked: stats.peak_tracked as u64,
                peak_shard_pending,
                barrier_slack,
                violations,
                events_per_sec: events as f64 / secs.max(1e-9),
            }
        })
        .collect();
    let aggregate_events_per_sec = total_events as f64 / total_secs.max(1e-9);

    let mut table = Table::new(
        format!(
            "SCALE  BMMB flood, G'=G jittered grid, streaming validation (k={MESSAGES}, eager)"
        ),
        &[
            "n",
            "shards",
            "events",
            "instances",
            "completion",
            "peak live",
            "peak tracked",
            "peak shard q",
            "barrier slack",
            "events/s",
            "violations",
        ],
    );
    let shard_cell = |v: u64| {
        if shards == 0 {
            "-".to_string()
        } else {
            v.to_string()
        }
    };
    for p in &points {
        table.row([
            p.n.to_string(),
            shard_cell(p.shards as u64),
            p.events.to_string(),
            p.instances.to_string(),
            p.completion.to_string(),
            p.peak_live.to_string(),
            p.peak_tracked.to_string(),
            shard_cell(p.peak_shard_pending),
            shard_cell(p.barrier_slack),
            format!("{:.2e}", p.events_per_sec),
            p.violations.to_string(),
        ]);
    }
    table.note(format!(
        "aggregate: {aggregate_events_per_sec:.2e} events/s over the sweep ({total_events} events)",
    ));
    table.note(
        "events/s and the aggregate are wall clock (machine-dependent) and exempt from the \
         byte-identity contract; shards/peak shard q/barrier slack describe the event-queue \
         sharding (deterministic for a given --shards, `-` when sequential); every other \
         column is invariant across --jobs and --shards",
    );
    table.note(format!(
        "peak live/tracked = streaming validator state: bounded by in-flight instances, \
         not execution length (pre-refactor pipeline retained the full trace, \
         pin {PRE_REFACTOR_PIN_EVENTS_PER_SEC:.1e} events/s on n=1k)",
    ));

    Scale {
        points,
        aggregate_events_per_sec,
        outliers,
        table,
    }
}

/// Default parameterisation: 10³ → 10⁶ on the jittered grid. The 10⁶
/// point is tens of seconds wall clock (14M events; see the worked
/// example in EXPERIMENTS.md) — full mode only, smoke stops at 10⁵.
pub fn run_default_with(runner: &TrialRunner) -> Scale {
    run(&[1000, 10_000, 100_000, 1_000_000], runner)
}

/// Smoke parameterisation: seconds-scale in release builds, but still
/// driving a fully validated n=10⁵ execution end-to-end (the acceptance
/// bar for the sharded simulator; CI runs it with `--shards 4`).
pub fn run_smoke_with(runner: &TrialRunner) -> Scale {
    run(&[1000, 100_000], runner)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion of the observer refactor, re-derived for
    /// the grid workload: an n=5,000 MMB execution completes end-to-end
    /// with the streaming validator attached, zero violations, and no
    /// full-trace retention — on a grid the flood frontier is O(√n) nodes
    /// wide, and the validator's peak state tracks that frontier, not the
    /// execution volume. (`run_smoke_with` itself drives n=10⁵, sized for
    /// release-mode CI — too slow for a debug-build unit test, so this
    /// drives `run` directly.)
    #[test]
    fn n5000_grid_flood_has_bounded_validator_state() {
        let res = run(&[1000, 5000], &TrialRunner::new(1, 2));
        assert_eq!(res.points.len(), 2);
        let (small, big) = (&res.points[0], &res.points[1]);
        assert_eq!(big.n, 5000);
        assert_eq!(big.violations, 0, "streaming validation must pass");
        assert!(big.completion > 0);
        assert!(
            big.instances >= 2 * 5000 - 1,
            "every node rebroadcasts every message"
        );
        // Frontier, not volume: peak live instances stay within a small
        // multiple of the grid diagonal (~√n), and the validator never
        // retains even half of the instance records the execution
        // produced.
        for p in [small, big] {
            let diag = (p.n as f64).sqrt();
            assert!(
                (p.peak_live as f64) <= 8.0 * diag,
                "n={}: peak live {} exceeds 8·√n = {:.0}",
                p.n,
                p.peak_live,
                8.0 * diag
            );
            assert!(
                p.peak_live <= p.peak_tracked && p.peak_tracked < p.instances,
                "n={}: peak live {} / tracked {} vs {} instances",
                p.n,
                p.peak_live,
                p.peak_tracked,
                p.instances
            );
        }
        assert!(
            big.peak_tracked * 2 < big.instances,
            "peak tracked {} vs {} instances — no full-trace retention",
            big.peak_tracked,
            big.instances
        );
        // Sub-linear growth: 5× the nodes must grow the live frontier by
        // roughly √5, nowhere near 5×.
        assert!(
            big.peak_live < 3 * small.peak_live,
            "peak live grew {} → {} across a 5× size step — frontier \
             tracking must be sub-linear",
            small.peak_live,
            big.peak_live
        );
        assert!(res.aggregate_events_per_sec > 0.0);
    }

    /// Sharded and sequential sweeps agree on every deterministic workload
    /// column, and the sharded run reports non-trivial shard diagnostics.
    #[test]
    fn sharded_sweep_matches_sequential_workload_columns() {
        let seq = run(&[600], &TrialRunner::new(1, 2));
        let sh = run(&[600], &TrialRunner::new(1, 2).with_shards(4));
        let (s, p) = (&seq.points[0], &sh.points[0]);
        assert_eq!(
            (
                s.events,
                s.instances,
                s.completion,
                s.peak_live,
                s.peak_tracked,
                s.violations
            ),
            (
                p.events,
                p.instances,
                p.completion,
                p.peak_live,
                p.peak_tracked,
                p.violations
            ),
            "sharding must not change any measured workload value"
        );
        assert_eq!(s.shards, 0);
        assert_eq!(p.shards, 4);
        assert_eq!((s.peak_shard_pending, s.barrier_slack), (0, 0));
        assert!(
            p.peak_shard_pending > 0,
            "sharded run tracks per-shard peaks"
        );
    }

    // Jobs invariance of the deterministic columns lives in the
    // determinism suite (tests/determinism.rs), alongside the other
    // experiments' entries.

    #[test]
    fn capture_replays_with_valid_traces() {
        let runner = TrialRunner::new(1, 2).with_trace_capture(true);
        let res = run(&[64], &runner);
        assert!(!res.outliers.is_empty());
        for o in &res.outliers {
            assert!(!o.outlier.trace.is_empty(), "{}: empty trace", o.label);
            let v = o.outlier.validation.as_ref().expect("capture validates");
            assert!(v.is_ok(), "{}: {v}", o.label);
        }
    }
}
