//! `SCALE` — runtime throughput and streaming-validation memory at
//! `n` up to 10⁶ (10⁵ in smoke mode), measured on **three engines side by
//! side**: the sequential runtime, the fused sharded queue, and the
//! thread-per-shard drain.
//!
//! This experiment is about the *system*, not the paper: it sweeps BMMB
//! floods over large `G′ = G` jittered-grid duals
//! ([`generators::grid_grey_zone_network`] with grey probability 0 — the
//! O(n) generator with an analytic diameter, so topology construction
//! never dominates the measurement) with the streaming
//! [`OnlineValidator`](amac_mac::OnlineValidator) attached, and reports
//!
//! * **seq / fused / thr ev/s** — wall-clock runtime throughput of each
//!   engine on the identical workload (the wall-clock columns exempt from
//!   the byte-identity contract, like the JSON wall clock), plus the
//!   **thr/fused** speedup ratio — the parallel-speedup trajectory
//!   `BENCH_scale.json` records;
//! * **peak live / peak tracked** — the validator's peak in-flight state,
//!   the evidence that conformance checking no longer retains the
//!   execution: at `n = 10⁵` the validator tracks a few thousand instance
//!   records while the execution produces millions of events;
//! * **shards / threads / peak shard q / barrier slack** — the sharded
//!   engines' configuration and diagnostics: the max per-shard peak
//!   pending-event count and the total simulated-time slack shards
//!   accumulated at conservative-window barriers (from the fused run,
//!   deterministic for a given `K`). Sharding and threading never change
//!   any workload column (`tests/shard_equivalence.rs` proves
//!   byte-identical traces; every point below re-asserts the cheap
//!   version of that claim inline);
//! * **violations** — always 0: every sweep point is a fully validated
//!   execution.
//!
//! Before the observer refactor these sweeps were memory-bound: a
//! validated run materialized the full trace (O(events)) and re-scanned it
//! post hoc. The pre-refactor pin recorded in the table notes is the
//! anchor for the throughput trajectory in `BENCH_scale.json`; the
//! criterion bench `flood_grid_sharded_threads` (micro.rs) pins the
//! fused-vs-threaded ratio at a fixed small size.

use super::LabeledOutlier;
use crate::engine::{default_jobs, CellResult, TrialRunner};
use crate::table::Table;
use amac_core::{run_bmmb, Assignment, MmbReport, RunOptions};
use amac_graph::{generators, NodeId};
use amac_mac::policies::EagerPolicy;
use amac_mac::MacConfig;
use amac_sim::SimRng;
use std::time::Instant;

/// One measured scale point: the identical workload timed on all three
/// engines.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Network size (nodes on the jittered grid).
    pub n: usize,
    /// Shard count of the fused and threaded runs.
    pub shards: usize,
    /// Worker-thread count of the threaded run.
    pub shard_threads: usize,
    /// Total runtime events processed (identical on all three engines).
    pub events: u64,
    /// MAC instances broadcast.
    pub instances: u64,
    /// Completion time of the flood, in ticks.
    pub completion: u64,
    /// Peak live instances tracked by the streaming validator.
    pub peak_live: u64,
    /// Peak live + recently-retired instance records (the validator's
    /// whole per-instance memory).
    pub peak_tracked: u64,
    /// Max over shards of the peak per-shard pending-event count, from
    /// the fused run.
    pub peak_shard_pending: u64,
    /// Total simulated-time ticks of conservative-window slack accumulated
    /// at shard barriers, from the fused run.
    pub barrier_slack: u64,
    /// Validation violations (must be 0).
    pub violations: u64,
    /// Sequential-engine wall-clock events per second (machine-dependent;
    /// exempt from the byte-identity contract, as are the next three).
    pub seq_events_per_sec: f64,
    /// Fused sharded-engine wall-clock events per second.
    pub fused_events_per_sec: f64,
    /// Thread-per-shard engine wall-clock events per second.
    pub threaded_events_per_sec: f64,
    /// `threaded_events_per_sec / fused_events_per_sec` — the parallel
    /// speedup the threaded drain buys over the fused coordinator.
    pub threaded_speedup: f64,
}

/// Results of the `SCALE` experiment.
#[derive(Clone, Debug)]
pub struct Scale {
    /// One point per swept `n`.
    pub points: Vec<ScalePoint>,
    /// Aggregate threaded-engine wall-clock throughput over the whole
    /// sweep: total events processed divided by total measured seconds
    /// (machine-dependent).
    pub aggregate_events_per_sec: f64,
    /// Aggregate fused-engine wall-clock throughput over the whole sweep.
    pub aggregate_fused_events_per_sec: f64,
    /// Captured outlier traces (capture replays re-run with a trace
    /// observer attached; empty otherwise).
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table. The four `ev/s` columns, the speedup column, and
    /// the aggregate note are wall clock; the shard-diagnostic columns
    /// depend on the shard configuration; every other cell is
    /// byte-identical across `--jobs`, `--shards`, `--shard-threads`, and
    /// machines.
    pub table: Table,
}

/// The workload is a deterministic BMMB grid flood under the eager
/// scheduler: extra trials would re-measure identical values.
pub const DETERMINISTIC: bool = true;

/// Pre-refactor pin (trace-recording runtime + post-hoc validation) on the
/// n=1000, k=2 flooding workload, recorded before the observer refactor
/// landed — the anchor the ≥2× streaming-pipeline claim is measured
/// against. Machine: the CI-class box this workspace is developed on.
pub const PRE_REFACTOR_PIN_EVENTS_PER_SEC: f64 = 3_200_000.0;

/// Messages flooded per point (small and fixed: the sweep scales `n`).
const MESSAGES: usize = 2;

/// Shard count of the fused and threaded measurement lanes when the
/// runner carries no `--shards`.
const DEFAULT_SHARDS: usize = 4;

/// Worker-thread request of the threaded lane when the runner carries no
/// `--shard-threads` (clamped to the available cores).
const DEFAULT_THREADS: usize = 4;

/// Topology seed. Only the grid jitter flows from it (grey probability is
/// 0, so `G′ = G` and the edge set is fixed by the grid arithmetic).
const TOPOLOGY_SEED: u64 = 0x5CA1E;

fn measure(n: usize, shards: usize, threads: usize, capture: bool) -> (MmbReport, f64) {
    let mut rng = SimRng::seed(TOPOLOGY_SEED ^ n as u64);
    let net = generators::grid_grey_zone_network(n, 0.0, &mut rng).expect("n >= 1");
    let assignment = Assignment::all_at(NodeId::new(0), MESSAGES);
    let config = MacConfig::from_ticks(2, 32);
    let options = if capture {
        RunOptions::default().capturing_trace()
    } else {
        RunOptions::default() // streaming validation on, no trace
    }
    .with_shards(shards)
    .with_shard_threads(threads);
    let started = Instant::now();
    let report = run_bmmb(&net.dual, config, &assignment, EagerPolicy::new(), &options);
    (report, started.elapsed().as_secs_f64())
}

/// Runs the scale sweep over the given network sizes, timing every point
/// on the sequential runtime, the fused sharded queue, and the
/// thread-per-shard drain. The runner's `--shards` picks the shard count
/// of the two sharded lanes (default 4) and `--shard-threads` the
/// threaded lane's worker request (default 4, clamped to the cores).
pub fn run(ns: &[usize], runner: &TrialRunner) -> Scale {
    let shards = if runner.shards() > 0 {
        runner.shards()
    } else {
        DEFAULT_SHARDS
    };
    // The wall-clock lanes run outside the engine pool, one at a time, so
    // the `--jobs` oversubscription cap does not apply here — only the
    // physical core count does.
    let threads = if runner.shard_threads() > 0 {
        runner.shard_threads()
    } else {
        DEFAULT_THREADS
    }
    .min(default_jobs())
    .max(1);
    let runner = runner.deterministic();
    // The engine sweep exists solely to serve `--dump-traces` outlier
    // capture; without capture its results would be discarded, so skip
    // the duplicate executions entirely (the measurement pass below is
    // the experiment).
    let outliers = if runner.captures_traces() {
        let widths = vec![1usize; ns.len()];
        let run = runner.run_sweep(
            0,
            &widths,
            |_trial| (),
            |_, cell| {
                let (report, _) = measure(ns[cell.point], shards, 0, cell.capture_requested());
                CellResult::scalar(report.completion_ticks() as f64)
                    .with_capture(super::mmb_capture(&report))
            },
        );
        super::collect_outliers(&run, |i| format!("n={}", ns[i]))
    } else {
        Vec::new()
    };

    // The wall-clock lanes are measured outside the engine, sequentially
    // and after a warm-up, so worker contention never pollutes the
    // throughput numbers (and the engine's aggregates stay fully
    // deterministic).
    let _warmup = measure(ns[0], shards, threads, false);
    let mut total_events = 0u64;
    let mut total_threaded_secs = 0.0f64;
    let mut total_fused_secs = 0.0f64;
    let points: Vec<ScalePoint> = ns
        .iter()
        .map(|&n| {
            let (seq_report, seq_secs) = measure(n, 0, 0, false);
            let (fused_report, fused_secs) = measure(n, shards, 0, false);
            let (thr_report, thr_secs) = measure(n, shards, threads, false);
            let stats = seq_report
                .validator_stats
                .expect("scale runs with streaming validation attached");
            let violations = seq_report
                .validation
                .as_ref()
                .map_or(0, |v| v.violations().len() as u64);
            assert_eq!(
                seq_report.missing, 0,
                "scale flood must complete at n={n}: {seq_report}"
            );
            let events = seq_report.counters.get("events");
            // The cheap inline re-proof of the byte-identity contract:
            // all three engines agree on every workload observable.
            for (engine, report) in [("fused", &fused_report), ("threaded", &thr_report)] {
                assert_eq!(
                    (
                        report.counters.get("events"),
                        report.instances,
                        report.completion_ticks(),
                        report.missing,
                    ),
                    (
                        events,
                        seq_report.instances,
                        seq_report.completion_ticks(),
                        0
                    ),
                    "{engine} engine diverged from sequential at n={n}"
                );
            }
            total_events += events;
            total_threaded_secs += thr_secs;
            total_fused_secs += fused_secs;
            let (peak_shard_pending, barrier_slack) =
                fused_report.shard_stats.as_ref().map_or((0, 0), |s| {
                    (s.max_peak_pending() as u64, s.total_slack_ticks())
                });
            let fused_eps = events as f64 / fused_secs.max(1e-9);
            let thr_eps = events as f64 / thr_secs.max(1e-9);
            ScalePoint {
                n,
                shards,
                shard_threads: threads,
                events,
                instances: seq_report.instances as u64,
                completion: seq_report.completion_ticks(),
                peak_live: stats.peak_live as u64,
                peak_tracked: stats.peak_tracked as u64,
                peak_shard_pending,
                barrier_slack,
                violations,
                seq_events_per_sec: events as f64 / seq_secs.max(1e-9),
                fused_events_per_sec: fused_eps,
                threaded_events_per_sec: thr_eps,
                threaded_speedup: thr_eps / fused_eps.max(1e-9),
            }
        })
        .collect();
    let aggregate_events_per_sec = total_events as f64 / total_threaded_secs.max(1e-9);
    let aggregate_fused_events_per_sec = total_events as f64 / total_fused_secs.max(1e-9);

    let mut table = Table::new(
        format!(
            "SCALE  BMMB flood, G'=G jittered grid, streaming validation (k={MESSAGES}, eager); \
             sequential vs fused-sharded vs thread-per-shard"
        ),
        &[
            "n",
            "shards",
            "threads",
            "events",
            "instances",
            "completion",
            "peak live",
            "peak tracked",
            "peak shard q",
            "barrier slack",
            "seq ev/s",
            "fused ev/s",
            "thr ev/s",
            "thr/fused",
            "violations",
        ],
    );
    for p in &points {
        table.row([
            p.n.to_string(),
            p.shards.to_string(),
            p.shard_threads.to_string(),
            p.events.to_string(),
            p.instances.to_string(),
            p.completion.to_string(),
            p.peak_live.to_string(),
            p.peak_tracked.to_string(),
            p.peak_shard_pending.to_string(),
            p.barrier_slack.to_string(),
            format!("{:.2e}", p.seq_events_per_sec),
            format!("{:.2e}", p.fused_events_per_sec),
            format!("{:.2e}", p.threaded_events_per_sec),
            format!("{:.2}x", p.threaded_speedup),
            p.violations.to_string(),
        ]);
    }
    table.note(format!(
        "aggregate: threaded {aggregate_events_per_sec:.2e} events/s vs fused \
         {aggregate_fused_events_per_sec:.2e} events/s over the sweep ({total_events} events, \
         {shards} shard(s), {threads} worker(s)); the criterion bench flood_grid_sharded_threads \
         pins the same fused-vs-threaded ratio at fixed size",
    ));
    table.note(
        "seq/fused/thr ev/s, thr/fused, and the aggregate are wall clock (machine-dependent) and \
         exempt from the byte-identity contract; shards/threads/peak shard q/barrier slack \
         describe the engine configuration (deterministic for a given --shards); every other \
         column is invariant across --jobs, --shards, and --shard-threads — each point asserts \
         events/instances/completion equality across all three engines inline",
    );
    table.note(format!(
        "peak live/tracked = streaming validator state: bounded by in-flight instances, \
         not execution length (pre-refactor pipeline retained the full trace, \
         pin {PRE_REFACTOR_PIN_EVENTS_PER_SEC:.1e} events/s on n=1k)",
    ));

    Scale {
        points,
        aggregate_events_per_sec,
        aggregate_fused_events_per_sec,
        outliers,
        table,
    }
}

/// Default parameterisation: 10³ → 10⁶ on the jittered grid. The 10⁶
/// point is tens of seconds wall clock per engine (14M events; see the
/// worked example in EXPERIMENTS.md) — full mode only, smoke stops at
/// 10⁵.
pub fn run_default_with(runner: &TrialRunner) -> Scale {
    run(&[1000, 10_000, 100_000, 1_000_000], runner)
}

/// Smoke parameterisation: seconds-scale in release builds, but still
/// driving a fully validated n=10⁵ execution end-to-end on all three
/// engines (the acceptance bar for the threaded simulator; CI runs it
/// with `--shards 4 --shard-threads 2`).
pub fn run_smoke_with(runner: &TrialRunner) -> Scale {
    run(&[1000, 100_000], runner)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion of the observer refactor, re-derived for
    /// the grid workload: an n=5,000 MMB execution completes end-to-end
    /// with the streaming validator attached, zero violations, and no
    /// full-trace retention — on a grid the flood frontier is O(√n) nodes
    /// wide, and the validator's peak state tracks that frontier, not the
    /// execution volume. (`run_smoke_with` itself drives n=10⁵, sized for
    /// release-mode CI — too slow for a debug-build unit test, so this
    /// drives `run` directly.)
    #[test]
    fn n5000_grid_flood_has_bounded_validator_state() {
        let res = run(&[1000, 5000], &TrialRunner::new(1, 2));
        assert_eq!(res.points.len(), 2);
        let (small, big) = (&res.points[0], &res.points[1]);
        assert_eq!(big.n, 5000);
        assert_eq!(big.violations, 0, "streaming validation must pass");
        assert!(big.completion > 0);
        assert!(
            big.instances >= 2 * 5000 - 1,
            "every node rebroadcasts every message"
        );
        // Frontier, not volume: peak live instances stay within a small
        // multiple of the grid diagonal (~√n), and the validator never
        // retains even half of the instance records the execution
        // produced.
        for p in [small, big] {
            let diag = (p.n as f64).sqrt();
            assert!(
                (p.peak_live as f64) <= 8.0 * diag,
                "n={}: peak live {} exceeds 8·√n = {:.0}",
                p.n,
                p.peak_live,
                8.0 * diag
            );
            assert!(
                p.peak_live <= p.peak_tracked && p.peak_tracked < p.instances,
                "n={}: peak live {} / tracked {} vs {} instances",
                p.n,
                p.peak_live,
                p.peak_tracked,
                p.instances
            );
        }
        assert!(
            big.peak_tracked * 2 < big.instances,
            "peak tracked {} vs {} instances — no full-trace retention",
            big.peak_tracked,
            big.instances
        );
        // Sub-linear growth: 5× the nodes must grow the live frontier by
        // roughly √5, nowhere near 5×.
        assert!(
            big.peak_live < 3 * small.peak_live,
            "peak live grew {} → {} across a 5× size step — frontier \
             tracking must be sub-linear",
            small.peak_live,
            big.peak_live
        );
        assert!(res.aggregate_events_per_sec > 0.0);
        assert!(res.aggregate_fused_events_per_sec > 0.0);
    }

    /// Every point times all three engines on the identical workload:
    /// the run itself asserts events/instances/completion equality
    /// inline, so here we check the configuration and diagnostics
    /// surface — shard and thread counts recorded per point, non-trivial
    /// fused diagnostics, positive throughput in every lane.
    #[test]
    fn three_engine_lanes_share_the_workload_columns() {
        let res = run(
            &[600],
            &TrialRunner::new(1, 2).with_shards(4).with_shard_threads(2),
        );
        let p = &res.points[0];
        assert_eq!(p.shards, 4);
        assert!(p.shard_threads >= 1, "threaded lane always runs workers");
        assert!(p.peak_shard_pending > 0, "fused run tracks per-shard peaks");
        assert!(p.seq_events_per_sec > 0.0);
        assert!(p.fused_events_per_sec > 0.0);
        assert!(p.threaded_events_per_sec > 0.0);
        assert!(p.threaded_speedup > 0.0);
    }

    /// Without `--shards`/`--shard-threads` the sharded lanes fall back
    /// to the default configuration instead of degenerating to three
    /// sequential runs.
    #[test]
    fn default_runner_still_exercises_all_three_engines() {
        let res = run(&[400], &TrialRunner::new(1, 2));
        let p = &res.points[0];
        assert_eq!(p.shards, DEFAULT_SHARDS);
        assert!(p.shard_threads >= 1);
        assert!(p.peak_shard_pending > 0);
    }

    // Jobs invariance of the deterministic columns lives in the
    // determinism suite (tests/determinism.rs), alongside the other
    // experiments' entries.

    #[test]
    fn capture_replays_with_valid_traces() {
        let runner = TrialRunner::new(1, 2).with_trace_capture(true);
        let res = run(&[64], &runner);
        assert!(!res.outliers.is_empty());
        for o in &res.outliers {
            assert!(!o.outlier.trace.is_empty(), "{}: empty trace", o.label);
            let v = o.outlier.validation.as_ref().expect("capture validates");
            assert!(v.is_ok(), "{}: {v}", o.label);
        }
    }
}
