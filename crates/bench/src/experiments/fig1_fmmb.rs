//! `F1-ENH` — Figure 1, enhanced model, grey-zone `G′`:
//! FMMB completes in `O((D·log n + k·log n + log³ n)·F_prog)` w.h.p.
//! (Theorem 4.1) — with **no** `F_ack` term.
//!
//! Two sweeps:
//!
//! * the **crossover** sweep holds the network fixed and scales `F_ack`:
//!   BMMB (standard model) degrades linearly while FMMB stays flat, and
//!   the winner flips once `F_ack/F_prog` is large enough — the paper's
//!   case for the abort interface;
//! * the **size** sweep grows `n` (at constant deployment density) and
//!   fits FMMB's completion rounds against the Theorem 4.1 round bound.

use super::{LabeledOutlier, SweepPoint};
use crate::engine::{CellResult, TrialRunner, TrialStats};
use crate::fit::{proportional_fit, ProportionalFit};
use crate::table::{ci_cell, mean_cell, Table};
use amac_core::{bounds, run_bmmb, run_fmmb, Assignment, FmmbParams};
use amac_graph::generators::{connected_grey_zone_network, GreyZoneConfig, GreyZoneNetwork};
use amac_mac::policies::LazyPolicy;
use amac_mac::MacConfig;
use amac_sim::SimRng;

/// One crossover row: the same workload under both algorithms, aggregated
/// over the trials.
#[derive(Clone, Copy, Debug)]
pub struct CrossoverPoint {
    /// `F_ack` in ticks (`F_prog` fixed).
    pub f_ack: u64,
    /// BMMB completion ticks (standard MAC layer) over the trials.
    pub bmmb: TrialStats,
    /// FMMB completion ticks (enhanced MAC layer) over the trials.
    pub fmmb: TrialStats,
}

/// Results of the `F1-ENH` experiment.
#[derive(Clone, Debug)]
pub struct Fig1Fmmb {
    /// Crossover sweep over `F_ack`.
    pub crossover: Vec<CrossoverPoint>,
    /// Size sweep: FMMB completion vs the Theorem 4.1 bound.
    pub size_sweep: Vec<SweepPoint>,
    /// Proportional fit of FMMB time vs the Theorem 4.1 bound formula.
    pub bound_fit: ProportionalFit,
    /// The `F_ack` at which FMMB first beats BMMB, if any.
    pub crossover_f_ack: Option<u64>,
    /// Captured outlier traces per sweep point (empty unless the runner
    /// has trace capture enabled).
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table.
    pub table: Table,
}

/// Per-trial shared state: the crossover workload plus one sampled
/// workload per size-sweep point, all drawn from the trial's stream in a
/// fixed order.
struct TrialSetup {
    trial_seed: u64,
    cross_net: GreyZoneNetwork,
    cross_assignment: Assignment,
    cross_params: FmmbParams,
    size: Vec<SizeSetup>,
}

struct SizeSetup {
    net: GreyZoneNetwork,
    assignment: Assignment,
    d: usize,
    params: FmmbParams,
}

/// Runs the experiment.
///
/// `density` is nodes per unit area for the size sweep (the side length
/// grows as `sqrt(n/density)`, keeping degree roughly constant so `D`
/// grows with `sqrt(n)`).
///
/// Every trial samples its own grey-zone networks and assignments from its
/// split seed; the Theorem 4.1 bound depends on each trial's sampled
/// diameter, so bounds are aggregated alongside the measurements and the
/// table reports mean-vs-mean.
#[allow(clippy::too_many_arguments)]
pub fn run(
    f_prog: u64,
    f_acks: &[u64],
    crossover_n: usize,
    ns: &[usize],
    density: f64,
    k: usize,
    seed: u64,
    runner: &TrialRunner,
) -> Fig1Fmmb {
    // Points: [bmmb, fmmb] per f_ack (one cell each), then one two-lane
    // [measured, bound] point per n. The per-trial networks are sampled
    // once in setup — in the same stream order as the historical
    // whole-sweep closure — and every cell of the trial reads them.
    let widths: Vec<usize> = std::iter::repeat(1)
        .take(2 * f_acks.len())
        .chain(std::iter::repeat(2).take(ns.len()))
        .collect();
    let shards = runner.shards();
    let shard_threads = runner.effective_shard_threads();
    let run = runner.run_sweep(
        seed,
        &widths,
        |trial| {
            let trial_seed = trial.seed(seed);
            let mut rng = SimRng::seed(trial_seed);
            let side = (crossover_n as f64 / density).sqrt();
            let cross_net = connected_grey_zone_network(
                &GreyZoneConfig::new(crossover_n, side).with_c(2.0),
                500,
                &mut rng,
            )
            .expect("connected sample");
            let cross_assignment = Assignment::random(crossover_n, k, &mut rng);
            let cross_params = FmmbParams::new(k, cross_net.dual.diameter());
            let size = ns
                .iter()
                .map(|&n| {
                    let side = (n as f64 / density).sqrt();
                    let net = connected_grey_zone_network(
                        &GreyZoneConfig::new(n, side).with_c(2.0),
                        500,
                        &mut rng,
                    )
                    .expect("connected sample");
                    let assignment = Assignment::random(n, k, &mut rng);
                    let d = net.dual.diameter();
                    SizeSetup {
                        net,
                        assignment,
                        d,
                        params: FmmbParams::new(k, d),
                    }
                })
                .collect();
            TrialSetup {
                trial_seed,
                cross_net,
                cross_assignment,
                cross_params,
                size,
            }
        },
        |setup, cell| {
            let options = super::cell_options(cell.capture_requested(), shards, shard_threads)
                .stopping_on_completion();
            if cell.point < 2 * f_acks.len() {
                let f_ack = f_acks[cell.point / 2];
                let cfg = MacConfig::from_ticks(f_prog, f_ack);
                if cell.point % 2 == 0 {
                    let bmmb = run_bmmb(
                        &setup.cross_net.dual,
                        cfg,
                        &setup.cross_assignment,
                        LazyPolicy::new().prefer_duplicates(),
                        &options,
                    );
                    CellResult::scalar(bmmb.completion_ticks() as f64)
                        .with_capture(super::mmb_capture(&bmmb))
                        .with_shard_stats(bmmb.shard_stats.clone())
                } else {
                    let fmmb = run_fmmb(
                        &setup.cross_net.dual,
                        cfg.enhanced(),
                        &setup.cross_assignment,
                        &setup.cross_params,
                        setup.trial_seed ^ 0xF,
                        LazyPolicy::new(),
                        &options,
                    );
                    // An unlucky trial can exhaust its whole schedule
                    // without solving MMB (the bound is only w.h.p.);
                    // record the schedule-end time instead of panicking —
                    // a lower bound on the true completion time.
                    CellResult::scalar(super::ticks_or_end(fmmb.completion, fmmb.end_time) as f64)
                        .with_capture(super::fmmb_capture(&fmmb))
                        .with_shard_stats(fmmb.shard_stats.clone())
                }
            } else {
                // Size sweep (fixed moderate F_ack; FMMB does not depend
                // on it).
                let idx = cell.point - 2 * f_acks.len();
                let n = ns[idx];
                let s = &setup.size[idx];
                let cfg = MacConfig::from_ticks(f_prog, 16 * f_prog).enhanced();
                let report = run_fmmb(
                    &s.net.dual,
                    cfg,
                    &s.assignment,
                    &s.params,
                    setup.trial_seed ^ (n as u64),
                    LazyPolicy::new(),
                    &options,
                );
                CellResult::vector(vec![
                    super::ticks_or_end(report.completion, report.end_time) as f64,
                    bounds::fmmb_enhanced(n, s.d, k, &cfg).ticks().max(1) as f64,
                ])
                .with_capture(super::fmmb_capture(&report))
                .with_shard_stats(report.shard_stats.clone())
            }
        },
    );
    let label = |i: usize| {
        if i < 2 * f_acks.len() {
            format!(
                "{}-Fack={}",
                if i % 2 == 0 { "bmmb" } else { "fmmb" },
                f_acks[i / 2]
            )
        } else {
            format!("n={}", ns[i - 2 * f_acks.len()])
        }
    };
    let outliers = super::collect_outliers(&run, label);

    let (crossover_points, size_points) = run.points().split_at(2 * f_acks.len());
    let crossover: Vec<CrossoverPoint> = f_acks
        .iter()
        .zip(crossover_points.chunks_exact(2))
        .map(|(&f_ack, pair)| CrossoverPoint {
            f_ack,
            bmmb: TrialStats::from_aggregate(pair[0].primary()),
            fmmb: TrialStats::from_aggregate(pair[1].primary()),
        })
        .collect();
    let crossover_f_ack = crossover
        .iter()
        .find(|p| p.fmmb.mean < p.bmmb.mean)
        .map(|p| p.f_ack);

    let size_sweep: Vec<SweepPoint> = ns
        .iter()
        .zip(size_points)
        .map(|(&n, p)| SweepPoint {
            param: n,
            measured: TrialStats::from_aggregate(p.lane(0)),
            bound: (p.lane(1).mean().round() as u64).max(1),
        })
        .collect();
    let bound_fit = proportional_fit(
        &size_sweep
            .iter()
            .map(SweepPoint::as_fit_point)
            .collect::<Vec<_>>(),
    );

    let mut table = Table::new(
        format!("F1-ENH  FMMB vs BMMB, grey zone G' (n={crossover_n}, k={k}, F_prog={f_prog})"),
        &["sweep", "value", "BMMB", "FMMB", "ci95 (FMMB)", "winner"],
    );
    for p in &crossover {
        table.row([
            "F_ack".to_string(),
            p.f_ack.to_string(),
            mean_cell(&p.bmmb),
            mean_cell(&p.fmmb),
            ci_cell(&p.fmmb),
            if p.fmmb.mean < p.bmmb.mean {
                "FMMB"
            } else {
                "BMMB"
            }
            .to_string(),
        ]);
    }
    for p in &size_sweep {
        table.row([
            "n".to_string(),
            p.param.to_string(),
            String::new(),
            format!("{} (bound {})", mean_cell(&p.measured), p.bound),
            ci_cell(&p.measured),
            format!("{:.2}x", p.ratio()),
        ]);
    }
    table.note(format!(
        "{}, each on a fresh grey-zone sample",
        super::trials_phrase(runner, &run)
    ));
    match crossover_f_ack {
        Some(f) => table.note(format!(
            "FMMB wins from F_ack = {f} on (F_ack/F_prog = {}); its time is F_ack-independent",
            f / f_prog
        )),
        None => table.note("no crossover in the swept F_ack range"),
    };
    table.note(format!(
        "FMMB time <= {:.2} x (D log n + k log n + log^3 n) * F_prog across the size sweep",
        bound_fit.max_ratio
    ));

    super::append_plots(&mut table, runner, &run, label);
    super::append_shard_note(&mut table, &run);

    Fig1Fmmb {
        crossover,
        size_sweep,
        bound_fit,
        crossover_f_ack,
        outliers,
        table,
    }
}

/// Default parameterisation at an explicit trial/job count.
pub fn run_default_with(runner: &TrialRunner) -> Fig1Fmmb {
    run(
        2,
        &[8, 64, 512, 4096, 16384],
        48,
        &[24, 48, 96],
        2.0,
        4,
        5,
        runner,
    )
}

/// Default parameterisation used by `cargo bench` (single trial).
pub fn run_default() -> Fig1Fmmb {
    run_default_with(&TrialRunner::single())
}

/// Smoke parameterisation at an explicit trial/job count.
pub fn run_smoke_with(runner: &TrialRunner) -> Fig1Fmmb {
    run(2, &[8, 32], 12, &[12, 16], 2.0, 2, 5, runner)
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI: the
/// same code paths as [`run_default`], tiny sweeps, single trial.
pub fn run_smoke() -> Fig1Fmmb {
    run_smoke_with(&TrialRunner::single())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmmb_time_is_f_ack_independent() {
        let res = run(2, &[16, 1024], 24, &[16], 2.0, 2, 9, &TrialRunner::single());
        let lo = res.crossover[0].fmmb;
        let hi = res.crossover[1].fmmb;
        // 64x larger F_ack: FMMB time unchanged (same schedule, same seed).
        assert_eq!(lo.mean, hi.mean, "FMMB must not depend on F_ack");
        // BMMB time grows dramatically.
        assert!(res.crossover[1].bmmb.mean > 4.0 * res.crossover[0].bmmb.mean);
    }

    #[test]
    fn crossover_exists_for_large_f_ack() {
        let res = run(2, &[8, 16384], 32, &[16], 2.0, 3, 4, &TrialRunner::single());
        assert!(
            res.crossover_f_ack.is_some(),
            "FMMB should win at F_ack/F_prog = 8192"
        );
    }

    #[test]
    fn multi_trial_crossover_aggregates_fresh_samples() {
        let res = run(2, &[8, 512], 12, &[12], 2.0, 2, 5, &TrialRunner::new(3, 2));
        for p in &res.crossover {
            assert_eq!(p.bmmb.trials, 3);
            assert_eq!(p.fmmb.trials, 3);
            assert!(p.bmmb.min <= p.bmmb.mean && p.bmmb.mean <= p.bmmb.max);
        }
        // Different trials sample different networks, so the large-F_ack
        // BMMB point should show actual spread.
        assert!(
            res.crossover[1].bmmb.max > res.crossover[1].bmmb.min,
            "fresh samples per trial should vary"
        );
    }
}
