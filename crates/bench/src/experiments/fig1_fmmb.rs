//! `F1-ENH` — Figure 1, enhanced model, grey-zone `G′`:
//! FMMB completes in `O((D·log n + k·log n + log³ n)·F_prog)` w.h.p.
//! (Theorem 4.1) — with **no** `F_ack` term.
//!
//! Two sweeps:
//!
//! * the **crossover** sweep holds the network fixed and scales `F_ack`:
//!   BMMB (standard model) degrades linearly while FMMB stays flat, and
//!   the winner flips once `F_ack/F_prog` is large enough — the paper's
//!   case for the abort interface;
//! * the **size** sweep grows `n` (at constant deployment density) and
//!   fits FMMB's completion rounds against the Theorem 4.1 round bound.

use super::SweepPoint;
use crate::fit::{proportional_fit, ProportionalFit};
use crate::table::Table;
use amac_core::{bounds, run_bmmb, run_fmmb, Assignment, FmmbParams, RunOptions};
use amac_graph::generators::{connected_grey_zone_network, GreyZoneConfig};
use amac_mac::policies::LazyPolicy;
use amac_mac::MacConfig;
use amac_sim::SimRng;

/// One crossover row: the same workload under both algorithms.
#[derive(Clone, Copy, Debug)]
pub struct CrossoverPoint {
    /// `F_ack` in ticks (`F_prog` fixed).
    pub f_ack: u64,
    /// BMMB completion ticks (standard MAC layer).
    pub bmmb: u64,
    /// FMMB completion ticks (enhanced MAC layer).
    pub fmmb: u64,
}

/// Results of the `F1-ENH` experiment.
#[derive(Clone, Debug)]
pub struct Fig1Fmmb {
    /// Crossover sweep over `F_ack`.
    pub crossover: Vec<CrossoverPoint>,
    /// Size sweep: FMMB completion vs the Theorem 4.1 bound.
    pub size_sweep: Vec<SweepPoint>,
    /// Proportional fit of FMMB time vs the Theorem 4.1 bound formula.
    pub bound_fit: ProportionalFit,
    /// The `F_ack` at which FMMB first beats BMMB, if any.
    pub crossover_f_ack: Option<u64>,
    /// Rendered table.
    pub table: Table,
}

/// Runs the experiment.
///
/// `density` is nodes per unit area for the size sweep (the side length
/// grows as `sqrt(n/density)`, keeping degree roughly constant so `D`
/// grows with `sqrt(n)`).
#[allow(clippy::too_many_arguments)]
pub fn run(
    f_prog: u64,
    f_acks: &[u64],
    crossover_n: usize,
    ns: &[usize],
    density: f64,
    k: usize,
    seed: u64,
) -> Fig1Fmmb {
    let mut rng = SimRng::seed(seed);

    // --- Crossover sweep ---
    let side = (crossover_n as f64 / density).sqrt();
    let net = connected_grey_zone_network(
        &GreyZoneConfig::new(crossover_n, side).with_c(2.0),
        500,
        &mut rng,
    )
    .expect("connected sample");
    let assignment = Assignment::random(crossover_n, k, &mut rng);
    let params = FmmbParams::new(k, net.dual.diameter());
    let mut crossover = Vec::new();
    for &f_ack in f_acks {
        let cfg = MacConfig::from_ticks(f_prog, f_ack);
        let bmmb = run_bmmb(
            &net.dual,
            cfg,
            &assignment,
            LazyPolicy::new().prefer_duplicates(),
            &RunOptions::fast().stopping_on_completion(),
        );
        let fmmb = run_fmmb(
            &net.dual,
            cfg.enhanced(),
            &assignment,
            &params,
            seed ^ 0xF,
            LazyPolicy::new(),
            &RunOptions::fast().stopping_on_completion(),
        );
        crossover.push(CrossoverPoint {
            f_ack,
            bmmb: bmmb.completion_ticks(),
            fmmb: fmmb.completion_ticks(),
        });
    }
    let crossover_f_ack = crossover.iter().find(|p| p.fmmb < p.bmmb).map(|p| p.f_ack);

    // --- Size sweep (fixed moderate F_ack; FMMB does not depend on it) ---
    let cfg = MacConfig::from_ticks(f_prog, 16 * f_prog).enhanced();
    let mut size_sweep = Vec::new();
    for &n in ns {
        let side = (n as f64 / density).sqrt();
        let net =
            connected_grey_zone_network(&GreyZoneConfig::new(n, side).with_c(2.0), 500, &mut rng)
                .expect("connected sample");
        let assignment = Assignment::random(n, k, &mut rng);
        let d = net.dual.diameter();
        let params = FmmbParams::new(k, d);
        let report = run_fmmb(
            &net.dual,
            cfg,
            &assignment,
            &params,
            seed ^ (n as u64),
            LazyPolicy::new(),
            &RunOptions::fast().stopping_on_completion(),
        );
        size_sweep.push(SweepPoint {
            param: n,
            measured: super::ticks_or_end(report.completion, report.end_time),
            bound: bounds::fmmb_enhanced(n, d, k, &cfg).ticks().max(1),
        });
    }
    let bound_fit = proportional_fit(
        &size_sweep
            .iter()
            .map(SweepPoint::as_fit_point)
            .collect::<Vec<_>>(),
    );

    let mut table = Table::new(
        format!("F1-ENH  FMMB vs BMMB, grey zone G' (n={crossover_n}, k={k}, F_prog={f_prog})"),
        &["sweep", "value", "BMMB", "FMMB", "winner"],
    );
    for p in &crossover {
        table.row([
            "F_ack".to_string(),
            p.f_ack.to_string(),
            p.bmmb.to_string(),
            p.fmmb.to_string(),
            if p.fmmb < p.bmmb { "FMMB" } else { "BMMB" }.to_string(),
        ]);
    }
    for p in &size_sweep {
        table.row([
            "n".to_string(),
            p.param.to_string(),
            String::new(),
            format!("{} (bound {})", p.measured, p.bound),
            format!("{:.2}x", p.ratio()),
        ]);
    }
    match crossover_f_ack {
        Some(f) => table.note(format!(
            "FMMB wins from F_ack = {f} on (F_ack/F_prog = {}); its time is F_ack-independent",
            f / f_prog
        )),
        None => table.note("no crossover in the swept F_ack range"),
    };
    table.note(format!(
        "FMMB time <= {:.2} x (D log n + k log n + log^3 n) * F_prog across the size sweep",
        bound_fit.max_ratio
    ));

    Fig1Fmmb {
        crossover,
        size_sweep,
        bound_fit,
        crossover_f_ack,
        table,
    }
}

/// Default parameterisation used by `cargo bench` and the `repro` binary.
pub fn run_default() -> Fig1Fmmb {
    run(2, &[8, 64, 512, 4096, 16384], 48, &[24, 48, 96], 2.0, 4, 5)
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI: the
/// same code paths as [`run_default`], tiny sweeps.
pub fn run_smoke() -> Fig1Fmmb {
    run(2, &[8, 32], 12, &[12, 16], 2.0, 2, 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmmb_time_is_f_ack_independent() {
        let res = run(2, &[16, 1024], 24, &[16], 2.0, 2, 9);
        let lo = res.crossover[0].fmmb;
        let hi = res.crossover[1].fmmb;
        // 64x larger F_ack: FMMB time unchanged (same schedule, same seed).
        assert_eq!(lo, hi, "FMMB must not depend on F_ack");
        // BMMB time grows dramatically.
        assert!(res.crossover[1].bmmb > 4 * res.crossover[0].bmmb);
    }

    #[test]
    fn crossover_exists_for_large_f_ack() {
        let res = run(2, &[8, 16384], 32, &[16], 2.0, 3, 4);
        assert!(
            res.crossover_f_ack.is_some(),
            "FMMB should win at F_ack/F_prog = 8192"
        );
    }
}
