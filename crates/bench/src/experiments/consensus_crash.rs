//! `CONS` — crash-tolerant consensus on the abstract MAC layer
//! (Newport & Robinson, DISC 2018; Zhang & Tseng, 2024).
//!
//! Two sweeps over complete (single-hop, the NR18 setting) reliable
//! graphs under the lazy duplicate-feeding scheduler, with per-trial
//! random inputs and a per-trial random crash schedule drawn from the
//! cell's split stream:
//!
//! * sweep the **crash fraction** `f` at fixed `n`: `⌊f·n⌋` nodes crash at
//!   uniform times inside the protocol window, the phase count scales as
//!   `⌊f·n⌋ + 1`, so decision time grows linearly in the crash budget
//!   while the violation count stays exactly 0;
//! * sweep **`n`** at fixed `f`: same shape, budget `⌊f·n⌋` grows with
//!   `n`.
//!
//! Every trial is checked by the consensus validator
//! ([`amac_proto::validate_consensus`]): agreement, validity, integrity,
//! and termination of live nodes within the horizon. The `violations`
//! column aggregates the per-trial violation count — its mean must be
//! **0.0** at every sweep point. Captured outlier traces additionally
//! pass `amac_mac::validate` with crash events present.

use super::{LabeledOutlier, SweepPoint};
use crate::engine::{CellResult, TrialRunner, TrialStats};
use crate::table::{ci_cell, mean_cell, Table};
use amac_graph::{generators, DualGraph};
use amac_mac::policies::LazyPolicy;
use amac_mac::{FaultPlan, MacConfig};
use amac_proto::consensus::{run_consensus, ConsensusParams};

/// One measured sweep point of the consensus experiment.
#[derive(Clone, Copy, Debug)]
pub struct CrashPoint {
    /// Crash fraction `f` at this point.
    pub fraction: f64,
    /// Network size `n`.
    pub n: usize,
    /// Crash budget `⌊f·n⌋` (actual crashes injected per trial).
    pub crashes: usize,
    /// Flooding phases (`crashes + 1`).
    pub phases: u64,
    /// Decision-time statistics over the trials, in ticks.
    pub measured: TrialStats,
    /// Per-trial consensus+trace violation counts (mean must be 0).
    pub violations: TrialStats,
    /// Per-trial MAC broadcast counts — the message-cost lane; crashes
    /// silence nodes, so this *drops* as `f` grows while phases rise.
    pub broadcasts: TrialStats,
    /// The deterministic decision deadline `phases · phase_len`, in ticks.
    pub bound: u64,
}

impl CrashPoint {
    /// As a generic [`SweepPoint`] over `n` (for fitting).
    pub fn as_sweep_point(&self) -> SweepPoint {
        SweepPoint {
            param: self.n,
            measured: self.measured,
            bound: self.bound,
        }
    }
}

/// Results of the `CONS` experiment.
#[derive(Clone, Debug)]
pub struct ConsensusCrash {
    /// Sweep of the crash fraction `f` at fixed `n`.
    pub f_sweep: Vec<CrashPoint>,
    /// Sweep of `n` at fixed `f`.
    pub n_sweep: Vec<CrashPoint>,
    /// Sum of all violation-count means across points and trials — the
    /// headline acceptance number, exactly 0.0 for a correct protocol.
    pub total_violations: f64,
    /// Captured outlier traces per sweep point (empty unless the runner
    /// has trace capture enabled).
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table.
    pub table: Table,
}

fn complete_dual(n: usize) -> DualGraph {
    DualGraph::reliable(generators::complete(n).expect("n >= 1"))
}

/// Runs the experiment with explicit sweep lists.
#[allow(clippy::too_many_arguments)]
pub fn run(
    f_prog: u64,
    f_ack: u64,
    fixed_n: usize,
    fractions: &[f64],
    ns: &[usize],
    fixed_f: f64,
    seed: u64,
    runner: &TrialRunner,
) -> ConsensusCrash {
    let config = MacConfig::from_ticks(f_prog, f_ack).enhanced();
    let point_params = |point: usize| -> (usize, f64) {
        if point < fractions.len() {
            (fixed_n, fractions[point])
        } else {
            (ns[point - fractions.len()], fixed_f)
        }
    };
    let shape = |point: usize| -> (usize, usize, ConsensusParams) {
        let (n, f) = point_params(point);
        let crashes = (f * n as f64).floor() as usize;
        (n, crashes, ConsensusParams::for_crashes(crashes, &config))
    };

    // Three lanes per point: decision time, the per-trial violation
    // count, and the MAC broadcast count.
    let widths = vec![3usize; fractions.len() + ns.len()];
    let shards = runner.shards();
    let shard_threads = runner.effective_shard_threads();
    let run = runner.run_sweep(
        seed,
        &widths,
        |_trial| (),
        |_, cell| {
            let (n, crashes, params) = shape(cell.point);
            let mut rng = cell.rng.clone();
            let initial: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
            let window = amac_sim::Time::ZERO + params.phase_len.times(params.phases);
            let faults = FaultPlan::random_crashes(n, crashes, window, &mut rng);
            let report = run_consensus(
                &complete_dual(n),
                config,
                &initial,
                &params,
                faults,
                LazyPolicy::new().prefer_duplicates(),
                &super::cell_options(cell.capture_requested(), shards, shard_threads),
            );
            let ticks = super::ticks_or_end(report.completion, report.end_time) as f64;
            let violations = report.violation_count() as f64;
            let broadcasts = report.counters.get("bcast") as f64;
            let capture = report
                .trace
                .clone()
                .map(|trace| crate::engine::CellCapture {
                    trace,
                    validation: report.validation.clone(),
                });
            CellResult::vector(vec![ticks, violations, broadcasts])
                .with_capture(capture)
                .with_shard_stats(report.shard_stats.clone())
        },
    );
    let label = |i: usize| {
        let (n, f) = point_params(i);
        if i < fractions.len() {
            format!("f={f:.2}")
        } else {
            format!("n={n}")
        }
    };
    let outliers = super::collect_outliers(&run, label);

    let point_of = |i: usize| -> CrashPoint {
        let (n, f) = point_params(i);
        let (_, crashes, params) = shape(i);
        CrashPoint {
            fraction: f,
            n,
            crashes,
            phases: params.phases,
            measured: TrialStats::from_aggregate(run.point(i).lane(0)),
            violations: TrialStats::from_aggregate(run.point(i).lane(1)),
            broadcasts: TrialStats::from_aggregate(run.point(i).lane(2)),
            bound: params.phase_len.times(params.phases).ticks(),
        }
    };
    let f_sweep: Vec<CrashPoint> = (0..fractions.len()).map(point_of).collect();
    let n_sweep: Vec<CrashPoint> = (fractions.len()..fractions.len() + ns.len())
        .map(point_of)
        .collect();
    let total_violations: f64 = f_sweep
        .iter()
        .chain(&n_sweep)
        .map(|p| p.violations.mean * p.violations.trials as f64)
        .sum();

    let mut table = Table::new(
        format!(
            "CONS   crash-tolerant consensus, complete G (lazy+dup scheduler, F_prog={f_prog}, F_ack={f_ack})"
        ),
        &[
            "sweep", "value", "n", "crashes", "phases", "decided@", "ci95", "deadline", "bcasts",
            "ci95", "violations",
        ],
    );
    for (sweep, points, fixed) in [
        ("f", &f_sweep, format!("(n={fixed_n})")),
        ("n", &n_sweep, format!("(f={fixed_f:.2})")),
    ] {
        for p in points {
            table.row([
                format!("{sweep} {fixed}"),
                if sweep == "f" {
                    format!("{:.2}", p.fraction)
                } else {
                    p.n.to_string()
                },
                p.n.to_string(),
                p.crashes.to_string(),
                p.phases.to_string(),
                mean_cell(&p.measured),
                ci_cell(&p.measured),
                p.bound.to_string(),
                mean_cell(&p.broadcasts),
                ci_cell(&p.broadcasts),
                format!("{:.1}", p.violations.mean),
            ]);
        }
    }
    table.note(format!(
        "{}, fresh inputs + crash schedule per trial",
        super::trials_phrase(runner, &run)
    ));
    table.note(format!(
        "violations column: per-trial ConsensusValidator count (agreement/validity/integrity/termination); total = {total_violations:.0}"
    ));
    table.note(
        "deadline = phases * phase_len = (floor(f*n)+1)*(F_ack+2): every live node decides \
         exactly there (w.h.p. analogue of NR18 Thm 2, deterministic in this FloodSet variant)",
    );
    super::append_plots(&mut table, runner, &run, label);
    super::append_shard_note(&mut table, &run);

    ConsensusCrash {
        f_sweep,
        n_sweep,
        total_violations,
        outliers,
        table,
    }
}

/// Default parameterisation at an explicit trial/job count: crash
/// fractions 0 / 0.1 / 0.2 / 0.3 at `n = 24`, and `n` up to 48 at
/// `f = 0.2`.
pub fn run_default_with(runner: &TrialRunner) -> ConsensusCrash {
    run(
        2,
        16,
        24,
        &[0.0, 0.1, 0.2, 0.3],
        &[8, 16, 32, 48],
        0.2,
        13,
        runner,
    )
}

/// Default parameterisation (single trial).
pub fn run_default() -> ConsensusCrash {
    run_default_with(&TrialRunner::single())
}

/// Smoke parameterisation at an explicit trial/job count.
pub fn run_smoke_with(runner: &TrialRunner) -> ConsensusCrash {
    run(2, 12, 10, &[0.0, 0.3], &[8], 0.25, 13, runner)
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI.
pub fn run_smoke() -> ConsensusCrash {
    run_smoke_with(&TrialRunner::single())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_violations_across_crash_fractions() {
        // The acceptance criterion, at test scale: f in {0, 0.1, 0.3},
        // several trials each, no agreement/validity/termination failures.
        let res = run(
            2,
            12,
            12,
            &[0.0, 0.1, 0.3],
            &[8],
            0.25,
            13,
            &TrialRunner::new(4, 2),
        );
        assert_eq!(res.total_violations, 0.0, "{}", res.table);
        for p in res.f_sweep.iter().chain(&res.n_sweep) {
            assert_eq!(p.violations.max, 0.0, "no single trial may violate");
            assert!(
                p.measured.max <= p.bound as f64,
                "every trial decides by the deadline"
            );
        }
    }

    #[test]
    fn decision_time_scales_with_the_crash_budget() {
        let res = run(2, 12, 12, &[0.0, 0.3], &[], 0.2, 7, &TrialRunner::new(2, 2));
        let clean = &res.f_sweep[0];
        let crashy = &res.f_sweep[1];
        assert_eq!(clean.phases, 1);
        assert_eq!(crashy.phases, (0.3f64 * 12.0).floor() as u64 + 1);
        assert!(
            crashy.measured.mean > clean.measured.mean,
            "more budget, more phases, later decision"
        );
        // Per-phase message cost drops with crashes: a clean run
        // broadcasts n per phase, a crashy run loses the silenced nodes.
        assert!(
            crashy.broadcasts.mean / (crashy.phases as f64)
                < clean.broadcasts.mean / (clean.phases as f64) + 1.0,
            "crashed nodes must stop paying broadcasts"
        );
    }

    #[test]
    fn captured_outlier_traces_validate_with_crash_events() {
        let runner = TrialRunner::new(2, 2).with_trace_capture(true);
        let res = run(2, 12, 10, &[0.3], &[], 0.2, 5, &runner);
        assert!(!res.outliers.is_empty());
        let mut saw_crash_events = false;
        for o in &res.outliers {
            assert!(!o.outlier.trace.is_empty(), "{}: empty trace", o.label);
            saw_crash_events |= !o.outlier.trace.faults().is_empty();
            let v = o.outlier.validation.as_ref().expect("validated");
            assert!(v.is_ok(), "{}: {v}", o.label);
        }
        assert!(
            saw_crash_events,
            "f=0.3 outlier traces must carry crash events"
        );
    }
}
