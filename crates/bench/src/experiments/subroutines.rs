//! `SUB-MIS`, `SUB-GATHER`, `SUB-SPREAD` — the three FMMB subroutines,
//! measured individually with an instrumented runner:
//!
//! * **MIS** (Lemma 4.5): rounds until every node has decided (joined or
//!   covered), versus the scheduled `O(log³ n)` segment; validity rate
//!   over seeds;
//! * **gather** (Lemma 4.6): rounds from the gather segment start until
//!   every message is owned by an MIS node, versus `O(k + log n)` periods;
//! * **spread** (Lemmas 4.7–4.8): rounds from gather completion until MMB
//!   completion, versus `O((D + k)·log n)`.

use super::LabeledOutlier;
use crate::engine::{CellCapture, CellResult, TrialRunner, TrialStats};
use crate::table::{ci_cell, mean_cell, Table};
use amac_core::{Assignment, Delivered, Fmmb, FmmbParams, MessageId, MisStatus};
use amac_graph::generators::{connected_grey_zone_network, GreyZoneConfig, GreyZoneNetwork};
use amac_graph::{algo, DualGraph, NodeId, NodeSet};
use amac_mac::{validate, MacConfig, Policy, Runtime};
use amac_sim::{SimRng, Time};
use std::collections::HashSet;

/// Milestones of one instrumented FMMB run, in rounds (`F_prog + 2` ticks
/// each).
#[derive(Clone, Copy, Debug)]
pub struct Milestones {
    /// Round by which every node had decided its MIS status.
    pub all_decided_round: Option<u64>,
    /// Round by which every message was owned by some MIS node.
    pub gather_done_round: Option<u64>,
    /// Round by which the MMB problem was solved.
    pub completion_round: Option<u64>,
    /// Whether the resulting MIS was a maximal independent set of `G`.
    pub mis_valid: bool,
    /// The scheduled MIS segment length in rounds.
    pub mis_segment_rounds: u64,
    /// The gather segment start (rounds).
    pub gather_start_round: u64,
}

/// One instrumented run plus, when requested, its captured trace bundle.
pub struct InstrumentedRun {
    /// The per-round milestones the sweeps measure.
    pub milestones: Milestones,
    /// The MAC trace and validator verdict, when capture was requested.
    pub capture: Option<CellCapture>,
    /// Sharded-queue statistics when the run was sharded.
    pub shard_stats: Option<amac_sim::ShardStats>,
}

/// Runs FMMB while checking node-state milestones once per round
/// (convenience wrapper without trace capture).
pub fn run_instrumented<P: Policy>(
    dual: &DualGraph,
    config: MacConfig,
    assignment: &Assignment,
    params: &FmmbParams,
    seed: u64,
    policy: P,
) -> Milestones {
    run_instrumented_traced(dual, config, assignment, params, seed, policy, 0, 0, false).milestones
}

/// Runs FMMB while checking node-state milestones once per round; with
/// `capture` set, also records the MAC trace and validates it post-hoc,
/// and a non-zero `shards` runs the sharded event queue. Neither disturbs
/// the execution, so the milestones are identical either way.
#[allow(clippy::too_many_arguments)]
pub fn run_instrumented_traced<P: Policy>(
    dual: &DualGraph,
    config: MacConfig,
    assignment: &Assignment,
    params: &FmmbParams,
    seed: u64,
    policy: P,
    shards: usize,
    shard_threads: usize,
    capture: bool,
) -> InstrumentedRun {
    assert!(config.is_enhanced(), "FMMB requires the enhanced model");
    let n = dual.len();
    let schedule = params.schedule(n);
    let round_ticks = config.f_prog().ticks() + 2;
    let root = SimRng::seed(seed);
    let nodes: Vec<Fmmb> = (0..n)
        .map(|i| {
            Fmmb::new(
                schedule.clone(),
                params.activation_probability,
                root.split(i as u64),
            )
        })
        .collect();
    let mut rt = Runtime::new(dual.clone(), config, nodes, policy);
    if shards > 0 {
        rt = rt.with_shards(shards);
        if shard_threads > 0 {
            rt = rt.with_shard_threads(shard_threads);
        }
    }
    if capture {
        rt = rt.tracing();
    }
    for (node, msg) in assignment.arrivals() {
        rt.inject(*node, *msg);
    }

    let all_ids: HashSet<MessageId> = assignment.message_ids().collect();
    let mut tracker = amac_core::CompletionTracker::new(dual, assignment);
    let mut milestones = Milestones {
        all_decided_round: None,
        gather_done_round: None,
        completion_round: None,
        mis_valid: false,
        mis_segment_rounds: schedule.mis_rounds(),
        gather_start_round: schedule.mis_rounds(),
    };

    let mut round = 0u64;
    let quiescent = loop {
        let outcome = rt.run_until(Time::from_ticks((round + 1) * round_ticks));
        for rec in rt.drain_outputs() {
            let Delivered(id) = rec.out;
            tracker.record(rec.time, rec.node, id);
        }
        if milestones.all_decided_round.is_none() {
            let decided =
                (0..n).all(|i| rt.node(NodeId::new(i)).mis_status() != MisStatus::Undecided);
            if decided {
                milestones.all_decided_round = Some(round);
            }
        }
        if milestones.gather_done_round.is_none() {
            let mut owned: HashSet<MessageId> = HashSet::new();
            for i in 0..n {
                let node = rt.node(NodeId::new(i));
                if node.in_mis() {
                    owned.extend(node.message_set());
                }
            }
            if all_ids.iter().all(|id| owned.contains(id)) {
                milestones.gather_done_round = Some(round);
            }
        }
        if milestones.completion_round.is_none() && tracker.is_complete() {
            milestones.completion_round = Some(round);
        }
        round += 1;
        if outcome == amac_mac::RunOutcome::Idle || milestones.completion_round.is_some() {
            break outcome == amac_mac::RunOutcome::Idle;
        }
    };

    let mut mis = NodeSet::new(n);
    for i in 0..n {
        if rt.node(NodeId::new(i)).in_mis() {
            mis.insert(NodeId::new(i));
        }
    }
    milestones.mis_valid = algo::is_maximal_independent(dual.g(), &mis);
    let capture = rt.trace().map(|trace| CellCapture {
        validation: Some(validate(trace, dual, rt.config(), quiescent)),
        trace: trace.clone(),
    });
    InstrumentedRun {
        milestones,
        capture,
        shard_stats: rt.shard_stats(),
    }
}

/// One row of the MIS sweep (aggregated over seeds × trials).
#[derive(Clone, Copy, Debug)]
pub struct MisPoint {
    /// Network size.
    pub n: usize,
    /// `⌈log₂ n⌉³` (the bound shape).
    pub log_cubed: u64,
    /// Mean rounds until all nodes decided (over seeds and trials).
    pub decided_rounds: f64,
    /// Scheduled MIS segment rounds (mean over trials, rounded; the
    /// schedule depends on each trial's sampled diameter).
    pub segment_rounds: u64,
    /// Fraction of runs yielding a valid maximal independent set.
    pub validity_rate: f64,
}

/// Results of the subroutine experiments.
#[derive(Clone, Debug)]
pub struct Subroutines {
    /// MIS sweep over `n`.
    pub mis: Vec<MisPoint>,
    /// Gather sweep over `k`: `(k, gather rounds used, k + log n)`.
    pub gather: Vec<(usize, TrialStats, u64)>,
    /// Spread sweep over `n` (growing `D`): `(n, mean D, spread rounds
    /// used, mean (D + k) * log n)`.
    pub spread: Vec<(usize, u64, TrialStats, u64)>,
    /// Captured outlier traces per sweep point (empty unless the runner
    /// has trace capture enabled).
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table.
    pub table: Table,
}

/// Per-trial shared state: every network/assignment the three subroutine
/// sweeps need, sampled from the trial's stream in the historical order.
struct TrialSetup {
    salt: u64,
    /// Per `n`: MIS network + params (`k = 1` singleton assignment).
    mis: Vec<(GreyZoneNetwork, FmmbParams)>,
    gather_net: GreyZoneNetwork,
    /// Per `k`: gather params + random assignment on the fixed network.
    gather: Vec<(FmmbParams, Assignment)>,
    /// Per `n`: spread network, its diameter, params, and assignment.
    spread: Vec<(GreyZoneNetwork, usize, FmmbParams, Assignment)>,
}

/// Runs all three subroutine experiments. Each trial samples fresh
/// grey-zone networks and assignments from its split seed (trial 0 keeps
/// the historical sampling), the per-network `seeds` repetitions run
/// within each trial as before, and each sweep point of a trial is its own
/// engine cell, scheduled over the worker pool.
pub fn run(
    f_prog: u64,
    ns: &[usize],
    ks: &[usize],
    density: f64,
    seeds: &[u64],
    runner: &TrialRunner,
) -> Subroutines {
    let cfg = MacConfig::from_ticks(f_prog, 8 * f_prog).enhanced();
    let n_fixed = *ns.last().expect("non-empty ns");
    let k_fixed = *ks.first().expect("non-empty ks");

    // Points: per n a 3-lane MIS point [decided_mean, validity, segment],
    // per k a gather point [rounds used], per n a 3-lane spread point
    // [rounds used, d, bound].
    let widths: Vec<usize> = std::iter::repeat(3)
        .take(ns.len())
        .chain(std::iter::repeat(1).take(ks.len()))
        .chain(std::iter::repeat(3).take(ns.len()))
        .collect();
    let shards = runner.shards();
    let shard_threads = runner.effective_shard_threads();
    let run = runner.run_sweep(
        1234,
        &widths,
        |trial| {
            // Sampling order mirrors the historical whole-sweep closure,
            // so per-trial topologies are unchanged.
            let mut rng = SimRng::seed(trial.seed(1234));
            let salt = trial.seed(0);
            let mis = ns
                .iter()
                .map(|&n| {
                    let side = (n as f64 / density).sqrt();
                    let net = connected_grey_zone_network(
                        &GreyZoneConfig::new(n, side).with_c(2.0),
                        500,
                        &mut rng,
                    )
                    .expect("connected sample");
                    let params = FmmbParams::new(1, net.dual.diameter());
                    (net, params)
                })
                .collect();
            let side = (n_fixed as f64 / density).sqrt();
            let gather_net = connected_grey_zone_network(
                &GreyZoneConfig::new(n_fixed, side).with_c(2.0),
                500,
                &mut rng,
            )
            .expect("connected sample");
            let gather = ks
                .iter()
                .map(|&k| {
                    let params = FmmbParams::new(k, gather_net.dual.diameter());
                    let assignment = Assignment::random(n_fixed, k, &mut rng);
                    (params, assignment)
                })
                .collect();
            let spread = ns
                .iter()
                .map(|&n| {
                    let side = (n as f64 / density).sqrt();
                    let net = connected_grey_zone_network(
                        &GreyZoneConfig::new(n, side).with_c(2.0),
                        500,
                        &mut rng,
                    )
                    .expect("connected sample");
                    let d = net.dual.diameter();
                    let params = FmmbParams::new(k_fixed, d);
                    let assignment = Assignment::random(n, k_fixed, &mut rng);
                    (net, d, params, assignment)
                })
                .collect();
            TrialSetup {
                salt,
                mis,
                gather_net,
                gather,
                spread,
            }
        },
        |setup, cell| {
            if cell.point < ns.len() {
                // --- SUB-MIS: several instrumented seeds on one network ---
                let n = ns[cell.point];
                let (net, params) = &setup.mis[cell.point];
                let assignment = Assignment::all_at(NodeId::new(0), 1);
                let mut decided_sum = 0.0;
                let mut valid = 0usize;
                // The MIS lanes average over all instrumented seeds, so no
                // single execution produces the recorded value; the capture
                // is the first seed's run — a *representative* execution of
                // this point's trial, unlike the other sweeps where the
                // trace is exactly the run behind the statistic.
                let mut capture = None;
                let mut shard_stats: Option<amac_sim::ShardStats> = None;
                for (si, &seed) in seeds.iter().enumerate() {
                    let traced = run_instrumented_traced(
                        &net.dual,
                        cfg,
                        &assignment,
                        params,
                        seed ^ setup.salt,
                        amac_mac::policies::LazyPolicy::new(),
                        shards,
                        shard_threads,
                        cell.capture_requested() && si == 0,
                    );
                    let m = traced.milestones;
                    if si == 0 {
                        capture = traced.capture;
                    }
                    if let Some(stats) = &traced.shard_stats {
                        shard_stats
                            .get_or_insert_with(amac_sim::ShardStats::default)
                            .merge(stats);
                    }
                    decided_sum += m.all_decided_round.unwrap_or(m.mis_segment_rounds) as f64;
                    valid += usize::from(m.mis_valid);
                }
                CellResult::vector(vec![
                    decided_sum / seeds.len() as f64,
                    valid as f64 / seeds.len() as f64,
                    params.schedule(n).mis_rounds() as f64,
                ])
                .with_capture(capture)
                .with_shard_stats(shard_stats)
            } else if cell.point < ns.len() + ks.len() {
                // --- SUB-GATHER: sweep k on the fixed network ---
                let (params, assignment) = &setup.gather[cell.point - ns.len()];
                let traced = run_instrumented_traced(
                    &setup.gather_net.dual,
                    cfg,
                    assignment,
                    params,
                    seeds[0] ^ setup.salt,
                    amac_mac::policies::LazyPolicy::new(),
                    shards,
                    shard_threads,
                    cell.capture_requested(),
                );
                let m = traced.milestones;
                // Unreached milestone: record NaN, not a huge finite
                // sentinel — Welford propagates it, so the mean/ci95 cells
                // print `NaN`, an explicit failure marker instead of a
                // plausible-looking number.
                let used = m
                    .gather_done_round
                    .map(|g| g.saturating_sub(m.gather_start_round) as f64)
                    .unwrap_or(f64::NAN);
                CellResult::scalar(used)
                    .with_capture(traced.capture)
                    .with_shard_stats(traced.shard_stats)
            } else {
                // --- SUB-SPREAD: sweep n (D grows with sqrt n) ---
                let idx = cell.point - ns.len() - ks.len();
                let (net, d, params, assignment) = &setup.spread[idx];
                let traced = run_instrumented_traced(
                    &net.dual,
                    cfg,
                    assignment,
                    params,
                    seeds[0] ^ setup.salt,
                    amac_mac::policies::LazyPolicy::new(),
                    shards,
                    shard_threads,
                    cell.capture_requested(),
                );
                let m = traced.milestones;
                // NaN on an unreached milestone, as in the gather sweep.
                let used = match (m.completion_round, m.gather_done_round) {
                    (Some(c), Some(g)) => c.saturating_sub(g) as f64,
                    _ => f64::NAN,
                };
                let lg = amac_core::bounds::log2_ceil(ns[idx]).max(1);
                CellResult::vector(vec![
                    used,
                    *d as f64,
                    ((*d as u64 + k_fixed as u64) * lg) as f64,
                ])
                .with_capture(traced.capture)
                .with_shard_stats(traced.shard_stats)
            }
        },
    );
    let label = |i: usize| {
        if i < ns.len() {
            format!("mis-n={}", ns[i])
        } else if i < ns.len() + ks.len() {
            format!("gather-k={}", ks[i - ns.len()])
        } else {
            format!("spread-n={}", ns[i - ns.len() - ks.len()])
        }
    };
    let outliers = super::collect_outliers(&run, label);

    let (mis_points, rest) = run.points().split_at(ns.len());
    let (gather_points, spread_points) = rest.split_at(ks.len());

    let mis: Vec<MisPoint> = ns
        .iter()
        .zip(mis_points)
        .map(|(&n, p)| {
            let lg = amac_core::bounds::log2_ceil(n).max(1);
            MisPoint {
                n,
                log_cubed: lg * lg * lg,
                decided_rounds: p.lane(0).mean(),
                segment_rounds: p.lane(2).mean().round() as u64,
                validity_rate: p.lane(1).mean(),
            }
        })
        .collect();

    let lg_fixed = amac_core::bounds::log2_ceil(n_fixed).max(1);
    let gather: Vec<(usize, TrialStats, u64)> = ks
        .iter()
        .zip(gather_points)
        .map(|(&k, p)| {
            (
                k,
                TrialStats::from_aggregate(p.primary()),
                k as u64 + lg_fixed,
            )
        })
        .collect();

    let spread: Vec<(usize, u64, TrialStats, u64)> = ns
        .iter()
        .zip(spread_points)
        .map(|(&n, p)| {
            (
                n,
                p.lane(1).mean().round() as u64,
                TrialStats::from_aggregate(p.lane(0)),
                p.lane(2).mean().round() as u64,
            )
        })
        .collect();

    let mut table = Table::new(
        format!("SUB-*  FMMB subroutines (grey zone, density {density}, F_prog={f_prog})"),
        &[
            "subroutine",
            "param",
            "rounds used",
            "ci95",
            "bound shape",
            "note",
        ],
    );
    for p in &mis {
        table.row([
            "MIS (Lem 4.5)".to_string(),
            format!("n={}", p.n),
            format!("{:.0}", p.decided_rounds),
            String::new(),
            format!("log^3 n = {}", p.log_cubed),
            format!(
                "segment {}, valid {:.0}%",
                p.segment_rounds,
                p.validity_rate * 100.0
            ),
        ]);
    }
    for (k, used, bound) in &gather {
        table.row([
            "gather (Lem 4.6)".to_string(),
            format!("k={k}"),
            mean_cell(used),
            ci_cell(used),
            format!("k + log n = {bound}"),
            String::new(),
        ]);
    }
    for (n, d, used, bound) in &spread {
        table.row([
            "spread (Lem 4.7/4.8)".to_string(),
            format!("n={n}"),
            mean_cell(used),
            ci_cell(used),
            format!("(D+k)*log n = {bound}"),
            format!("D={d}"),
        ]);
    }
    table.note(format!(
        "{}, {} instrumented seed(s) per network",
        super::trials_phrase(runner, &run),
        seeds.len()
    ));
    table.note("rounds used are until the milestone, not the (longer) fixed schedule");

    super::append_plots(&mut table, runner, &run, label);
    super::append_shard_note(&mut table, &run);

    Subroutines {
        mis,
        gather,
        spread,
        outliers,
        table,
    }
}

/// Default parameterisation at an explicit trial/job count.
pub fn run_default_with(runner: &TrialRunner) -> Subroutines {
    run(2, &[16, 32, 64], &[2, 4, 8], 2.0, &[1, 2, 3], runner)
}

/// Default parameterisation used by `cargo bench` (single trial).
pub fn run_default() -> Subroutines {
    run_default_with(&TrialRunner::single())
}

/// Smoke parameterisation at an explicit trial/job count.
pub fn run_smoke_with(runner: &TrialRunner) -> Subroutines {
    run(2, &[8, 12], &[1, 2], 2.0, &[1], runner)
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI: the
/// same code paths as [`run_default`], tiny sweeps, single trial.
pub fn run_smoke() -> Subroutines {
    run_smoke_with(&TrialRunner::single())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumented_run_reaches_all_milestones() {
        let mut rng = SimRng::seed(8);
        let net = connected_grey_zone_network(&GreyZoneConfig::new(20, 3.2), 200, &mut rng)
            .expect("connected");
        let cfg = MacConfig::from_ticks(2, 16).enhanced();
        let params = FmmbParams::new(2, net.dual.diameter());
        let assignment = Assignment::random(20, 2, &mut rng);
        let m = run_instrumented(
            &net.dual,
            cfg,
            &assignment,
            &params,
            3,
            amac_mac::policies::LazyPolicy::new(),
        );
        assert!(m.mis_valid);
        assert!(m.all_decided_round.is_some());
        assert!(m.gather_done_round.is_some());
        assert!(m.completion_round.is_some());
        // Milestones are ordered: decide, then gather, then complete.
        assert!(m.gather_done_round >= m.all_decided_round);
        assert!(m.completion_round >= m.gather_done_round);
    }

    #[test]
    fn small_sweep_produces_full_table() {
        let res = run(2, &[16, 24], &[2], 2.0, &[1], &TrialRunner::single());
        assert_eq!(res.mis.len(), 2);
        assert_eq!(res.gather.len(), 1);
        assert_eq!(res.spread.len(), 2);
        assert!(res.mis.iter().all(|p| p.validity_rate > 0.0));
        assert!(!res.table.is_empty());
    }

    #[test]
    fn multi_trial_sweep_aggregates() {
        let res = run(2, &[12, 16], &[1], 2.0, &[1], &TrialRunner::new(2, 2));
        assert_eq!(res.mis.len(), 2);
        for (_, used, _) in &res.gather {
            assert_eq!(used.trials, 2);
        }
        for (_, _, used, _) in &res.spread {
            assert_eq!(used.trials, 2);
        }
        assert!(res
            .mis
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.validity_rate)));
    }
}
