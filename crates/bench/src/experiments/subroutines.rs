//! `SUB-MIS`, `SUB-GATHER`, `SUB-SPREAD` — the three FMMB subroutines,
//! measured individually with an instrumented runner:
//!
//! * **MIS** (Lemma 4.5): rounds until every node has decided (joined or
//!   covered), versus the scheduled `O(log³ n)` segment; validity rate
//!   over seeds;
//! * **gather** (Lemma 4.6): rounds from the gather segment start until
//!   every message is owned by an MIS node, versus `O(k + log n)` periods;
//! * **spread** (Lemmas 4.7–4.8): rounds from gather completion until MMB
//!   completion, versus `O((D + k)·log n)`.

use crate::table::Table;
use amac_core::{Assignment, Delivered, Fmmb, FmmbParams, MessageId, MisStatus};
use amac_graph::generators::{connected_grey_zone_network, GreyZoneConfig};
use amac_graph::{algo, DualGraph, NodeId, NodeSet};
use amac_mac::{MacConfig, Policy, Runtime};
use amac_sim::{SimRng, Time};
use std::collections::HashSet;

/// Milestones of one instrumented FMMB run, in rounds (`F_prog + 2` ticks
/// each).
#[derive(Clone, Copy, Debug)]
pub struct Milestones {
    /// Round by which every node had decided its MIS status.
    pub all_decided_round: Option<u64>,
    /// Round by which every message was owned by some MIS node.
    pub gather_done_round: Option<u64>,
    /// Round by which the MMB problem was solved.
    pub completion_round: Option<u64>,
    /// Whether the resulting MIS was a maximal independent set of `G`.
    pub mis_valid: bool,
    /// The scheduled MIS segment length in rounds.
    pub mis_segment_rounds: u64,
    /// The gather segment start (rounds).
    pub gather_start_round: u64,
}

/// Runs FMMB while checking node-state milestones once per round.
pub fn run_instrumented<P: Policy>(
    dual: &DualGraph,
    config: MacConfig,
    assignment: &Assignment,
    params: &FmmbParams,
    seed: u64,
    policy: P,
) -> Milestones {
    assert!(config.is_enhanced(), "FMMB requires the enhanced model");
    let n = dual.len();
    let schedule = params.schedule(n);
    let round_ticks = config.f_prog().ticks() + 2;
    let root = SimRng::seed(seed);
    let nodes: Vec<Fmmb> = (0..n)
        .map(|i| {
            Fmmb::new(
                schedule.clone(),
                params.activation_probability,
                root.split(i as u64),
            )
        })
        .collect();
    let mut rt = Runtime::new(dual.clone(), config, nodes, policy).without_trace();
    for (node, msg) in assignment.arrivals() {
        rt.inject(*node, *msg);
    }

    let all_ids: HashSet<MessageId> = assignment.message_ids().collect();
    let mut tracker = amac_core::CompletionTracker::new(dual, assignment);
    let mut milestones = Milestones {
        all_decided_round: None,
        gather_done_round: None,
        completion_round: None,
        mis_valid: false,
        mis_segment_rounds: schedule.mis_rounds(),
        gather_start_round: schedule.mis_rounds(),
    };

    let mut round = 0u64;
    loop {
        let outcome = rt.run_until(Time::from_ticks((round + 1) * round_ticks));
        for rec in rt.take_outputs() {
            let Delivered(id) = rec.out;
            tracker.record(rec.time, rec.node, id);
        }
        if milestones.all_decided_round.is_none() {
            let decided =
                (0..n).all(|i| rt.node(NodeId::new(i)).mis_status() != MisStatus::Undecided);
            if decided {
                milestones.all_decided_round = Some(round);
            }
        }
        if milestones.gather_done_round.is_none() {
            let mut owned: HashSet<MessageId> = HashSet::new();
            for i in 0..n {
                let node = rt.node(NodeId::new(i));
                if node.in_mis() {
                    owned.extend(node.message_set());
                }
            }
            if all_ids.iter().all(|id| owned.contains(id)) {
                milestones.gather_done_round = Some(round);
            }
        }
        if milestones.completion_round.is_none() && tracker.is_complete() {
            milestones.completion_round = Some(round);
        }
        round += 1;
        if outcome == amac_mac::RunOutcome::Idle || milestones.completion_round.is_some() {
            break;
        }
    }

    let mut mis = NodeSet::new(n);
    for i in 0..n {
        if rt.node(NodeId::new(i)).in_mis() {
            mis.insert(NodeId::new(i));
        }
    }
    milestones.mis_valid = algo::is_maximal_independent(dual.g(), &mis);
    milestones
}

/// One row of the MIS sweep.
#[derive(Clone, Copy, Debug)]
pub struct MisPoint {
    /// Network size.
    pub n: usize,
    /// `⌈log₂ n⌉³` (the bound shape).
    pub log_cubed: u64,
    /// Mean rounds until all nodes decided (over the seeds).
    pub decided_rounds: f64,
    /// Scheduled MIS segment rounds.
    pub segment_rounds: u64,
    /// Fraction of seeds yielding a valid maximal independent set.
    pub validity_rate: f64,
}

/// Results of the subroutine experiments.
#[derive(Clone, Debug)]
pub struct Subroutines {
    /// MIS sweep over `n`.
    pub mis: Vec<MisPoint>,
    /// Gather sweep over `k`: `(k, gather rounds used, k + log n)`.
    pub gather: Vec<(usize, u64, u64)>,
    /// Spread sweep over `n` (growing `D`):
    /// `(n, D, spread rounds used, (D + k) * log n)`.
    pub spread: Vec<(usize, usize, u64, u64)>,
    /// Rendered table.
    pub table: Table,
}

/// Runs all three subroutine experiments.
pub fn run(f_prog: u64, ns: &[usize], ks: &[usize], density: f64, seeds: &[u64]) -> Subroutines {
    let cfg = MacConfig::from_ticks(f_prog, 8 * f_prog).enhanced();
    let mut rng = SimRng::seed(1234);

    // --- SUB-MIS: sweep n, several seeds each ---
    let mut mis = Vec::new();
    for &n in ns {
        let side = (n as f64 / density).sqrt();
        let net =
            connected_grey_zone_network(&GreyZoneConfig::new(n, side).with_c(2.0), 500, &mut rng)
                .expect("connected sample");
        let params = FmmbParams::new(1, net.dual.diameter());
        let assignment = Assignment::all_at(NodeId::new(0), 1);
        let mut decided_sum = 0.0;
        let mut valid = 0usize;
        for &seed in seeds {
            let m = run_instrumented(
                &net.dual,
                cfg,
                &assignment,
                &params,
                seed,
                amac_mac::policies::LazyPolicy::new(),
            );
            decided_sum += m.all_decided_round.unwrap_or(m.mis_segment_rounds) as f64;
            valid += usize::from(m.mis_valid);
        }
        let lg = amac_core::bounds::log2_ceil(n).max(1);
        mis.push(MisPoint {
            n,
            log_cubed: lg * lg * lg,
            decided_rounds: decided_sum / seeds.len() as f64,
            segment_rounds: params.schedule(n).mis_rounds(),
            validity_rate: valid as f64 / seeds.len() as f64,
        });
    }

    // --- SUB-GATHER: sweep k on a fixed network ---
    let n_fixed = *ns.last().expect("non-empty ns");
    let side = (n_fixed as f64 / density).sqrt();
    let net = connected_grey_zone_network(
        &GreyZoneConfig::new(n_fixed, side).with_c(2.0),
        500,
        &mut rng,
    )
    .expect("connected sample");
    let lg = amac_core::bounds::log2_ceil(n_fixed).max(1);
    let mut gather = Vec::new();
    for &k in ks {
        let params = FmmbParams::new(k, net.dual.diameter());
        let assignment = Assignment::random(n_fixed, k, &mut rng);
        let m = run_instrumented(
            &net.dual,
            cfg,
            &assignment,
            &params,
            seeds[0],
            amac_mac::policies::LazyPolicy::new(),
        );
        let used = m
            .gather_done_round
            .map(|g| g.saturating_sub(m.gather_start_round))
            .unwrap_or(u64::MAX);
        gather.push((k, used, k as u64 + lg));
    }

    // --- SUB-SPREAD: sweep n (D grows with sqrt n at fixed density) ---
    let k_fixed = *ks.first().expect("non-empty ks");
    let mut spread = Vec::new();
    for &n in ns {
        let side = (n as f64 / density).sqrt();
        let net =
            connected_grey_zone_network(&GreyZoneConfig::new(n, side).with_c(2.0), 500, &mut rng)
                .expect("connected sample");
        let d = net.dual.diameter();
        let params = FmmbParams::new(k_fixed, d);
        let assignment = Assignment::random(n, k_fixed, &mut rng);
        let m = run_instrumented(
            &net.dual,
            cfg,
            &assignment,
            &params,
            seeds[0],
            amac_mac::policies::LazyPolicy::new(),
        );
        let used = match (m.completion_round, m.gather_done_round) {
            (Some(c), Some(g)) => c.saturating_sub(g),
            _ => u64::MAX,
        };
        let lg = amac_core::bounds::log2_ceil(n).max(1);
        spread.push((n, d, used, (d as u64 + k_fixed as u64) * lg));
    }

    let mut table = Table::new(
        format!("SUB-*  FMMB subroutines (grey zone, density {density}, F_prog={f_prog})"),
        &["subroutine", "param", "rounds used", "bound shape", "note"],
    );
    for p in &mis {
        table.row([
            "MIS (Lem 4.5)".to_string(),
            format!("n={}", p.n),
            format!("{:.0}", p.decided_rounds),
            format!("log^3 n = {}", p.log_cubed),
            format!(
                "segment {}, valid {:.0}%",
                p.segment_rounds,
                p.validity_rate * 100.0
            ),
        ]);
    }
    for (k, used, bound) in &gather {
        table.row([
            "gather (Lem 4.6)".to_string(),
            format!("k={k}"),
            used.to_string(),
            format!("k + log n = {bound}"),
            String::new(),
        ]);
    }
    for (n, d, used, bound) in &spread {
        table.row([
            "spread (Lem 4.7/4.8)".to_string(),
            format!("n={n}"),
            used.to_string(),
            format!("(D+k)*log n = {bound}"),
            format!("D={d}"),
        ]);
    }
    table.note("rounds used are until the milestone, not the (longer) fixed schedule");

    Subroutines {
        mis,
        gather,
        spread,
        table,
    }
}

/// Default parameterisation used by `cargo bench` and the `repro` binary.
pub fn run_default() -> Subroutines {
    run(2, &[16, 32, 64], &[2, 4, 8], 2.0, &[1, 2, 3])
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI: the
/// same code paths as [`run_default`], tiny sweeps.
pub fn run_smoke() -> Subroutines {
    run(2, &[8, 12], &[1, 2], 2.0, &[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumented_run_reaches_all_milestones() {
        let mut rng = SimRng::seed(8);
        let net = connected_grey_zone_network(&GreyZoneConfig::new(20, 3.2), 200, &mut rng)
            .expect("connected");
        let cfg = MacConfig::from_ticks(2, 16).enhanced();
        let params = FmmbParams::new(2, net.dual.diameter());
        let assignment = Assignment::random(20, 2, &mut rng);
        let m = run_instrumented(
            &net.dual,
            cfg,
            &assignment,
            &params,
            3,
            amac_mac::policies::LazyPolicy::new(),
        );
        assert!(m.mis_valid);
        assert!(m.all_decided_round.is_some());
        assert!(m.gather_done_round.is_some());
        assert!(m.completion_round.is_some());
        // Milestones are ordered: decide, then gather, then complete.
        assert!(m.gather_done_round >= m.all_decided_round);
        assert!(m.completion_round >= m.gather_done_round);
    }

    #[test]
    fn small_sweep_produces_full_table() {
        let res = run(2, &[16, 24], &[2], 2.0, &[1]);
        assert_eq!(res.mis.len(), 2);
        assert_eq!(res.gather.len(), 1);
        assert_eq!(res.spread.len(), 2);
        assert!(res.mis.iter().all(|p| p.validity_rate > 0.0));
        assert!(!res.table.is_empty());
    }
}
