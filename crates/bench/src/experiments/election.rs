//! `ELECT` — randomized back-off leader election on grey-zone duals.
//!
//! The wake-up service underlying the consensus constructions of NR18:
//! every node sleeps a uniform back-off in `[0, W)`, the first to wake
//! claims leadership, claims flood (at `F_prog` speed under the lazy
//! scheduler) and suppress later wake-ups, smallest claimed id wins.
//!
//! One sweep: **`n`** over per-trial sampled connected grey-zone networks
//! at constant deployment density (diameter grows like `√n`). Measured:
//!
//! * convergence time — expected `O(W + D·F_prog)`; the table reports the
//!   per-trial reference bound `W + 2(D+1)(F_prog+1)` alongside;
//! * claimant count — back-off suppression keeps it far below `n` (the
//!   message-complexity argument for the back-off);
//! * per-trial election violations ([`amac_proto::validate_election`]):
//!   agreement, completeness, claimant-ship, minimality — mean must be 0.

use super::{LabeledOutlier, SweepPoint};
use crate::engine::{CellResult, TrialRunner, TrialStats};
use crate::table::{ci_cell, mean_cell, Table};
use amac_graph::generators::{connected_grey_zone_network, GreyZoneConfig, GreyZoneNetwork};
use amac_mac::policies::LazyPolicy;
use amac_mac::{FaultPlan, MacConfig};
use amac_proto::election::run_election;
use amac_sim::{Duration, SimRng};

/// One measured sweep point of the election experiment.
#[derive(Clone, Copy, Debug)]
pub struct ElectionPoint {
    /// Network size `n`.
    pub n: usize,
    /// Convergence-time statistics over the trials, in ticks.
    pub measured: TrialStats,
    /// Claimant-count statistics over the trials.
    pub claimants: TrialStats,
    /// Per-trial election violation counts (mean must be 0).
    pub violations: TrialStats,
    /// Mean of the per-trial reference bound `W + 2(D+1)(F_prog+1)`.
    pub bound: u64,
}

impl ElectionPoint {
    /// As a generic [`SweepPoint`] over `n` (for fitting).
    pub fn as_sweep_point(&self) -> SweepPoint {
        SweepPoint {
            param: self.n,
            measured: self.measured,
            bound: self.bound,
        }
    }
}

/// Results of the `ELECT` experiment.
#[derive(Clone, Debug)]
pub struct Election {
    /// The `n` sweep.
    pub n_sweep: Vec<ElectionPoint>,
    /// Sum of all per-trial violations — 0.0 for a correct protocol.
    pub total_violations: f64,
    /// Captured outlier traces per sweep point.
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table.
    pub table: Table,
}

struct TrialSetup {
    nets: Vec<GreyZoneNetwork>,
}

/// Runs the experiment: back-off window `window` ticks, grey-zone samples
/// of each size in `ns` at `density` nodes per unit area, one fresh
/// sample per trial.
#[allow(clippy::too_many_arguments)]
pub fn run(
    f_prog: u64,
    f_ack: u64,
    window: u64,
    ns: &[usize],
    density: f64,
    seed: u64,
    runner: &TrialRunner,
) -> Election {
    let config = MacConfig::from_ticks(f_prog, f_ack).enhanced();
    // Four lanes: convergence, claimants, violations, per-trial bound.
    let widths = vec![4usize; ns.len()];
    let shards = runner.shards();
    let shard_threads = runner.effective_shard_threads();
    let run = runner.run_sweep(
        seed,
        &widths,
        |trial| {
            let mut rng = SimRng::seed(trial.seed(seed));
            let nets = ns
                .iter()
                .map(|&n| {
                    let side = (n as f64 / density).sqrt();
                    connected_grey_zone_network(
                        &GreyZoneConfig::new(n, side).with_c(2.0),
                        500,
                        &mut rng,
                    )
                    .expect("connected sample")
                })
                .collect();
            TrialSetup { nets }
        },
        |setup, cell| {
            let net = &setup.nets[cell.point];
            let mut rng = cell.rng.clone();
            let report = run_election(
                &net.dual,
                config,
                Duration::from_ticks(window),
                rng.next(),
                FaultPlan::new(),
                LazyPolicy::new(),
                &super::cell_options(cell.capture_requested(), shards, shard_threads),
            );
            let d = net.dual.diameter() as u64;
            let bound = window + 2 * (d + 1) * (f_prog + 1);
            let convergence = report
                .convergence
                .map(amac_sim::Time::ticks)
                .unwrap_or(report.end_time.ticks()) as f64;
            let violations = report.violation_count() as f64;
            let capture = report
                .trace
                .clone()
                .map(|trace| crate::engine::CellCapture {
                    trace,
                    validation: report.validation.clone(),
                });
            CellResult::vector(vec![
                convergence,
                report.claimants.len() as f64,
                violations,
                bound as f64,
            ])
            .with_capture(capture)
            .with_shard_stats(report.shard_stats.clone())
        },
    );
    let label = |i: usize| format!("n={}", ns[i]);
    let outliers = super::collect_outliers(&run, label);

    let n_sweep: Vec<ElectionPoint> = ns
        .iter()
        .enumerate()
        .map(|(i, &n)| ElectionPoint {
            n,
            measured: TrialStats::from_aggregate(run.point(i).lane(0)),
            claimants: TrialStats::from_aggregate(run.point(i).lane(1)),
            violations: TrialStats::from_aggregate(run.point(i).lane(2)),
            bound: (run.point(i).lane(3).mean().round() as u64).max(1),
        })
        .collect();
    let total_violations: f64 = n_sweep
        .iter()
        .map(|p| p.violations.mean * p.violations.trials as f64)
        .sum();

    let mut table = Table::new(
        format!(
            "ELECT  leader election, grey zone G' (back-off W={window}, F_prog={f_prog}, F_ack={f_ack})"
        ),
        &[
            "sweep", "value", "converged@", "ci95", "W+2(D+1)(Fp+1)", "ratio", "claimants",
            "violations",
        ],
    );
    for p in &n_sweep {
        table.row([
            "n".to_string(),
            p.n.to_string(),
            mean_cell(&p.measured),
            ci_cell(&p.measured),
            p.bound.to_string(),
            format!("{:.2}", p.measured.mean / p.bound as f64),
            format!("{:.1}", p.claimants.mean),
            format!("{:.1}", p.violations.mean),
        ]);
    }
    table.note(format!(
        "{}, each on a fresh grey-zone sample",
        super::trials_phrase(runner, &run)
    ));
    table.note(format!(
        "violations column: per-trial ElectionValidator count (agreement/completeness/minimality); total = {total_violations:.0}"
    ));
    table.note(
        "claimants stays far below n: the first claim's flood (at F_prog speed) suppresses \
         later back-off timers — the wake-up argument of NR18",
    );
    super::append_plots(&mut table, runner, &run, label);
    super::append_shard_note(&mut table, &run);

    Election {
        n_sweep,
        total_violations,
        outliers,
        table,
    }
}

/// Default parameterisation at an explicit trial/job count.
pub fn run_default_with(runner: &TrialRunner) -> Election {
    run(2, 16, 64, &[16, 32, 64, 96], 2.0, 17, runner)
}

/// Default parameterisation (single trial).
pub fn run_default() -> Election {
    run_default_with(&TrialRunner::single())
}

/// Smoke parameterisation at an explicit trial/job count.
pub fn run_smoke_with(runner: &TrialRunner) -> Election {
    run(2, 12, 24, &[12, 16], 2.0, 17, runner)
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI.
pub fn run_smoke() -> Election {
    run_smoke_with(&TrialRunner::single())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elections_agree_and_stay_within_the_bound() {
        let res = run(2, 12, 24, &[12, 20], 2.0, 17, &TrialRunner::new(3, 2));
        assert_eq!(res.total_violations, 0.0, "{}", res.table);
        for p in &res.n_sweep {
            assert_eq!(p.violations.max, 0.0);
            assert!(
                p.measured.mean <= p.bound as f64,
                "n={}: mean convergence {} above reference bound {}",
                p.n,
                p.measured.mean,
                p.bound
            );
            assert!(p.claimants.mean >= 1.0);
        }
    }

    #[test]
    fn suppression_scales_sublinearly() {
        let res = run(2, 12, 48, &[12, 32], 2.0, 9, &TrialRunner::new(3, 2));
        let small = &res.n_sweep[0];
        let large = &res.n_sweep[1];
        assert!(
            large.claimants.mean < large.n as f64 / 2.0,
            "claims must not track n: {} of {}",
            large.claimants.mean,
            large.n
        );
        assert!(small.claimants.mean >= 1.0);
    }

    #[test]
    fn captured_traces_are_model_valid() {
        let runner = TrialRunner::new(2, 2).with_trace_capture(true);
        let res = run(2, 12, 16, &[10], 2.0, 3, &runner);
        assert!(!res.outliers.is_empty());
        for o in &res.outliers {
            let v = o.outlier.validation.as_ref().expect("validated");
            assert!(v.is_ok(), "{}: {v}", o.label);
        }
    }
}
