//! `F1-LB-K` and `F2-LB-D` — the Θ-matching lower bounds of Figure 1's
//! grey-zone/arbitrary cell:
//!
//! * Lemma 3.18 (choke star): any algorithm needs `Ω(k·F_ack)`;
//! * Lemmas 3.19–3.20 (Figure 2 dual lines): `Ω(D·F_ack)` under the grey
//!   zone constraint.
//!
//! Each sweep reports `measured / bound`; the lower bound is reproduced
//! when the ratio stays above a positive constant as the parameter grows.

use crate::fit::{linear_fit, LinearFit};
use crate::table::Table;
use amac_core::RunOptions;
use amac_lower::{run_choke_star, run_dual_line, LowerBoundReport};
use amac_mac::MacConfig;

/// Results of both lower-bound experiments.
#[derive(Clone, Debug)]
pub struct LowerBounds {
    /// Choke-star sweep over `k`.
    pub star: Vec<LowerBoundReport>,
    /// Dual-line sweep over `D`.
    pub line: Vec<LowerBoundReport>,
    /// Fit of dual-line measured time vs `D` (slope ≈ `Θ(F_ack)`).
    pub line_fit: LinearFit,
    /// Smallest ratio observed in the star sweep.
    pub star_min_ratio: f64,
    /// Smallest ratio observed in the line sweep.
    pub line_min_ratio: f64,
    /// Rendered table.
    pub table: Table,
}

/// Runs both sweeps.
pub fn run(config: MacConfig, ks: &[usize], ds: &[usize]) -> LowerBounds {
    let options = RunOptions::fast();
    let star: Vec<LowerBoundReport> = ks
        .iter()
        .map(|&k| run_choke_star(k, config, &options))
        .collect();
    let line: Vec<LowerBoundReport> = ds
        .iter()
        .map(|&d| run_dual_line(d, config, &options))
        .collect();

    let line_fit = linear_fit(
        &line
            .iter()
            .map(|r| (r.parameter as f64, r.completion_ticks as f64))
            .collect::<Vec<_>>(),
    );
    let star_min_ratio = star.iter().map(|r| r.ratio).fold(f64::INFINITY, f64::min);
    let line_min_ratio = line.iter().map(|r| r.ratio).fold(f64::INFINITY, f64::min);

    let mut table = Table::new(
        format!("F1-LB-K / F2-LB-D  lower bounds ({config})"),
        &["construction", "param", "measured", "bound", "ratio"],
    );
    for r in &star {
        table.row([
            "choke star (Lem 3.18)".to_string(),
            format!("k={}", r.parameter),
            r.completion_ticks.to_string(),
            format!("k*Fa={}", r.bound_ticks),
            format!("{:.2}", r.ratio),
        ]);
    }
    for r in &line {
        table.row([
            "dual line (Fig 2)".to_string(),
            format!("D={}", r.parameter),
            r.completion_ticks.to_string(),
            format!("D*Fa={}", r.bound_ticks),
            format!("{:.2}", r.ratio),
        ]);
    }
    table.note(format!(
        "ratios bounded below: star >= {star_min_ratio:.2}, dual line >= {line_min_ratio:.2} (Ω holds)"
    ));
    table.note(format!(
        "dual-line slope {:.1} ticks per hop of D ~ Θ(F_ack = {})",
        line_fit.slope,
        config.f_ack()
    ));

    LowerBounds {
        star,
        line,
        line_fit,
        star_min_ratio,
        line_min_ratio,
        table,
    }
}

/// Default parameterisation used by `cargo bench` and the `repro` binary.
pub fn run_default() -> LowerBounds {
    run(
        MacConfig::from_ticks(2, 64),
        &[4, 8, 16, 32],
        &[4, 8, 16, 32],
    )
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI: the
/// same code paths as [`run_default`], tiny sweeps.
pub fn run_smoke() -> LowerBounds {
    run(MacConfig::from_ticks(2, 32), &[2, 4], &[2, 4])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_bounded_below_by_constant() {
        let res = run(MacConfig::from_ticks(2, 48), &[4, 16], &[4, 12]);
        assert!(
            res.star_min_ratio >= 0.6,
            "star ratio {:.2}",
            res.star_min_ratio
        );
        assert!(
            res.line_min_ratio >= 0.5,
            "line ratio {:.2}",
            res.line_min_ratio
        );
    }

    #[test]
    fn dual_line_slope_is_theta_f_ack() {
        let config = MacConfig::from_ticks(2, 48);
        let res = run(config, &[4], &[4, 8, 16]);
        let f_ack = config.f_ack().ticks() as f64;
        assert!(
            res.line_fit.slope >= 0.5 * f_ack && res.line_fit.slope <= 4.0 * f_ack,
            "slope {:.1} not Θ(F_ack = {f_ack})",
            res.line_fit.slope
        );
    }
}
