//! `F1-LB-K` and `F2-LB-D` — the Θ-matching lower bounds of Figure 1's
//! grey-zone/arbitrary cell:
//!
//! * Lemma 3.18 (choke star): any algorithm needs `Ω(k·F_ack)`;
//! * Lemmas 3.19–3.20 (Figure 2 dual lines): `Ω(D·F_ack)` under the grey
//!   zone constraint.
//!
//! Each sweep reports `measured / bound`; the lower bound is reproduced
//! when the ratio stays above a positive constant as the parameter grows.
//! With multiple trials the check uses each point's **minimum** trial — a
//! lower bound must hold on every execution, not on average.

use super::{LabeledOutlier, SweepPoint};
use crate::engine::{CellResult, TrialRunner};
use crate::fit::{linear_fit, LinearFit};
use crate::table::{ci_cell, mean_cell, Table};
use amac_core::bounds;
use amac_lower::{run_choke_star, run_dual_line};
use amac_mac::MacConfig;

/// Results of both lower-bound experiments.
#[derive(Clone, Debug)]
pub struct LowerBounds {
    /// Choke-star sweep over `k` (bound `k·F_ack`).
    pub star: Vec<SweepPoint>,
    /// Dual-line sweep over `D` (bound `D·F_ack`).
    pub line: Vec<SweepPoint>,
    /// Fit of dual-line mean time vs `D` (slope ≈ `Θ(F_ack)`).
    pub line_fit: LinearFit,
    /// Smallest per-trial ratio observed in the star sweep.
    pub star_min_ratio: f64,
    /// Smallest per-trial ratio observed in the line sweep.
    pub line_min_ratio: f64,
    /// Captured outlier traces per sweep point (empty unless the runner
    /// has trace capture enabled).
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table.
    pub table: Table,
}

/// The adversarial constructions have no randomness: [`run`] clamps the
/// runner to a single trial. Flip this if the experiment ever gains
/// per-trial sampling; the clamp and `repro`'s progress labels both key
/// off it.
pub const DETERMINISTIC: bool = true;

fn min_ratio(points: &[SweepPoint]) -> f64 {
    points
        .iter()
        .map(|p| p.measured.min / p.bound as f64)
        .fold(f64::INFINITY, f64::min)
}

/// Runs both sweeps. The adversarial constructions are deterministic, so
/// the runner is clamped to a single trial; the sweep points fan out over
/// the worker pool as cells.
pub fn run(config: MacConfig, ks: &[usize], ds: &[usize], runner: &TrialRunner) -> LowerBounds {
    let runner = if DETERMINISTIC {
        runner.deterministic()
    } else {
        *runner
    };
    let widths = vec![1usize; ks.len() + ds.len()];
    let shards = runner.shards();
    let shard_threads = runner.effective_shard_threads();
    let run = runner.run_sweep(
        0,
        &widths,
        |_trial| (),
        |_, cell| {
            let options = super::cell_options(cell.capture_requested(), shards, shard_threads);
            let report = if cell.point < ks.len() {
                run_choke_star(ks[cell.point], config, &options)
            } else {
                run_dual_line(ds[cell.point - ks.len()], config, &options)
            };
            CellResult::scalar(report.completion_ticks as f64)
                .with_capture(super::mmb_capture(&report.run))
                .with_shard_stats(report.run.shard_stats.clone())
        },
    );
    let label = |i: usize| {
        if i < ks.len() {
            format!("star-k={}", ks[i])
        } else {
            format!("line-D={}", ds[i - ks.len()])
        }
    };
    let outliers = super::collect_outliers(&run, label);
    let (star_points, line_points) = run.points().split_at(ks.len());
    let star: Vec<SweepPoint> = ks
        .iter()
        .zip(star_points)
        .map(|(&k, p)| {
            SweepPoint::from_aggregate(k, p.primary(), bounds::lower_choke(k, &config).ticks())
        })
        .collect();
    let line: Vec<SweepPoint> = ds
        .iter()
        .zip(line_points)
        .map(|(&d, p)| {
            SweepPoint::from_aggregate(d, p.primary(), bounds::lower_grey_zone(d, &config).ticks())
        })
        .collect();

    let line_fit = linear_fit(
        &line
            .iter()
            .map(SweepPoint::as_param_point)
            .collect::<Vec<_>>(),
    );
    let star_min_ratio = min_ratio(&star);
    let line_min_ratio = min_ratio(&line);

    let mut table = Table::new(
        format!("F1-LB-K / F2-LB-D  lower bounds ({config})"),
        &[
            "construction",
            "param",
            "measured",
            "ci95",
            "bound",
            "ratio",
        ],
    );
    for p in &star {
        table.row([
            "choke star (Lem 3.18)".to_string(),
            format!("k={}", p.param),
            mean_cell(&p.measured),
            ci_cell(&p.measured),
            format!("k*Fa={}", p.bound),
            format!("{:.2}", p.ratio()),
        ]);
    }
    for p in &line {
        table.row([
            "dual line (Fig 2)".to_string(),
            format!("D={}", p.param),
            mean_cell(&p.measured),
            ci_cell(&p.measured),
            format!("D*Fa={}", p.bound),
            format!("{:.2}", p.ratio()),
        ]);
    }
    table
        .note("deterministic adversarial constructions: measured once (extra trials would repeat)");
    table.note(format!(
        "ratios bounded below: star >= {star_min_ratio:.2}, dual line >= {line_min_ratio:.2} (Ω holds on every trial)"
    ));
    table.note(format!(
        "dual-line slope {:.1} ticks per hop of D ~ Θ(F_ack = {})",
        line_fit.slope,
        config.f_ack()
    ));

    super::append_plots(&mut table, &runner, &run, label);
    super::append_shard_note(&mut table, &run);

    LowerBounds {
        star,
        line,
        line_fit,
        star_min_ratio,
        line_min_ratio,
        outliers,
        table,
    }
}

/// Default parameterisation at an explicit trial/job count.
pub fn run_default_with(runner: &TrialRunner) -> LowerBounds {
    run(
        MacConfig::from_ticks(2, 64),
        &[4, 8, 16, 32],
        &[4, 8, 16, 32],
        runner,
    )
}

/// Default parameterisation used by `cargo bench` (single trial).
pub fn run_default() -> LowerBounds {
    run_default_with(&TrialRunner::single())
}

/// Smoke parameterisation at an explicit trial/job count.
pub fn run_smoke_with(runner: &TrialRunner) -> LowerBounds {
    run(MacConfig::from_ticks(2, 32), &[2, 4], &[2, 4], runner)
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI: the
/// same code paths as [`run_default`], tiny sweeps, single trial.
pub fn run_smoke() -> LowerBounds {
    run_smoke_with(&TrialRunner::single())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_bounded_below_by_constant() {
        let res = run(
            MacConfig::from_ticks(2, 48),
            &[4, 16],
            &[4, 12],
            &TrialRunner::single(),
        );
        assert!(
            res.star_min_ratio >= 0.6,
            "star ratio {:.2}",
            res.star_min_ratio
        );
        assert!(
            res.line_min_ratio >= 0.5,
            "line ratio {:.2}",
            res.line_min_ratio
        );
    }

    #[test]
    fn dual_line_slope_is_theta_f_ack() {
        let config = MacConfig::from_ticks(2, 48);
        let res = run(config, &[4], &[4, 8, 16], &TrialRunner::single());
        let f_ack = config.f_ack().ticks() as f64;
        assert!(
            res.line_fit.slope >= 0.5 * f_ack && res.line_fit.slope <= 4.0 * f_ack,
            "slope {:.1} not Θ(F_ack = {f_ack})",
            res.line_fit.slope
        );
    }
}
