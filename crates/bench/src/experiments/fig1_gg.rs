//! `F1-GG` — Figure 1, standard model, `G′ = G`:
//! BMMB completes in `O(D·F_prog + k·F_ack)` (prior work \[KLN11\],
//! subsumed by Theorem 3.2 with `r = 1`).
//!
//! Two sweeps over line networks with no unreliable links, under the lazy
//! duplicate-feeding scheduler (the harshest generic adversary):
//!
//! * sweep `D` at fixed `k` — the measured time must grow with slope
//!   `Θ(F_prog)` per hop (the pipeline travels at progress speed);
//! * sweep `k` at fixed `D` — slope `Θ(F_ack)` per message (each extra
//!   message costs one acknowledgment at the bottleneck).

use super::{LabeledOutlier, SweepPoint};
use crate::engine::{CellResult, TrialRunner};
use crate::fit::{linear_fit, proportional_fit, LinearFit, ProportionalFit};
use crate::table::{ci_cell, mean_cell, Table};
use amac_core::{bounds, run_bmmb, Assignment, MmbReport, RunOptions};
use amac_graph::{generators, DualGraph, NodeId};
use amac_mac::policies::LazyPolicy;
use amac_mac::MacConfig;

/// Results of the `F1-GG` experiment.
#[derive(Clone, Debug)]
pub struct Fig1Gg {
    /// Sweep of `D` at fixed `k`.
    pub d_sweep: Vec<SweepPoint>,
    /// Sweep of `k` at fixed `D`.
    pub k_sweep: Vec<SweepPoint>,
    /// Linear fit of measured time vs `D` (slope ≈ `Θ(F_prog)`).
    pub d_fit: LinearFit,
    /// Linear fit of measured time vs `k` (slope ≈ `Θ(F_ack)`).
    pub k_fit: LinearFit,
    /// Proportional fit of measured vs bound (the big-O constant).
    pub bound_fit: ProportionalFit,
    /// Captured outlier traces per sweep point (empty unless the runner
    /// has trace capture enabled).
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table.
    pub table: Table,
}

/// This workload (line topology, lazy duplicate-feeding scheduler) has no
/// randomness: [`run`] clamps the runner to a single trial. Flip this if the experiment
/// ever gains per-trial sampling; the clamp and `repro`'s progress
/// labels both key off it.
pub const DETERMINISTIC: bool = true;

fn measure(d: usize, k: usize, config: MacConfig, options: &RunOptions) -> MmbReport {
    let dual = DualGraph::reliable(generators::line(d + 1).expect("d >= 1"));
    let assignment = Assignment::all_at(NodeId::new(0), k);
    run_bmmb(
        &dual,
        config,
        &assignment,
        LazyPolicy::new().prefer_duplicates(),
        options,
    )
}

/// Runs the experiment with explicit sweep lists.
///
/// The workload (line topology, lazy duplicate-feeding scheduler) is fully
/// deterministic, so extra trials would re-measure byte-identical values;
/// the runner is clamped to a single trial. The sweep points still fan out
/// over the engine's worker pool as individual cells, so the single trial
/// no longer serializes on its slowest point.
pub fn run(
    config: MacConfig,
    ds: &[usize],
    fixed_k: usize,
    ks: &[usize],
    fixed_d: usize,
    runner: &TrialRunner,
) -> Fig1Gg {
    let runner = if DETERMINISTIC {
        runner.deterministic()
    } else {
        *runner
    };
    let point_params = |point: usize| {
        if point < ds.len() {
            (ds[point], fixed_k)
        } else {
            (fixed_d, ks[point - ds.len()])
        }
    };
    let widths = vec![1usize; ds.len() + ks.len()];
    let shards = runner.shards();
    let shard_threads = runner.effective_shard_threads();
    let run = runner.run_sweep(
        0,
        &widths,
        |_trial| (),
        |_, cell| {
            let (d, k) = point_params(cell.point);
            let report = measure(
                d,
                k,
                config,
                &super::cell_options(cell.capture_requested(), shards, shard_threads),
            );
            CellResult::scalar(report.completion_ticks() as f64)
                .with_capture(super::mmb_capture(&report))
                .with_shard_stats(report.shard_stats.clone())
        },
    );
    let label = |i: usize| {
        let (d, k) = point_params(i);
        if i < ds.len() {
            format!("D={d}")
        } else {
            format!("k={k}")
        }
    };
    let outliers = super::collect_outliers(&run, label);
    let (d_points, k_points) = run.points().split_at(ds.len());
    let d_sweep: Vec<SweepPoint> = ds
        .iter()
        .zip(d_points)
        .map(|(&d, p)| {
            SweepPoint::from_aggregate(
                d,
                p.primary(),
                bounds::bmmb_reliable(d, fixed_k, &config).ticks(),
            )
        })
        .collect();
    let k_sweep: Vec<SweepPoint> = ks
        .iter()
        .zip(k_points)
        .map(|(&k, p)| {
            SweepPoint::from_aggregate(
                k,
                p.primary(),
                bounds::bmmb_reliable(fixed_d, k, &config).ticks(),
            )
        })
        .collect();

    let d_fit = linear_fit(
        &d_sweep
            .iter()
            .map(SweepPoint::as_param_point)
            .collect::<Vec<_>>(),
    );
    let k_fit = linear_fit(
        &k_sweep
            .iter()
            .map(SweepPoint::as_param_point)
            .collect::<Vec<_>>(),
    );
    let bound_fit = proportional_fit(
        &d_sweep
            .iter()
            .chain(&k_sweep)
            .map(SweepPoint::as_fit_point)
            .collect::<Vec<_>>(),
    );

    let mut table = Table::new(
        format!("F1-GG  BMMB, G'=G (line, lazy+dup scheduler, {config})"),
        &["sweep", "value", "measured", "ci95", "D*Fp + k*Fa", "ratio"],
    );
    for p in &d_sweep {
        table.row([
            format!("D (k={fixed_k})"),
            p.param.to_string(),
            mean_cell(&p.measured),
            ci_cell(&p.measured),
            p.bound.to_string(),
            format!("{:.2}", p.ratio()),
        ]);
    }
    for p in &k_sweep {
        table.row([
            format!("k (D={fixed_d})"),
            p.param.to_string(),
            mean_cell(&p.measured),
            ci_cell(&p.measured),
            p.bound.to_string(),
            format!("{:.2}", p.ratio()),
        ]);
    }
    table.note("deterministic workload: measured once (extra trials would repeat the same value)");
    table.note(format!(
        "slope vs D = {:.1} ticks/hop (F_prog = {}), slope vs k = {:.1} ticks/msg (F_ack = {})",
        d_fit.slope,
        config.f_prog(),
        k_fit.slope,
        config.f_ack()
    ));
    table.note(format!(
        "measured <= {:.2} x bound across all points (paper: O(D*F_prog + k*F_ack))",
        bound_fit.max_ratio
    ));

    super::append_plots(&mut table, &runner, &run, label);
    super::append_shard_note(&mut table, &run);

    Fig1Gg {
        d_sweep,
        k_sweep,
        d_fit,
        k_fit,
        bound_fit,
        outliers,
        table,
    }
}

/// Default parameterisation at an explicit trial/job count.
pub fn run_default_with(runner: &TrialRunner) -> Fig1Gg {
    let config = MacConfig::from_ticks(2, 64);
    run(
        config,
        &[8, 16, 32, 64, 96],
        4,
        &[1, 2, 4, 8, 16],
        24,
        runner,
    )
}

/// Default parameterisation used by `cargo bench` (single trial).
pub fn run_default() -> Fig1Gg {
    run_default_with(&TrialRunner::single())
}

/// Smoke parameterisation at an explicit trial/job count.
pub fn run_smoke_with(runner: &TrialRunner) -> Fig1Gg {
    run(MacConfig::from_ticks(2, 32), &[4, 8], 2, &[1, 2], 6, runner)
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI: the
/// same code paths as [`run_default`], tiny sweeps, single trial.
pub fn run_smoke() -> Fig1Gg {
    run_smoke_with(&TrialRunner::single())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d_slope_tracks_f_prog_not_f_ack() {
        let config = MacConfig::from_ticks(2, 64);
        let res = run(
            config,
            &[8, 16, 32],
            2,
            &[1, 2, 4],
            12,
            &TrialRunner::single(),
        );
        // Progress speed: a few ticks per hop, far below F_ack = 64.
        assert!(
            res.d_fit.slope < 16.0,
            "D-slope {:.1} should be Θ(F_prog), not F_ack",
            res.d_fit.slope
        );
        assert!(res.d_fit.slope >= 1.0);
        assert!(
            res.d_fit.r2 > 0.9,
            "scaling should be clean, r2 = {:.3}",
            res.d_fit.r2
        );
    }

    #[test]
    fn k_slope_tracks_f_ack() {
        let config = MacConfig::from_ticks(2, 64);
        let res = run(
            config,
            &[8, 16],
            2,
            &[1, 2, 4, 8],
            12,
            &TrialRunner::single(),
        );
        assert!(
            res.k_fit.slope >= 32.0 && res.k_fit.slope <= 160.0,
            "k-slope {:.1} should be Θ(F_ack = 64)",
            res.k_fit.slope
        );
    }

    #[test]
    fn measured_within_constant_of_bound() {
        let res = run(
            MacConfig::from_ticks(2, 48),
            &[8, 24],
            3,
            &[2, 6],
            10,
            &TrialRunner::single(),
        );
        assert!(
            res.bound_fit.max_ratio <= 3.0,
            "worst ratio {:.2} too large for an O(.) claim",
            res.bound_fit.max_ratio
        );
        assert_eq!(res.table.len(), 4);
    }

    #[test]
    fn captured_outliers_carry_valid_traces() {
        let runner = TrialRunner::new(1, 2).with_trace_capture(true);
        let res = run(
            MacConfig::from_ticks(2, 32),
            &[4, 8],
            2,
            &[1, 2],
            6,
            &runner,
        );
        // 4 points x 3 roles (all collapsing onto the single trial).
        assert_eq!(res.outliers.len(), 12);
        for o in &res.outliers {
            assert!(!o.outlier.trace.is_empty(), "{}: empty trace", o.label);
            let v = o.outlier.validation.as_ref().expect("validated");
            assert!(v.is_ok(), "{}: {v}", o.label);
        }
        // Capture off: no outliers retained.
        let plain = run(
            MacConfig::from_ticks(2, 32),
            &[4, 8],
            2,
            &[1, 2],
            6,
            &TrialRunner::single(),
        );
        assert!(plain.outliers.is_empty());
    }

    #[test]
    fn multi_trial_request_is_clamped_on_deterministic_workload() {
        // The workload has no randomness: asking for 3 trials must measure
        // once (not burn 3x the compute on identical values) and match a
        // single-trial run exactly.
        let config = MacConfig::from_ticks(2, 32);
        let multi = run(config, &[4, 8], 2, &[1, 2], 6, &TrialRunner::new(3, 2));
        for p in multi.d_sweep.iter().chain(&multi.k_sweep) {
            assert_eq!(p.measured.trials, 1, "clamped to one trial");
            assert_eq!(p.measured.ci95, 0.0);
            assert_eq!(p.measured.min, p.measured.max);
        }
        let single = run(config, &[4, 8], 2, &[1, 2], 6, &TrialRunner::single());
        for (a, b) in multi.d_sweep.iter().zip(&single.d_sweep) {
            assert_eq!(a.measured.mean, b.measured.mean);
        }
    }
}
