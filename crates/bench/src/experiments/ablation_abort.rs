//! `ABL-ABORT` — ablation of the enhanced layer's **abort** interface.
//!
//! The paper's conclusion argues that the ability to abort an in-progress
//! broadcast is the decisive extra power of the enhanced MAC layer
//! ("Most existing MAC layers do not offer an interface to abort
//! messages. This result motivates the implementation of this
//! interface"). This experiment quantifies that claim: the identical FMMB
//! algorithm runs once with abort (rounds of `F_prog + 2` ticks) and once
//! without (rounds must stretch to `F_ack + 2` ticks so every broadcast
//! completes naturally). Without abort the round structure — and hence
//! the whole `O((D log n + k log n + log³n))`-round schedule — is paid in
//! units of `F_ack`, erasing the enhanced model's advantage.

use crate::table::Table;
use amac_core::{run_fmmb, Assignment, FmmbParams, RunOptions};
use amac_graph::generators::{connected_grey_zone_network, GreyZoneConfig};
use amac_mac::policies::LazyPolicy;
use amac_mac::MacConfig;
use amac_sim::SimRng;

/// One ablation row.
#[derive(Clone, Copy, Debug)]
pub struct AblationPoint {
    /// `F_ack` in ticks.
    pub f_ack: u64,
    /// FMMB completion ticks with the abort interface.
    pub with_abort: u64,
    /// FMMB completion ticks without it.
    pub without_abort: u64,
}

impl AblationPoint {
    /// Slowdown factor from removing abort.
    pub fn slowdown(&self) -> f64 {
        self.without_abort as f64 / self.with_abort as f64
    }
}

/// Results of the abort ablation.
#[derive(Clone, Debug)]
pub struct AblationAbort {
    /// Sweep over `F_ack`.
    pub points: Vec<AblationPoint>,
    /// Rendered table.
    pub table: Table,
}

/// Runs the ablation on one grey-zone network.
pub fn run(
    f_prog: u64,
    f_acks: &[u64],
    n: usize,
    density: f64,
    k: usize,
    seed: u64,
) -> AblationAbort {
    let mut rng = SimRng::seed(seed);
    let side = (n as f64 / density).sqrt();
    let net = connected_grey_zone_network(&GreyZoneConfig::new(n, side).with_c(2.0), 500, &mut rng)
        .expect("connected sample");
    let assignment = Assignment::random(n, k, &mut rng);
    let d = net.dual.diameter();

    let mut points = Vec::new();
    for &f_ack in f_acks {
        let cfg = MacConfig::from_ticks(f_prog, f_ack).enhanced();
        let with = run_fmmb(
            &net.dual,
            cfg,
            &assignment,
            &FmmbParams::new(k, d),
            seed ^ 0xAB,
            LazyPolicy::new(),
            &RunOptions::fast().stopping_on_completion(),
        );
        let without = run_fmmb(
            &net.dual,
            cfg,
            &assignment,
            &FmmbParams::new(k, d).without_abort(),
            seed ^ 0xAB,
            LazyPolicy::new(),
            &RunOptions::fast().stopping_on_completion(),
        );
        points.push(AblationPoint {
            f_ack,
            with_abort: with.completion_ticks(),
            without_abort: without.completion_ticks(),
        });
    }

    let mut table = Table::new(
        format!(
            "ABL-ABORT  FMMB with vs without the abort interface (n={n}, k={k}, F_prog={f_prog})"
        ),
        &["F_ack", "with abort", "without abort", "slowdown"],
    );
    for p in &points {
        table.row([
            p.f_ack.to_string(),
            p.with_abort.to_string(),
            p.without_abort.to_string(),
            format!("{:.1}x", p.slowdown()),
        ]);
    }
    table.note(
        "same algorithm, same seeds: without abort each round costs F_ack + 2 \
         instead of F_prog + 2 ticks, so the slowdown tracks F_ack/F_prog — \
         the paper's case for adding an abort interface to MAC layers",
    );

    AblationAbort { points, table }
}

/// Default parameterisation used by `cargo bench` and the `repro` binary.
pub fn run_default() -> AblationAbort {
    run(2, &[8, 32, 128, 512], 32, 2.0, 3, 6)
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI: the
/// same code paths as [`run_default`], tiny sweeps.
pub fn run_smoke() -> AblationAbort {
    run(2, &[8, 32], 12, 2.0, 2, 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removing_abort_costs_theta_f_ack_over_f_prog() {
        let res = run(2, &[16, 64], 20, 2.0, 2, 3);
        for p in &res.points {
            let expected = (p.f_ack + 2) as f64 / 4.0; // (F_ack+2)/(F_prog+2)
            let slowdown = p.slowdown();
            assert!(
                slowdown > 0.5 * expected && slowdown < 2.0 * expected,
                "F_ack={}: slowdown {slowdown:.1} should track {expected:.1}",
                p.f_ack
            );
        }
    }

    #[test]
    fn without_abort_still_solves() {
        // Correctness is unaffected; only time degrades.
        let res = run(2, &[16], 20, 2.0, 2, 9);
        assert!(res.points[0].without_abort > res.points[0].with_abort);
    }
}
