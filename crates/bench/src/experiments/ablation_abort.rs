//! `ABL-ABORT` — ablation of the enhanced layer's **abort** interface.
//!
//! The paper's conclusion argues that the ability to abort an in-progress
//! broadcast is the decisive extra power of the enhanced MAC layer
//! ("Most existing MAC layers do not offer an interface to abort
//! messages. This result motivates the implementation of this
//! interface"). This experiment quantifies that claim: the identical FMMB
//! algorithm runs once with abort (rounds of `F_prog + 2` ticks) and once
//! without (rounds must stretch to `F_ack + 2` ticks so every broadcast
//! completes naturally). Without abort the round structure — and hence
//! the whole `O((D log n + k log n + log³n))`-round schedule — is paid in
//! units of `F_ack`, erasing the enhanced model's advantage.

use super::LabeledOutlier;
use crate::engine::{CellResult, TrialRunner, TrialStats};
use crate::table::{ci_cell, mean_cell, Table};
use amac_core::{run_fmmb, Assignment, FmmbParams};
use amac_graph::generators::{connected_grey_zone_network, GreyZoneConfig, GreyZoneNetwork};
use amac_mac::policies::LazyPolicy;
use amac_mac::MacConfig;
use amac_sim::SimRng;

/// One ablation row, aggregated over the trials.
#[derive(Clone, Copy, Debug)]
pub struct AblationPoint {
    /// `F_ack` in ticks.
    pub f_ack: u64,
    /// FMMB completion ticks with the abort interface.
    pub with_abort: TrialStats,
    /// FMMB completion ticks without it.
    pub without_abort: TrialStats,
}

impl AblationPoint {
    /// Slowdown factor from removing abort (ratio of mean completion
    /// times).
    pub fn slowdown(&self) -> f64 {
        self.without_abort.mean / self.with_abort.mean
    }
}

/// Results of the abort ablation.
#[derive(Clone, Debug)]
pub struct AblationAbort {
    /// Sweep over `F_ack`.
    pub points: Vec<AblationPoint>,
    /// Captured outlier traces per sweep point (empty unless the runner
    /// has trace capture enabled).
    pub outliers: Vec<LabeledOutlier>,
    /// Rendered table.
    pub table: Table,
}

/// Per-trial shared state: one sampled grey-zone workload reused by every
/// `(F_ack, variant)` cell of the trial.
struct TrialSetup {
    net: GreyZoneNetwork,
    assignment: Assignment,
    d: usize,
    trial_seed: u64,
}

/// Runs the ablation; each trial samples its own grey-zone network and
/// assignment, and runs the identical workload with and without abort.
/// Every `(F_ack, with/without)` pair is its own engine cell, scheduled
/// over the worker pool.
pub fn run(
    f_prog: u64,
    f_acks: &[u64],
    n: usize,
    density: f64,
    k: usize,
    seed: u64,
    runner: &TrialRunner,
) -> AblationAbort {
    // Points: 2i = with abort @ f_acks[i], 2i+1 = without abort.
    let widths = vec![1usize; 2 * f_acks.len()];
    let shards = runner.shards();
    let shard_threads = runner.effective_shard_threads();
    let run = runner.run_sweep(
        seed,
        &widths,
        |trial| {
            let trial_seed = trial.seed(seed);
            let mut rng = SimRng::seed(trial_seed);
            let side = (n as f64 / density).sqrt();
            let net = connected_grey_zone_network(
                &GreyZoneConfig::new(n, side).with_c(2.0),
                500,
                &mut rng,
            )
            .expect("connected sample");
            let assignment = Assignment::random(n, k, &mut rng);
            let d = net.dual.diameter();
            TrialSetup {
                net,
                assignment,
                d,
                trial_seed,
            }
        },
        |setup, cell| {
            let f_ack = f_acks[cell.point / 2];
            let cfg = MacConfig::from_ticks(f_prog, f_ack).enhanced();
            let params = if cell.point % 2 == 0 {
                FmmbParams::new(k, setup.d)
            } else {
                FmmbParams::new(k, setup.d).without_abort()
            };
            let report = run_fmmb(
                &setup.net.dual,
                cfg,
                &setup.assignment,
                &params,
                setup.trial_seed ^ 0xAB,
                LazyPolicy::new(),
                &super::cell_options(cell.capture_requested(), shards, shard_threads)
                    .stopping_on_completion(),
            );
            CellResult::scalar(report.completion_ticks() as f64)
                .with_capture(super::fmmb_capture(&report))
                .with_shard_stats(report.shard_stats.clone())
        },
    );
    let label = |i: usize| {
        format!(
            "Fack={}-{}",
            f_acks[i / 2],
            if i % 2 == 0 { "abort" } else { "noabort" }
        )
    };
    let outliers = super::collect_outliers(&run, label);

    let points: Vec<AblationPoint> = f_acks
        .iter()
        .zip(run.points().chunks_exact(2))
        .map(|(&f_ack, pair)| AblationPoint {
            f_ack,
            with_abort: TrialStats::from_aggregate(pair[0].primary()),
            without_abort: TrialStats::from_aggregate(pair[1].primary()),
        })
        .collect();

    let mut table = Table::new(
        format!(
            "ABL-ABORT  FMMB with vs without the abort interface (n={n}, k={k}, F_prog={f_prog})"
        ),
        &[
            "F_ack",
            "with abort",
            "ci95",
            "without abort",
            "ci95",
            "slowdown",
        ],
    );
    for p in &points {
        table.row([
            p.f_ack.to_string(),
            mean_cell(&p.with_abort),
            ci_cell(&p.with_abort),
            mean_cell(&p.without_abort),
            ci_cell(&p.without_abort),
            format!("{:.1}x", p.slowdown()),
        ]);
    }
    table.note(format!(
        "{}, each on a fresh grey-zone sample",
        super::trials_phrase(runner, &run)
    ));
    table.note(
        "same algorithm, same seeds: without abort each round costs F_ack + 2 \
         instead of F_prog + 2 ticks, so the slowdown tracks F_ack/F_prog — \
         the paper's case for adding an abort interface to MAC layers",
    );

    super::append_plots(&mut table, runner, &run, label);
    super::append_shard_note(&mut table, &run);

    AblationAbort {
        points,
        outliers,
        table,
    }
}

/// Default parameterisation at an explicit trial/job count.
pub fn run_default_with(runner: &TrialRunner) -> AblationAbort {
    run(2, &[8, 32, 128, 512], 32, 2.0, 3, 6, runner)
}

/// Default parameterisation used by `cargo bench` (single trial).
pub fn run_default() -> AblationAbort {
    run_default_with(&TrialRunner::single())
}

/// Smoke parameterisation at an explicit trial/job count.
pub fn run_smoke_with(runner: &TrialRunner) -> AblationAbort {
    run(2, &[8, 32], 12, 2.0, 2, 6, runner)
}

/// A seconds-scale smoke parameterisation used by `repro --smoke` in CI: the
/// same code paths as [`run_default`], tiny sweeps, single trial.
pub fn run_smoke() -> AblationAbort {
    run_smoke_with(&TrialRunner::single())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removing_abort_costs_theta_f_ack_over_f_prog() {
        let res = run(2, &[16, 64], 20, 2.0, 2, 3, &TrialRunner::single());
        for p in &res.points {
            let expected = (p.f_ack + 2) as f64 / 4.0; // (F_ack+2)/(F_prog+2)
            let slowdown = p.slowdown();
            assert!(
                slowdown > 0.5 * expected && slowdown < 2.0 * expected,
                "F_ack={}: slowdown {slowdown:.1} should track {expected:.1}",
                p.f_ack
            );
        }
    }

    #[test]
    fn without_abort_still_solves() {
        // Correctness is unaffected; only time degrades.
        let res = run(2, &[16], 20, 2.0, 2, 9, &TrialRunner::single());
        assert!(res.points[0].without_abort.mean > res.points[0].with_abort.mean);
    }

    #[test]
    fn multi_trial_slowdown_still_tracks_f_ack() {
        let res = run(2, &[32], 16, 2.0, 2, 6, &TrialRunner::new(3, 3));
        let p = &res.points[0];
        assert_eq!(p.with_abort.trials, 3);
        // Mean slowdown still within a loose factor of (F_ack+2)/(F_prog+2).
        let expected = 34.0 / 4.0;
        assert!(
            p.slowdown() > 0.4 * expected && p.slowdown() < 2.5 * expected,
            "slowdown {:.1} vs expected {expected:.1}",
            p.slowdown()
        );
    }
}
