//! Canonical executions — `repro <experiment> --record DIR`,
//! `--metrics DIR`, and `--chrome-trace FILE`.
//!
//! Each registry experiment maps to one **canonical execution**: a single
//! representative run of the experiment's scenario at a fixed seed. What
//! the run produces is selected by [`CanonicalOpts`]: a streaming
//! [`amac_store::StoreObserver`] recording every MAC event and fault to
//! `DIR/<id>.amactrace`, a deterministic sim-time
//! [`MetricsReport`](amac_obs::MetricsReport), a Chrome trace-event span
//! export, or any combination. The live run validates as usual; a
//! recorded trace comes back as a [`RecordedTrace`] carrying the live
//! validator's verdict and [`OnlineStats`] packaged as a
//! [`TraceSummary`] — the *same* summary `repro replay` rebuilds from the
//! file alone, so recording and replaying print byte-identical blocks
//! when the store is faithful.
//!
//! Neither the trace format (`docs/TRACE_FORMAT.md`) nor the metrics
//! report's deterministic payload stores wall-clock data, so every
//! function here produces byte-identical deterministic outputs on every
//! run and machine, at any `--shards` setting.

use std::path::{Path, PathBuf};

use amac_core::{run_bmmb, run_fmmb, Assignment, FmmbParams, RunOptions};
use amac_graph::generators::{self, connected_grey_zone_network, GreyZoneConfig};
use amac_graph::{DualGraph, NodeId};
use amac_lower::choke_star_instance;
use amac_mac::policies::{EagerPolicy, LazyPolicy};
use amac_mac::{FaultPlan, MacConfig, OnlineStats, ValidationReport};
use amac_proto::consensus::{run_consensus, ConsensusParams};
use amac_proto::election::run_election;
use amac_sim::{Duration, SimRng, Time};
use amac_store::TraceSummary;

/// A freshly recorded canonical execution: where the trace landed, plus
/// the live run's summary (header read back from the file, live
/// validation verdict, live validator stats).
#[derive(Clone, Debug)]
pub struct RecordedTrace {
    /// The trace file (`DIR/<id>.amactrace`).
    pub path: PathBuf,
    /// The live-run summary; `repro replay` on [`path`](Self::path) must
    /// reproduce it byte-for-byte.
    pub summary: TraceSummary,
}

/// What a canonical execution is asked to produce: a recorded trace, a
/// deterministic metrics report, a Chrome trace-event export, or any
/// combination. `smoke` picks the small parameterisation and `shards` the
/// sharded event queue — neither changes the deterministic outputs (see
/// `tests/shard_equivalence.rs` and `tests/determinism.rs`).
#[derive(Clone, Debug, Default)]
pub struct CanonicalOpts {
    /// Small (seconds-scale) parameterisation.
    pub smoke: bool,
    /// Event-queue shards: `0` runs the sequential runtime.
    pub shards: usize,
    /// Shard worker threads: `0` keeps the fused single-core drain.
    /// Ignored when `shards == 0`; never changes the recorded bytes.
    pub shard_threads: usize,
    /// Directory receiving `<id>.amactrace`, when recording.
    pub record: Option<PathBuf>,
    /// Collect a deterministic sim-time
    /// [`MetricsReport`](amac_obs::MetricsReport).
    pub metrics: bool,
    /// Export the span timeline as Chrome trace-event JSON to this file.
    pub chrome_trace: Option<PathBuf>,
}

impl CanonicalOpts {
    /// Options for plain recording — the historical `--record DIR` shape.
    pub fn recording(
        dir: impl AsRef<Path>,
        smoke: bool,
        shards: usize,
        shard_threads: usize,
    ) -> CanonicalOpts {
        CanonicalOpts {
            smoke,
            shards,
            shard_threads,
            record: Some(dir.as_ref().to_path_buf()),
            ..CanonicalOpts::default()
        }
    }

    /// Builds the per-experiment trace path (when recording) and the run
    /// options realising these canonical options.
    fn configure(&self, id: &str, seed: u64) -> (Option<PathBuf>, RunOptions) {
        let path = self
            .record
            .as_deref()
            .map(|dir| dir.join(format!("{id}.amactrace")));
        let mut options = RunOptions::default()
            .with_shards(self.shards)
            .with_shard_threads(self.shard_threads);
        if let Some(path) = &path {
            options = options.recording(path, seed);
        }
        if self.metrics {
            options = options.with_metrics();
        }
        if let Some(trace) = &self.chrome_trace {
            options = options.with_chrome_trace(trace);
        }
        (path, options)
    }

    /// Packages a finished canonical run: reads the header back from the
    /// trace file when one was recorded, and passes the metrics report
    /// through.
    fn finish(
        &self,
        path: Option<PathBuf>,
        validation: Option<ValidationReport>,
        stats: Option<OnlineStats>,
        metrics: Option<amac_obs::MetricsReport>,
    ) -> CanonicalRun {
        CanonicalRun {
            trace: path.map(|p| summarize(p, validation, stats)),
            metrics,
        }
    }
}

/// Output of one canonical execution, shaped by [`CanonicalOpts`].
#[derive(Clone, Debug)]
pub struct CanonicalRun {
    /// The recorded trace and its live summary, when
    /// [`CanonicalOpts::record`] was set.
    pub trace: Option<RecordedTrace>,
    /// The deterministic metrics report, when [`CanonicalOpts::metrics`]
    /// was set.
    pub metrics: Option<amac_obs::MetricsReport>,
}

/// Packages a finished recorded run: reads the header back from the file
/// and pairs it with the live validation verdict and stats.
fn summarize(
    path: PathBuf,
    validation: Option<ValidationReport>,
    stats: Option<OnlineStats>,
) -> RecordedTrace {
    let validation = validation.expect("recording runs keep validation on");
    let stats = stats.expect("recording runs keep validation on");
    let summary = TraceSummary::for_live(&path, validation, stats)
        .unwrap_or_else(|e| panic!("cannot read back {}: {e}", path.display()));
    RecordedTrace { path, summary }
}

/// `F1-GG`: BMMB flood on a reliable line under the lazy duplicate-feeding
/// scheduler.
pub fn fig1_gg(opts: &CanonicalOpts) -> CanonicalRun {
    let (d, k) = if opts.smoke { (8, 4) } else { (32, 8) };
    let (path, options) = opts.configure("fig1_gg", 0);
    let dual = DualGraph::reliable(generators::line(d + 1).expect("d >= 1"));
    let report = run_bmmb(
        &dual,
        MacConfig::from_ticks(2, 40),
        &Assignment::all_at(NodeId::new(0), k),
        LazyPolicy::new().prefer_duplicates(),
        &options,
    );
    opts.finish(
        path,
        report.validation,
        report.validator_stats,
        report.metrics,
    )
}

/// `F1-RR`: BMMB on a line with a seeded `r`-restricted unreliable
/// augmentation.
pub fn fig1_r_restricted(opts: &CanonicalOpts) -> CanonicalRun {
    let (d, k) = if opts.smoke { (8, 4) } else { (32, 8) };
    let seed = 0xF1_22;
    let (path, options) = opts.configure("fig1_r_restricted", seed);
    let g = generators::line(d + 1).expect("d >= 1");
    let mut rng = SimRng::seed(seed);
    let dual = generators::r_restricted_augment(g, 2, 0.5, &mut rng).expect("valid parameters");
    let report = run_bmmb(
        &dual,
        MacConfig::from_ticks(2, 40),
        &Assignment::all_at(NodeId::new(0), k),
        LazyPolicy::new().prefer_duplicates(),
        &options,
    );
    opts.finish(
        path,
        report.validation,
        report.validator_stats,
        report.metrics,
    )
}

/// `F1-ARB`: BMMB on a line with evenly spaced long-range unreliable
/// shortcuts.
pub fn fig1_arbitrary(opts: &CanonicalOpts) -> CanonicalRun {
    let (d, k) = if opts.smoke { (8, 4) } else { (32, 8) };
    let (path, options) = opts.configure("fig1_arbitrary", 0);
    let g = generators::line(d + 1).expect("d >= 1");
    let dual = generators::long_range_augment(g, d / 4).expect("valid augment");
    let report = run_bmmb(
        &dual,
        MacConfig::from_ticks(2, 40),
        &Assignment::all_at(NodeId::new(0), k),
        LazyPolicy::new().prefer_duplicates(),
        &options,
    );
    opts.finish(
        path,
        report.validation,
        report.validator_stats,
        report.metrics,
    )
}

/// `LB`: the Lemma 3.18 choke star under the lazy duplicate-feeding
/// scheduler (the `Ω(k·F_ack)` witness).
pub fn lower_bounds(opts: &CanonicalOpts) -> CanonicalRun {
    let k = if opts.smoke { 6 } else { 16 };
    let (path, options) = opts.configure("lower_bounds", 0);
    let (dual, assignment) = choke_star_instance(k);
    let report = run_bmmb(
        &dual,
        MacConfig::from_ticks(2, 40),
        &assignment,
        LazyPolicy::new().prefer_duplicates(),
        &options,
    );
    opts.finish(
        path,
        report.validation,
        report.validator_stats,
        report.metrics,
    )
}

/// Samples the seeded grey-zone deployment the FMMB-family canonical runs
/// share.
fn grey_zone(n: usize, seed: u64) -> (DualGraph, SimRng) {
    let mut rng = SimRng::seed(seed);
    let side = (n as f64 / 2.5).sqrt();
    let net = connected_grey_zone_network(&GreyZoneConfig::new(n, side).with_c(2.0), 500, &mut rng)
        .expect("connected sample");
    (net.dual, rng)
}

/// `F1-ENH`: FMMB (MIS + gather + spread) on a seeded grey-zone dual in
/// the enhanced model.
pub fn fig1_fmmb(opts: &CanonicalOpts) -> CanonicalRun {
    let (n, k) = if opts.smoke { (24, 3) } else { (64, 6) };
    let seed = 0xE0_14;
    let (path, options) = opts.configure("fig1_fmmb", seed);
    let (dual, mut rng) = grey_zone(n, seed);
    let assignment = Assignment::random(n, k, &mut rng);
    let params = FmmbParams::new(k, dual.diameter());
    let report = run_fmmb(
        &dual,
        MacConfig::from_ticks(2, 32).enhanced(),
        &assignment,
        &params,
        seed,
        LazyPolicy::new(),
        &options.stopping_on_completion(),
    );
    opts.finish(
        path,
        report.validation,
        report.validator_stats,
        report.metrics,
    )
}

/// `SUB-*`: the subroutine experiment's instrumented runner takes no
/// [`RunOptions`], so the canonical trace is the underlying FMMB execution
/// the milestones are carved from — same dual, same schedule.
pub fn subroutines(opts: &CanonicalOpts) -> CanonicalRun {
    let (n, k) = if opts.smoke { (24, 3) } else { (64, 6) };
    let seed = 0x50_B5;
    let (path, options) = opts.configure("subroutines", seed);
    let (dual, mut rng) = grey_zone(n, seed);
    let assignment = Assignment::random(n, k, &mut rng);
    let params = FmmbParams::new(k, dual.diameter());
    let report = run_fmmb(
        &dual,
        MacConfig::from_ticks(2, 32).enhanced(),
        &assignment,
        &params,
        seed,
        LazyPolicy::new(),
        &options.stopping_on_completion(),
    );
    opts.finish(
        path,
        report.validation,
        report.validator_stats,
        report.metrics,
    )
}

/// `ABL`: FMMB with the enhanced-layer abort interface disabled.
pub fn ablation_abort(opts: &CanonicalOpts) -> CanonicalRun {
    let (n, k) = if opts.smoke { (24, 3) } else { (64, 6) };
    let seed = 0xAB_07;
    let (path, options) = opts.configure("ablation_abort", seed);
    let (dual, mut rng) = grey_zone(n, seed);
    let assignment = Assignment::random(n, k, &mut rng);
    let params = FmmbParams::new(k, dual.diameter()).without_abort();
    let report = run_fmmb(
        &dual,
        MacConfig::from_ticks(2, 32).enhanced(),
        &assignment,
        &params,
        seed,
        LazyPolicy::new(),
        &options.stopping_on_completion(),
    );
    opts.finish(
        path,
        report.validation,
        report.validator_stats,
        report.metrics,
    )
}

/// `CONS`: crash-tolerant flooding consensus on a complete reliable dual
/// with a seeded random crash plan — the one canonical trace whose
/// fault-plan section is non-empty.
pub fn consensus_crash(opts: &CanonicalOpts) -> CanonicalRun {
    let (n, crashes) = if opts.smoke { (8, 2) } else { (16, 4) };
    let seed = 0xC0_45;
    let (path, options) = opts.configure("consensus_crash", seed);
    let config = MacConfig::from_ticks(2, 16).enhanced();
    let params = ConsensusParams::for_crashes(crashes, &config);
    let mut rng = SimRng::seed(seed);
    let initial: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
    let window = Time::ZERO + params.phase_len.times(params.phases);
    let faults = FaultPlan::random_crashes(n, crashes, window, &mut rng);
    let dual = DualGraph::reliable(generators::complete(n).expect("n >= 2"));
    let report = run_consensus(
        &dual,
        config,
        &initial,
        &params,
        faults,
        LazyPolicy::new().prefer_duplicates(),
        &options,
    );
    opts.finish(
        path,
        report.validation,
        report.validator_stats,
        report.metrics,
    )
}

/// `ELECT`: randomized wake-up/leader election on a seeded grey-zone dual.
pub fn election(opts: &CanonicalOpts) -> CanonicalRun {
    let n = if opts.smoke { 16 } else { 48 };
    let seed = 0xE1_EC;
    let (path, options) = opts.configure("election", seed);
    let (dual, mut rng) = grey_zone(n, seed);
    let report = run_election(
        &dual,
        MacConfig::from_ticks(2, 16).enhanced(),
        Duration::from_ticks(64),
        rng.next(),
        FaultPlan::new(),
        LazyPolicy::new(),
        &options,
    );
    opts.finish(
        path,
        report.validation,
        report.validator_stats,
        report.metrics,
    )
}

/// `SCALE`: the throughput workload — an eager BMMB line flood — at a
/// recordable size.
pub fn scale(opts: &CanonicalOpts) -> CanonicalRun {
    let n = if opts.smoke { 200 } else { 1000 };
    let (path, options) = opts.configure("scale", 0);
    let dual = DualGraph::reliable(generators::line(n).expect("n >= 2"));
    let report = run_bmmb(
        &dual,
        MacConfig::from_ticks(2, 32),
        &Assignment::all_at(NodeId::new(0), 2),
        EagerPolicy::new(),
        &options,
    );
    opts.finish(
        path,
        report.validation,
        report.validator_stats,
        report.metrics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use amac_store::{replay_validate, TraceReader};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amac-bench-record-{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn every_registry_experiment_records_and_replays_identically() {
        let dir = temp_dir("all");
        for spec in crate::experiments::registry() {
            let recorded = spec.record(&dir, true, 0, 0);
            let replayed = replay_validate(TraceReader::open(&recorded.path).unwrap())
                .unwrap_or_else(|e| panic!("{}: {e}", spec.id));
            assert_eq!(
                recorded.summary.to_string(),
                replayed.to_string(),
                "{}: live and replayed summaries must match byte-for-byte",
                spec.id
            );
            std::fs::remove_file(&recorded.path).ok();
        }
    }

    #[test]
    fn consensus_trace_stores_its_fault_plan_digest() {
        let dir = temp_dir("cons");
        let recorded = consensus_crash(&CanonicalOpts::recording(&dir, true, 0, 0))
            .trace
            .expect("recording was requested");
        assert_ne!(recorded.summary.header.fault_plan_digest, 0);
        assert!(recorded.summary.faults > 0, "crashes must be recorded");
        std::fs::remove_file(&recorded.path).ok();
    }

    #[test]
    fn canonical_run_serves_metrics_without_recording() {
        let run = fig1_gg(&CanonicalOpts {
            smoke: true,
            metrics: true,
            ..CanonicalOpts::default()
        });
        assert!(run.trace.is_none(), "no recording was requested");
        let metrics = run.metrics.expect("metrics were requested");
        assert!(metrics.bcasts > 0);
        assert!(
            metrics.delivery_within_ack_bound(),
            "fault-free canonical run must deliver within F_ack"
        );
    }
}
