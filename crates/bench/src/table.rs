//! Plain-text tables in the style of the paper's Figure 1, printed by the
//! bench targets and the `repro` binary.

use crate::engine::TrialStats;
use std::fmt;

/// Renders a mean for a "measured" column: the exact integer for a single
/// trial (preserving the historical single-measurement tables), one
/// decimal once trials are aggregated.
pub fn mean_cell(stats: &TrialStats) -> String {
    if stats.trials == 1 {
        format!("{:.0}", stats.mean)
    } else {
        format!("{:.1}", stats.mean)
    }
}

/// Renders a 95% confidence-interval column: `±h` half-width (empty-ish
/// `±0.0` for a single trial, which carries no spread information).
pub fn ci_cell(stats: &TrialStats) -> String {
    format!("±{:.1}", stats.ci95)
}

/// A titled, aligned text table with footnotes.
///
/// # Examples
///
/// ```
/// use amac_bench::table::Table;
///
/// let mut t = Table::new("demo", &["x", "y"]);
/// t.row(["1", "2"]);
/// t.note("y = 2x");
/// let s = t.to_string();
/// assert!(s.contains("demo"));
/// assert!(s.contains("y = 2x"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Appends a footnote line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Table {
        self.notes.push(note.into());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The footnotes.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as GitHub-flavoured markdown (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("title", &["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["100", "20000"]);
        let s = t.to_string();
        assert!(s.contains("== title =="));
        assert!(s.lines().count() >= 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn cells_render_single_and_multi_trial() {
        let one = TrialStats::single(328.0);
        assert_eq!(mean_cell(&one), "328");
        assert_eq!(ci_cell(&one), "±0.0");
        let mut agg = amac_sim::stats::Aggregate::new();
        for x in [100.0, 120.0, 140.0] {
            agg.record(x);
        }
        let many = TrialStats::from_aggregate(&agg);
        assert_eq!(mean_cell(&many), "120.0");
        assert!(ci_cell(&many).starts_with('±'));
    }

    #[test]
    fn markdown_has_separator_row() {
        let mut t = Table::new("m", &["x", "y"]);
        t.row(["1", "2"]);
        t.note("hello");
        let md = t.to_markdown();
        assert!(md.contains("| x | y |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("*hello*"));
    }
}
